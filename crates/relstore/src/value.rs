//! Typed values.
//!
//! The paper makes a point of distinguishing string from numeric data even
//! though "all these data appear as strings in the biological sources"
//! (§2.2): sequence lengths, chromosome locations and homology scores must
//! compare numerically across large datasets. [`Value`] carries that
//! distinction, and [`Value::total_cmp`] provides the total order needed
//! for index keys and sorting.

use std::cmp::Ordering;
use std::fmt;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => f.write_str("INT"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Text => f.write_str("TEXT"),
        }
    }
}

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Text value.
    Text(String),
}

/// Exact comparison of an `i64` against an `f64`, never rounding the
/// integer through `f64` first: above 2^53 that cast collapses distinct
/// integers onto one float (`i64::MAX as f64 == (i64::MAX - 511) as f64`),
/// which made `Int(i64::MAX)` compare `Equal` to a float it does not
/// equal. The float is split into integral and fractional parts instead;
/// both halves compare exactly. `None` iff `f` is NaN.
pub(crate) fn cmp_int_float(i: i64, f: f64) -> Option<Ordering> {
    if f.is_nan() {
        return None;
    }
    // 2^63 is exactly representable. Any finite float at or above it
    // exceeds every i64; anything strictly below -2^63 is below every
    // i64 (-2^63 itself *is* an i64). Infinities fall out of the same
    // two tests.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if f >= TWO_63 {
        return Some(Ordering::Less);
    }
    if f < -TWO_63 {
        return Some(Ordering::Greater);
    }
    // Now -2^63 <= f < 2^63, so trunc(f) converts to i64 without loss.
    let t = f.trunc();
    let ti = t as i64;
    Some(match i.cmp(&ti) {
        // Same integral part: the fractional remainder decides. trunc
        // rounds toward zero, so the remainder carries the float's sign.
        Ordering::Equal if f > t => Ordering::Less,
        Ordering::Equal if f < t => Ordering::Greater,
        other => other,
    })
}

impl Value {
    /// The value's runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The text content, if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric content as `f64`, coercing `Int`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Coerces the value to `ty`, as done when loading shredded tuples:
    /// source data always arrives as strings and numeric annotations must
    /// become comparable numbers. Returns `None` when the coercion fails.
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), DataType::Int) => Some(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Int(i), DataType::Text) => Some(Value::Text(i.to_string())),
            (Value::Float(f), DataType::Float) => Some(Value::Float(*f)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Some(Value::Int(*f as i64)),
            (Value::Float(f), DataType::Text) => Some(Value::Text(f.to_string())),
            (Value::Text(s), DataType::Text) => Some(Value::Text(s.clone())),
            (Value::Text(s), DataType::Int) => s.trim().parse().ok().map(Value::Int),
            (Value::Text(s), DataType::Float) => s.trim().parse().ok().map(Value::Float),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable. Int and Float compare numerically and
    /// *exactly* — a mixed comparison never rounds the integer to `f64`,
    /// so integers beyond ±2^53 still order correctly against floats.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => cmp_int_float(*a, *b),
            (Value::Float(a), Value::Int(b)) => cmp_int_float(*b, *a).map(Ordering::reverse),
            _ => None,
        }
    }

    /// A total order over all values, used for index keys and `ORDER BY`:
    /// `NULL < numbers < text`; NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
            }
        }
        // An Int against a NaN or negative-zero float has no exact answer;
        // treat the integer as its +0.0/non-NaN self under f64::total_cmp
        // (so -NaN < Int < +NaN, and Int(0) sorts after Float(-0.0)),
        // which keeps this a total order agreeing with Float-vs-Float.
        fn int_vs_float(i: i64, f: f64) -> Ordering {
            match cmp_int_float(i, f) {
                Some(Ordering::Equal) if f == 0.0 && f.is_sign_negative() => Ordering::Greater,
                Some(ord) => ord,
                None if f.is_sign_positive() => Ordering::Less,
                None => Ordering::Greater,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => int_vs_float(*a, *b),
            (Value::Float(a), Value::Int(b)) => int_vs_float(*b, *a).reverse(),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Equality under [`Value::compare`] semantics (NULL equals nothing).
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

/// Structural equality used by tests and hash-join keys: numerics compare
/// numerically, NULL equals NULL.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash every numeric through its f64 bits so Int(2) and
            // Float(2.0) — equal under total_cmp — hash identically.
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_numeric_coercion() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(2)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn compare_int_float_is_exact_beyond_2_53() {
        // i64::MAX as f64 rounds up to 2^63; the old cast-based compare
        // called these Equal.
        let two_63 = 9_223_372_036_854_775_808.0f64;
        assert_eq!(
            Value::Int(i64::MAX).compare(&Value::Float(two_63)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(two_63).compare(&Value::Int(i64::MAX)),
            Some(Ordering::Greater)
        );
        // 2^53 + 1 is the first integer with no exact f64; 2^53 itself
        // has one. The cast collapses them onto the same float.
        let p53 = 1i64 << 53;
        assert_eq!(
            Value::Int(p53 + 1).compare(&Value::Float(p53 as f64)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(p53).compare(&Value::Float(p53 as f64)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(-(p53 + 1)).compare(&Value::Float(-(p53 as f64))),
            Some(Ordering::Less)
        );
        // i64::MIN is exactly -2^63 and representable.
        assert_eq!(
            Value::Int(i64::MIN).compare(&Value::Float(-9_223_372_036_854_775_808.0)),
            Some(Ordering::Equal)
        );
        // Infinities and fractional parts.
        assert_eq!(
            Value::Int(i64::MAX).compare(&Value::Float(f64::INFINITY)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(i64::MIN).compare(&Value::Float(f64::NEG_INFINITY)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int(-3).compare(&Value::Float(-2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(0).compare(&Value::Float(-0.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(1).compare(&Value::Float(f64::NAN)), None);
        // total_cmp agrees with compare wherever compare is defined.
        assert_eq!(
            Value::Int(i64::MAX).total_cmp(&Value::Float(two_63)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(two_63).total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
        // Large equal pairs stay equal (and must keep hashing together).
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(p53));
        assert!(set.contains(&Value::Float(p53 as f64)));
        assert_ne!(Value::Int(p53 + 1), Value::Float(p53 as f64));
    }

    #[test]
    fn compare_null_is_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(Value::Null.compare(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn compare_text_vs_number_is_unknown() {
        assert_eq!(Value::Text("2".into()).compare(&Value::Int(2)), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut values = vec![
            Value::Text("abc".into()),
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Text("ABC".into()),
            Value::Int(-1),
        ];
        values.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Int(-1),
                Value::Float(2.5),
                Value::Int(5),
                Value::Text("ABC".into()),
                Value::Text("abc".into()),
            ]
        );
    }

    #[test]
    fn eq_and_hash_agree_across_numeric_types() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(2));
        assert!(set.contains(&Value::Float(2.0)));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn coerce_text_to_numbers() {
        assert_eq!(
            Value::Text(" 42 ".into()).coerce(DataType::Int),
            Some(Value::Int(42))
        );
        assert_eq!(
            Value::Text("2.5".into()).coerce(DataType::Float),
            Some(Value::Float(2.5))
        );
        assert_eq!(Value::Text("xyz".into()).coerce(DataType::Int), None);
        assert_eq!(Value::Float(2.5).coerce(DataType::Int), None);
        assert_eq!(Value::Float(2.0).coerce(DataType::Int), Some(Value::Int(2)));
        assert_eq!(Value::Null.coerce(DataType::Int), Some(Value::Null));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("x".into()).to_string(), "x");
    }

    #[test]
    fn nan_sorts_consistently() {
        let mut v = [Value::Float(f64::NAN), Value::Float(1.0), Value::Int(2)];
        v.sort_by(|a, b| a.total_cmp(b));
        // NaN sorts last among numerics under f64::total_cmp.
        assert_eq!(v[0], Value::Float(1.0));
        assert_eq!(v[1], Value::Int(2));
        assert!(matches!(v[2], Value::Float(f) if f.is_nan()));
    }
}
