//! The SQL subset.
//!
//! The XQ2SQL translator (paper §3.2) rewrites every XomatiQ query into SQL
//! over the generic shredding schema; this module defines the language it
//! emits. It is a classic SQL core — `SELECT` with joins, predicates,
//! ordering, `DISTINCT`, `LIMIT` and aggregates, plus DML and DDL — and one
//! domain extension mirroring the paper's keyword feature: a
//! `CONTAINS(column, 'keyword')` predicate served by the inverted index.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, JoinClause, OrderKey, SelectItem, SelectStmt, Statement, TableRef};
pub use lexer::{tokenize_sql, Token};
pub use parser::parse_statement;
