//! Recursive-descent SQL parser.

use crate::error::{RelError, RelResult};
use crate::sql::ast::{
    AggFunc, BinOp, Expr, JoinClause, OrderKey, SelectItem, SelectStmt, Statement, TableRef,
};
use crate::sql::lexer::{tokenize_sql, Token};
use crate::value::{DataType, Value};

/// Parses one SQL statement (an optional trailing `;` is accepted).
pub fn parse_statement(sql: &str) -> RelResult<Statement> {
    parse_statement_with_params(sql).map(|(stmt, _)| stmt)
}

/// Parses one SQL statement, also returning the number of `?` placeholders
/// it contains (numbered left to right). Used by [`crate::Database::prepare`].
pub fn parse_statement_with_params(sql: &str) -> RelResult<(Statement, usize)> {
    let sql = sql.trim().trim_end_matches(';');
    let tokens = tokenize_sql(sql)?;
    let mut p = SqlParser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(RelError::Parse(format!(
            "unexpected trailing input near {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok((stmt, p.params))
}

struct SqlParser {
    tokens: Vec<Token>,
    pos: usize,
    /// Count of `?` placeholders seen so far.
    params: usize,
}

impl SqlParser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek().cloned()
            )))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> RelResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(RelError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek().cloned()
            )))
        }
    }

    fn ident(&mut self) -> RelResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RelError::Parse(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    // ---- statements -------------------------------------------------------

    fn statement(&mut self) -> RelResult<Statement> {
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            if !self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                return Err(RelError::Parse(
                    "EXPLAIN [ANALYZE] supports only SELECT statements".into(),
                ));
            }
            let inner = Box::new(Statement::Select(self.select()?));
            return Ok(Statement::Explain { analyze, inner });
        }
        if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("ANALYZE") {
            let table = if self.eat_kw("TABLE") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::Analyze { table });
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("MATERIALIZED") {
                self.expect_kw("VIEW")?;
                return self.create_materialized_view();
            }
            let keyword = self.eat_kw("KEYWORD");
            if self.eat_kw("INDEX") {
                return self.create_index(keyword);
            }
            return Err(RelError::Parse(
                "expected TABLE, MATERIALIZED VIEW or [KEYWORD] INDEX after CREATE".into(),
            ));
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                return Ok(Statement::DropTable {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("MATERIALIZED") {
                self.expect_kw("VIEW")?;
                return Ok(Statement::DropMaterializedView {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("INDEX") {
                return Ok(Statement::DropIndex {
                    name: self.ident()?,
                });
            }
            return Err(RelError::Parse(
                "expected TABLE, MATERIALIZED VIEW or INDEX after DROP".into(),
            ));
        }
        if self.eat_kw("REFRESH") {
            self.expect_kw("MATERIALIZED")?;
            self.expect_kw("VIEW")?;
            let name = self.ident()?;
            let full = self.eat_kw("FULL");
            return Ok(Statement::RefreshMaterializedView { name, full });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        Err(RelError::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek().cloned()
        )))
    }

    fn create_table(&mut self) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            let ty = match ty_name.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" | "CLOB" => DataType::Text,
                other => {
                    return Err(RelError::Parse(format!("unknown column type {other}")));
                }
            };
            columns.push((col, ty));
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_materialized_view(&mut self) -> RelResult<Statement> {
        let name = self.ident()?;
        let refresh_on_commit = if self.eat_kw("REFRESH") {
            self.expect_kw("ON")?;
            self.expect_kw("COMMIT")?;
            true
        } else {
            false
        };
        self.expect_kw("AS")?;
        if !self.peek().is_some_and(|t| t.is_kw("SELECT")) {
            return Err(RelError::Parse(
                "expected SELECT after CREATE MATERIALIZED VIEW ... AS".into(),
            ));
        }
        let query = self.select()?;
        Ok(Statement::CreateMaterializedView {
            name,
            refresh_on_commit,
            query,
        })
    }

    fn create_index(&mut self, keyword: bool) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = vec![self.ident()?];
        while self.eat_sym(",") {
            columns.push(self.ident()?);
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            keyword,
        })
    }

    fn insert(&mut self) -> RelResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = vec![self.expr()?];
            while self.eat_sym(",") {
                row.push(self.expr()?);
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> RelResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            assignments.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn select(&mut self) -> RelResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.eat_sym(",") {
                from.push(self.table_ref()?);
            } else if self
                .peek()
                .is_some_and(|t| t.is_kw("JOIN") || t.is_kw("INNER"))
            {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(JoinClause { table, on });
            } else {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_sym(",") {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.unsigned()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.unsigned()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            filter,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned(&mut self) -> RelResult<u64> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as u64),
            other => Err(RelError::Parse(format!(
                "expected a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> RelResult<SelectItem> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(name)), Some(Token::Sym(".")), Some(Token::Sym("*"))) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let name = name.clone();
            self.pos += 3;
            return Ok(SelectItem::TableWildcard(name));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> RelResult<TableRef> {
        let table = self.ident()?;
        // An optional alias: an identifier that is not a clause keyword.
        const CLAUSE_KWS: &[&str] = &[
            "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "ON", "SET",
        ];
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                let a = s.clone();
                self.pos += 1;
                a
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> RelResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> RelResult<Expr> {
        if self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> RelResult<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = if self.peek().is_some_and(|t| t.is_kw("NOT")) {
            let next_is_postfix = self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.is_kw("LIKE") || t.is_kw("IN") || t.is_kw("BETWEEN"));
            if next_is_postfix {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = vec![self.expr()?];
            while self.eat_sym(",") {
                list.push(self.expr()?);
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(RelError::Parse("dangling NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Sym("=")) => Some(BinOp::Eq),
            Some(Token::Sym("<>")) => Some(BinOp::Ne),
            Some(Token::Sym("<")) => Some(BinOp::Lt),
            Some(Token::Sym("<=")) => Some(BinOp::Le),
            Some(Token::Sym(">")) => Some(BinOp::Gt),
            Some(Token::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> RelResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_sym("+") {
                left = Expr::binary(BinOp::Add, left, self.multiplicative()?);
            } else if self.eat_sym("-") {
                left = Expr::binary(BinOp::Sub, left, self.multiplicative()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn multiplicative(&mut self) -> RelResult<Expr> {
        let mut left = self.unary()?;
        loop {
            if self.eat_sym("*") {
                left = Expr::binary(BinOp::Mul, left, self.unary()?);
            } else if self.eat_sym("/") {
                left = Expr::binary(BinOp::Div, left, self.unary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> RelResult<Expr> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> RelResult<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Sym("?")) => {
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Some(Token::Sym("(")) => {
                let inner = self.expr()?;
                self.expect_sym(")")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("CONTAINS") && self.eat_sym("(") {
                    let column = self.expr()?;
                    self.expect_sym(",")?;
                    let keyword = self.expr()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Contains {
                        column: Box::new(column),
                        keyword: Box::new(keyword),
                    });
                }
                if name.eq_ignore_ascii_case("MATCHES") && self.eat_sym("(") {
                    let column = self.expr()?;
                    self.expect_sym(",")?;
                    let pattern = self.expr()?;
                    self.expect_sym(")")?;
                    return Ok(Expr::Matches {
                        column: Box::new(column),
                        pattern: Box::new(pattern),
                    });
                }
                let agg = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    "AVG" => Some(AggFunc::Avg),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.eat_sym("(") {
                        let distinct = self.eat_kw("DISTINCT");
                        if self.eat_sym("*") {
                            self.expect_sym(")")?;
                            if func != AggFunc::Count {
                                return Err(RelError::Parse("only COUNT accepts '*'".into()));
                            }
                            return Ok(Expr::Aggregate {
                                func,
                                arg: None,
                                distinct,
                            });
                        }
                        let arg = self.expr()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                // Qualified column: `alias.column`.
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(RelError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t");
        assert_eq!(s.items.len(), 2);
        assert_eq!(
            s.from,
            vec![TableRef {
                table: "t".into(),
                alias: "t".into()
            }]
        );
        assert!(s.filter.is_none());
        assert!(!s.distinct);
    }

    #[test]
    fn select_with_everything() {
        let s = sel(
            "SELECT DISTINCT e.val AS v, COUNT(*) FROM elements e, attrs a \
             WHERE e.doc_id = a.doc_id AND e.path = '/x' \
             GROUP BY e.val ORDER BY v DESC, e.val ASC LIMIT 10 OFFSET 5",
        );
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert!(matches!(&s.items[0], SelectItem::Expr { alias: Some(a), .. } if a == "v"));
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn explicit_join() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.w");
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].table.alias, "b");
    }

    #[test]
    fn aliases() {
        let s = sel("SELECT x.* FROM elements x WHERE x.path = '/a'");
        assert_eq!(s.from[0].alias, "x");
        assert!(matches!(&s.items[0], SelectItem::TableWildcard(t) if t == "x"));
    }

    #[test]
    fn operator_precedence() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        // Must parse as a = 1 OR (b = 2 AND c = 3).
        match s.filter.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT * FROM t WHERE a + 2 * 3 = 7");
        match s.filter.unwrap() {
            Expr::Binary {
                op: BinOp::Eq,
                left,
                ..
            } => match *left {
                Expr::Binary {
                    op: BinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn postfix_predicates() {
        let s = sel(
            "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c LIKE '%x%' \
             AND d NOT LIKE 'y' AND e IN (1, 2) AND f NOT IN ('a') AND g BETWEEN 1 AND 5 \
             AND h NOT BETWEEN 2 AND 3",
        );
        assert!(s.filter.is_some());
    }

    #[test]
    fn contains_extension() {
        let s = sel("SELECT * FROM elements WHERE CONTAINS(val, 'cdc6')");
        match s.filter.unwrap() {
            Expr::Contains { column, keyword } => {
                assert_eq!(*column, Expr::col(None, "val"));
                assert_eq!(*keyword, Expr::lit("cdc6"));
            }
            other => panic!("expected Contains, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let s = sel("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x), COUNT(DISTINCT y) FROM t");
        assert_eq!(s.items.len(), 6);
        assert!(matches!(
            &s.items[5],
            SelectItem::Expr {
                expr: Expr::Aggregate { distinct: true, .. },
                ..
            }
        ));
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn ddl_statements() {
        let stmt = parse_statement("CREATE TABLE t (a INT, b TEXT, c FLOAT)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("a".into(), DataType::Int),
                    ("b".into(), DataType::Text),
                    ("c".into(), DataType::Float),
                ],
            }
        );
        assert_eq!(
            parse_statement("CREATE INDEX i ON t (a, b)").unwrap(),
            Statement::CreateIndex {
                name: "i".into(),
                table: "t".into(),
                columns: vec!["a".into(), "b".into()],
                keyword: false,
            }
        );
        assert_eq!(
            parse_statement("CREATE KEYWORD INDEX k ON t (b)").unwrap(),
            Statement::CreateIndex {
                name: "k".into(),
                table: "t".into(),
                columns: vec!["b".into()],
                keyword: true,
            }
        );
        assert_eq!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
        assert_eq!(
            parse_statement("DROP INDEX i").unwrap(),
            Statement::DropIndex { name: "i".into() }
        );
    }

    #[test]
    fn materialized_view_statements() {
        match parse_statement("CREATE MATERIALIZED VIEW mv AS SELECT a FROM t WHERE a > 1").unwrap()
        {
            Statement::CreateMaterializedView {
                name,
                refresh_on_commit,
                query,
            } => {
                assert_eq!(name, "mv");
                assert!(!refresh_on_commit);
                assert_eq!(query.items.len(), 1);
                assert!(query.filter.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse_statement(
            "CREATE MATERIALIZED VIEW mv REFRESH ON COMMIT AS SELECT b, COUNT(*) FROM t GROUP BY b",
        )
        .unwrap()
        {
            Statement::CreateMaterializedView {
                refresh_on_commit, ..
            } => assert!(refresh_on_commit),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_statement("DROP MATERIALIZED VIEW mv").unwrap(),
            Statement::DropMaterializedView { name: "mv".into() }
        );
        assert_eq!(
            parse_statement("REFRESH MATERIALIZED VIEW mv").unwrap(),
            Statement::RefreshMaterializedView {
                name: "mv".into(),
                full: false,
            }
        );
        assert_eq!(
            parse_statement("REFRESH MATERIALIZED VIEW mv FULL").unwrap(),
            Statement::RefreshMaterializedView {
                name: "mv".into(),
                full: true,
            }
        );
        for bad in [
            "CREATE MATERIALIZED mv AS SELECT a FROM t",
            "CREATE MATERIALIZED VIEW mv AS INSERT INTO t VALUES (1)",
            "REFRESH MATERIALIZED mv",
            "DROP MATERIALIZED mv",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn dml_statements() {
        let stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::lit("y"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete {
                filter: Some(_),
                ..
            }
        ));
        match parse_statement("UPDATE t SET a = 2, b = 'z' WHERE a = 1").unwrap() {
            Statement::Update {
                assignments,
                filter,
                ..
            } => {
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_literals_and_null() {
        let s = sel("SELECT * FROM t WHERE a = -5 AND b = NULL");
        assert!(s.filter.is_some());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT 'x'",
            "CREATE TABLE t (a BLOB)",
            "INSERT INTO t (1)",
            "SELECT * FROM t extra garbage here =",
            "UPDATE t SET",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn placeholders_numbered_left_to_right() {
        let (stmt, n) =
            parse_statement_with_params("SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?")
                .unwrap();
        assert_eq!(n, 3);
        let Statement::Select(s) = stmt else {
            panic!("expected SELECT");
        };
        match s.filter.unwrap() {
            Expr::Binary { left, right, .. } => {
                assert!(matches!(
                    *left,
                    Expr::Binary { ref right, .. } if **right == Expr::Param(0)
                ));
                assert!(matches!(
                    *right,
                    Expr::Between { ref low, ref high, .. }
                        if **low == Expr::Param(1) && **high == Expr::Param(2)
                ));
            }
            other => panic!("expected AND, got {other:?}"),
        }
        let (_, n) = parse_statement_with_params("INSERT INTO t VALUES (?, ?)").unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT a FROM t )").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        let s = sel("select a from t where a like 'x%' order by a limit 1");
        assert_eq!(s.limit, Some(1));
    }
}
