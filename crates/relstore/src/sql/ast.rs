//! SQL abstract syntax.

use crate::value::{DataType, Value};

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A `?` placeholder, numbered left-to-right from zero. Parameters
    /// are substituted with bound literals before planning; evaluating an
    /// unbound parameter is an error.
    Param(usize),
    /// A column reference, optionally qualified by a table alias.
    Column {
        /// Optional table alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when set.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression.
        pattern: Box<Expr>,
        /// `NOT LIKE` when set.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when set.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Inclusive lower bound.
        low: Box<Expr>,
        /// Inclusive upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN` when set.
        negated: bool,
    },
    /// `CONTAINS(column, 'keyword')` — the keyword-search extension,
    /// served by the inverted index when one covers the column.
    Contains {
        /// The searched column.
        column: Box<Expr>,
        /// The keyword(s).
        keyword: Box<Expr>,
    },
    /// `MATCHES(column, 'pattern')` — regular-expression matching, the
    /// capability the paper holds up against SQL-only systems (§4).
    Matches {
        /// The matched column.
        column: Box<Expr>,
        /// The regular expression.
        pattern: Box<Expr>,
    },
    /// An aggregate call in a select list: `COUNT(*)`, `SUM(x)`, ...
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// `DISTINCT` aggregation.
        distinct: bool,
    },
}

impl Expr {
    /// Convenience: a qualified or bare column reference.
    pub fn col(table: Option<&str>, name: &str) -> Expr {
        Expr::Column {
            table: table.map(str::to_string),
            name: name.to_string(),
        }
    }

    /// Convenience: a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience: `left op right`.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Whether the expression (sub)tree contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::Like { expr, pattern, .. } => expr.has_aggregate() || pattern.has_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.has_aggregate() || low.has_aggregate() || high.has_aggregate(),
            Expr::Contains { column, keyword } => column.has_aggregate() || keyword.has_aggregate(),
            Expr::Matches { column, pattern } => column.has_aggregate() || pattern.has_aggregate(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Whether this is a comparison operator.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns of all tables in scope.
    Wildcard,
    /// `alias.*` — all columns of one table.
    TableWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Binding alias (defaults to the table name).
    pub alias: String,
}

/// An explicit `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The join condition.
    pub on: Expr,
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub descending: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma-joined).
    pub from: Vec<TableRef>,
    /// Explicit JOIN clauses.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

/// Any SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`.
    Select(SelectStmt),
    /// `EXPLAIN [ANALYZE] SELECT ...`: renders the plan (and, with
    /// `ANALYZE`, executes it and annotates each operator with observed
    /// rows and wall-time).
    Explain {
        /// Whether to execute the statement and report runtime figures.
        analyze: bool,
        /// The statement being explained (only `SELECT` is accepted).
        inner: Box<Statement>,
    },
    /// `CREATE TABLE name (col TYPE, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types in declaration order.
        columns: Vec<(String, DataType)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `CREATE [KEYWORD] INDEX name ON table (cols)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns in order.
        columns: Vec<String>,
        /// Inverted keyword index rather than a B-tree.
        keyword: bool,
    },
    /// `DROP INDEX name`.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `INSERT INTO table VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Rows of value expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `DELETE FROM table [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional row filter (all rows when absent).
        filter: Option<Expr>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// `(column, new value)` assignments, all reading the pre-update row.
        assignments: Vec<(String, Expr)>,
        /// Optional row filter (all rows when absent).
        filter: Option<Expr>,
    },
    /// `ANALYZE [TABLE name]`: collects planner statistics (row count,
    /// per-column min/max, null fraction, NDV sketch) for one table or,
    /// with no name, for every table in the catalog.
    Analyze {
        /// Table to analyze; `None` analyzes all tables.
        table: Option<String>,
    },
    /// `CREATE MATERIALIZED VIEW name [REFRESH ON COMMIT] AS SELECT ...`:
    /// materializes the query result as a real table and maintains it
    /// delta-wise from committed transactions.
    CreateMaterializedView {
        /// View name (also its backing-table name).
        name: String,
        /// Synchronous maintenance on every commit; otherwise deltas
        /// accumulate in a bounded log until `REFRESH MATERIALIZED VIEW`.
        refresh_on_commit: bool,
        /// The defining query.
        query: SelectStmt,
    },
    /// `DROP MATERIALIZED VIEW name`.
    DropMaterializedView {
        /// View name.
        name: String,
    },
    /// `REFRESH MATERIALIZED VIEW name [FULL]`: drains the pending delta
    /// log of a deferred view (or, with `FULL`, recomputes the view from
    /// scratch regardless of the log).
    RefreshMaterializedView {
        /// View name.
        name: String,
        /// Force a from-scratch recompute instead of the delta drain.
        full: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_aggregate_walks_subtrees() {
        let agg = Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        let nested = Expr::binary(BinOp::Add, Expr::lit(1i64), agg);
        assert!(nested.has_aggregate());
        let plain = Expr::binary(BinOp::Eq, Expr::col(None, "a"), Expr::lit("x"));
        assert!(!plain.has_aggregate());
        let in_list = Expr::InList {
            expr: Box::new(Expr::col(None, "a")),
            list: vec![Expr::Aggregate {
                func: AggFunc::Max,
                arg: None,
                distinct: false,
            }],
            negated: false,
        };
        assert!(in_list.has_aggregate());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Ge.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
