//! SQL tokenizer.

use crate::error::{RelError, RelResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// A `'...'` string literal with `''` escapes resolved.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A punctuation or operator token: `( ) , . * = <> < <= > >= + - / ?`.
    Sym(&'static str),
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the keyword `kw` (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL text.
pub fn tokenize_sql(input: &str) -> RelResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            // Line comment.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Consume one full UTF-8 char.
                        let rest = &input[i..];
                        let ch = rest.chars().next().expect("in-bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                    None => {
                        return Err(RelError::Parse("unterminated string literal".into()));
                    }
                }
            }
            tokens.push(Token::Str(s));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let is_float = i < bytes.len()
                && bytes[i] == b'.'
                && bytes
                    .get(i + 1)
                    .is_some_and(|b| (*b as char).is_ascii_digit());
            if is_float {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: f64 = text
                    .parse()
                    .map_err(|_| RelError::Parse(format!("bad float literal {text:?}")))?;
                tokens.push(Token::Float(v));
            } else {
                let text = &input[start..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| RelError::Parse(format!("bad integer literal {text:?}")))?;
                tokens.push(Token::Int(v));
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let ch = input[i..].chars().next().expect("in-bounds");
                if ch.is_alphanumeric() || ch == '_' {
                    i += ch.len_utf8();
                } else {
                    break;
                }
            }
            tokens.push(Token::Ident(input[start..i].to_string()));
        } else {
            let sym: &'static str = match c {
                '(' => "(",
                ')' => ")",
                ',' => ",",
                '.' => ".",
                '*' => "*",
                '+' => "+",
                '-' => "-",
                '/' => "/",
                '=' => "=",
                '<' => match bytes.get(i + 1) {
                    Some(b'=') => "<=",
                    Some(b'>') => "<>",
                    _ => "<",
                },
                '>' => match bytes.get(i + 1) {
                    Some(b'=') => ">=",
                    _ => ">",
                },
                '!' => match bytes.get(i + 1) {
                    Some(b'=') => "<>",
                    _ => return Err(RelError::Parse("unexpected '!'".into())),
                },
                '?' => "?",
                other => return Err(RelError::Parse(format!("unexpected character {other:?}"))),
            };
            i += sym.len().max(if c == '!' { 2 } else { 1 });
            tokens.push(Token::Sym(sym));
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let toks = tokenize_sql("SELECT a.b, c FROM t WHERE x >= 10.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Sym("."),
                Token::Ident("b".into()),
                Token::Sym(","),
                Token::Ident("c".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("x".into()),
                Token::Sym(">="),
                Token::Float(10.5),
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        let toks = tokenize_sql("'it''s a test' 'multi word'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("it's a test".into()),
                Token::Str("multi word".into())
            ]
        );
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(tokenize_sql("'oops").is_err());
    }

    #[test]
    fn operators_and_inequalities() {
        let toks = tokenize_sql("a <> b != c <= d >= e < f > g").unwrap();
        let syms: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Sym(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Sym("<>"),
                &Token::Sym("<>"),
                &Token::Sym("<="),
                &Token::Sym(">="),
                &Token::Sym("<"),
                &Token::Sym(">"),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize_sql("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn numbers() {
        let toks = tokenize_sql("42 3.5 7").unwrap();
        assert_eq!(toks, vec![Token::Int(42), Token::Float(3.5), Token::Int(7)]);
    }

    #[test]
    fn integer_then_dot_is_projection_not_float() {
        // `1.` should not eat the dot when not followed by a digit.
        let toks = tokenize_sql("t1.col").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t1".into()),
                Token::Sym("."),
                Token::Ident("col".into())
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize_sql("'αβγ café'").unwrap();
        assert_eq!(toks, vec![Token::Str("αβγ café".into())]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize_sql("SELECT @x").is_err());
        assert!(tokenize_sql("a ! b").is_err());
    }
}
