//! Fixed-capacity columnar segments: the building block of the
//! append-only column store in [`crate::colstore`].
//!
//! A segment holds up to [`SEGMENT_CAPACITY`] rows decomposed into typed
//! column vectors (`Vec<i64>` / `Vec<f64>`; strings offset-packed into a
//! per-segment arena) with a null bitmap per column and a tombstone
//! bitmap for deleted slots. Per-column [`ZoneMap`]s (min/max + null
//! count) are widened on every write and let scans skip whole segments
//! for simple comparison predicates. The vectorized kernels in this
//! module evaluate such predicates over column slices into selection
//! vectors without materializing rows.
//!
//! Type homogeneity invariant: [`crate::schema::TableSchema::check_row`]
//! coerces every stored value to the column's declared [`DataType`] (or
//! `Null`) before it reaches a segment, so each column vector holds one
//! physical type and the kernels can dispatch once per segment instead
//! of once per value.

use std::cmp::Ordering;

use crate::value::{DataType, Value};

/// Rows per segment. Small enough that a segment's columns fit in cache
/// during a vectorized pass, large enough to amortize per-segment
/// dispatch and zone-map checks.
pub const SEGMENT_CAPACITY: usize = 1024;

/// Comparison operator for a pushed-down predicate, mirroring the
/// comparison subset of `BinOp` with [`Value::compare`] semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether an ordering between a stored value and the literal
    /// satisfies the operator.
    #[inline]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// A sargable conjunct `column <op> literal`, extracted from a filter
/// predicate. Kernels drop rows for which the comparison is false *or*
/// unknown — exactly how a WHERE clause treats the conjunct, so applying
/// it early can never change which rows survive the full predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplePred {
    /// Column position in the table schema.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub lit: Value,
}

/// Typed storage for one column of a segment. Null slots hold a
/// sentinel (0 / 0.0 / empty span) and are masked by the null bitmap.
#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text {
        /// `(offset, len)` into `arena` per slot.
        spans: Vec<(u32, u32)>,
        /// Concatenated string bytes. Updates append; stale bytes are
        /// reclaimed only when the store rebuilds the segment list.
        arena: String,
    },
}

/// One column: typed vector plus null bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    nulls: Vec<bool>,
}

impl Column {
    fn new(ty: DataType) -> Self {
        let data = match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Text => ColumnData::Text {
                spans: Vec::new(),
                arena: String::new(),
            },
        };
        Column {
            data,
            nulls: Vec::new(),
        }
    }

    fn push(&mut self, v: &Value) {
        self.nulls.push(v.is_null());
        match (&mut self.data, v) {
            (ColumnData::Int(vals), Value::Int(i)) => vals.push(*i),
            (ColumnData::Int(vals), _) => vals.push(0),
            (ColumnData::Float(vals), Value::Float(f)) => vals.push(*f),
            (ColumnData::Float(vals), _) => vals.push(0.0),
            (ColumnData::Text { spans, arena }, Value::Text(s)) => {
                spans.push((arena.len() as u32, s.len() as u32));
                arena.push_str(s);
            }
            (ColumnData::Text { spans, .. }, _) => spans.push((0, 0)),
        }
    }

    /// Overwrites `slot` in place. Text updates append to the arena and
    /// abandon the old span.
    fn set(&mut self, slot: usize, v: &Value) {
        self.nulls[slot] = v.is_null();
        match (&mut self.data, v) {
            (ColumnData::Int(vals), Value::Int(i)) => vals[slot] = *i,
            (ColumnData::Int(vals), _) => vals[slot] = 0,
            (ColumnData::Float(vals), Value::Float(f)) => vals[slot] = *f,
            (ColumnData::Float(vals), _) => vals[slot] = 0.0,
            (ColumnData::Text { spans, arena }, Value::Text(s)) => {
                spans[slot] = (arena.len() as u32, s.len() as u32);
                arena.push_str(s);
            }
            (ColumnData::Text { spans, .. }, _) => spans[slot] = (0, 0),
        }
    }

    /// Materializes the value at `slot`.
    #[inline]
    pub fn value(&self, slot: usize) -> Value {
        if self.nulls[slot] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(vals) => Value::Int(vals[slot]),
            ColumnData::Float(vals) => Value::Float(vals[slot]),
            ColumnData::Text { spans, arena } => {
                let (off, len) = spans[slot];
                Value::Text(arena[off as usize..(off + len) as usize].to_string())
            }
        }
    }
}

/// Per-segment, per-column min/max statistics. `min`/`max` stay `None`
/// until the first *comparable* non-null value is written (NULLs and NaN
/// never satisfy a comparison, so they are excluded). Zones only widen:
/// deletes and updates leave old bounds in place, keeping the zone a
/// conservative superset of the live values.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    min: Option<Value>,
    max: Option<Value>,
    null_count: u32,
}

impl ZoneMap {
    /// Widens the zone to cover `v`.
    fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        if matches!(v, Value::Float(f) if f.is_nan()) {
            // NaN compares with nothing: it can never satisfy a pushed
            // predicate and would poison min/max comparisons.
            return;
        }
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                if v.compare(min) == Some(Ordering::Less) {
                    self.min = Some(v.clone());
                }
                if v.compare(max) == Some(Ordering::Greater) {
                    self.max = Some(v.clone());
                }
            }
            _ => {
                self.min = Some(v.clone());
                self.max = Some(v.clone());
            }
        }
    }

    /// NULL slots recorded for this column.
    pub fn null_count(&self) -> u32 {
        self.null_count
    }

    /// Min/max bounds, `None` when no comparable value was written.
    pub fn bounds(&self) -> Option<(&Value, &Value)> {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => Some((min, max)),
            _ => None,
        }
    }

    /// Whether *any* value in `[min, max]` could satisfy `op lit`.
    /// Returning `false` proves no row in the segment matches the
    /// conjunct (NULLs and NaN never match a comparison); returning
    /// `true` makes no promise and the kernels still run.
    pub fn can_match(&self, op: CmpOp, lit: &Value) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // Only NULL/NaN values were ever written: no comparison
            // predicate can accept them.
            return false;
        };
        let (Some(cmp_min), Some(cmp_max)) = (min.compare(lit), max.compare(lit)) else {
            // NULL literal, NaN literal, or a type the whole (homogeneous)
            // column cannot compare with: nothing here can match.
            return false;
        };
        match op {
            CmpOp::Eq => !(cmp_min.is_gt() || cmp_max.is_lt()),
            CmpOp::Ne => !(cmp_min.is_eq() && cmp_max.is_eq()),
            CmpOp::Lt => cmp_min.is_lt(),
            CmpOp::Le => cmp_min.is_le(),
            CmpOp::Gt => cmp_max.is_gt(),
            CmpOp::Ge => cmp_max.is_ge(),
        }
    }
}

/// A fixed-capacity run of rows in columnar form. Slots are appended in
/// `RowId` order and never move; deletes flip the tombstone bit.
#[derive(Debug, Clone)]
pub struct Segment {
    /// RowId per slot, strictly increasing within the segment.
    ids: Vec<u64>,
    /// Tombstone bitmap: `false` = deleted.
    live: Vec<bool>,
    /// Commit sequence number that created each slot (0 = pre-MVCC:
    /// bootstrap, replayed snapshot records, or rebuilt segments).
    insert_csn: Vec<u64>,
    /// Commit sequence number that tombstoned each slot (0 = never
    /// deleted). Cleared again when a rollback revives the slot.
    delete_csn: Vec<u64>,
    live_count: usize,
    cols: Vec<Column>,
    zones: Vec<ZoneMap>,
}

impl Segment {
    /// An empty segment for the given column types.
    pub fn new(types: &[DataType]) -> Self {
        Segment {
            ids: Vec::new(),
            live: Vec::new(),
            insert_csn: Vec::new(),
            delete_csn: Vec::new(),
            live_count: 0,
            cols: types.iter().map(|&ty| Column::new(ty)).collect(),
            zones: types.iter().map(|_| ZoneMap::default()).collect(),
        }
    }

    /// Number of slots (live + tombstoned).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Live (non-tombstoned) rows.
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Whether the segment has room for another row.
    pub fn has_capacity(&self) -> bool {
        self.ids.len() < SEGMENT_CAPACITY
    }

    /// RowId stored at `slot`.
    #[inline]
    pub fn id_at(&self, slot: usize) -> u64 {
        self.ids[slot]
    }

    /// Lowest RowId in the segment (`None` when empty).
    #[inline]
    pub fn first_id(&self) -> Option<u64> {
        self.ids.first().copied()
    }

    /// Highest RowId in the segment (`None` when empty).
    #[inline]
    pub fn last_id(&self) -> Option<u64> {
        self.ids.last().copied()
    }

    /// Binary-searches the strictly-increasing id vector for `id`,
    /// returning its slot.
    #[inline]
    pub fn find_slot(&self, id: u64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Whether `slot` is live.
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live[slot]
    }

    /// CSN of the commit that created `slot` (0 = pre-MVCC).
    #[inline]
    pub fn insert_csn_at(&self, slot: usize) -> u64 {
        self.insert_csn[slot]
    }

    /// CSN of the commit that tombstoned `slot` (0 = still live).
    #[inline]
    pub fn delete_csn_at(&self, slot: usize) -> u64 {
        self.delete_csn[slot]
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// The zone map for `col`.
    pub fn zone(&self, col: usize) -> &ZoneMap {
        &self.zones[col]
    }

    /// Appends a row stamped with the committing transaction's `csn`,
    /// returning its slot. The caller guarantees `id` is greater than
    /// every id already in the segment and that `row` values match the
    /// declared column types (enforced upstream by `check_row`).
    pub fn push(&mut self, id: u64, row: &[Value], csn: u64) -> usize {
        debug_assert!(self.has_capacity());
        debug_assert!(self.ids.last().is_none_or(|&last| last < id));
        let slot = self.ids.len();
        self.ids.push(id);
        self.live.push(true);
        self.insert_csn.push(csn);
        self.delete_csn.push(0);
        self.live_count += 1;
        for ((col, zone), v) in self.cols.iter_mut().zip(&mut self.zones).zip(row) {
            col.push(v);
            zone.observe(v);
        }
        slot
    }

    /// Tombstones `slot`, stamping the deleting commit's `csn`. Zone maps
    /// are left untouched (they only ever widen), so pruning stays
    /// conservative.
    pub fn delete(&mut self, slot: usize, csn: u64) {
        debug_assert!(self.live[slot]);
        self.live[slot] = false;
        self.delete_csn[slot] = csn;
        self.live_count -= 1;
    }

    /// Clears the tombstone on `slot` (re-insert under an existing id,
    /// e.g. WAL rollback). No-op when the slot is already live.
    pub fn revive(&mut self, slot: usize) {
        if !self.live[slot] {
            self.live[slot] = true;
            self.delete_csn[slot] = 0;
            self.live_count += 1;
        }
    }

    /// Overwrites `slot` in place, widening zones to cover the new
    /// values. The old values' contribution to min/max is *not* removed.
    pub fn update(&mut self, slot: usize, row: &[Value]) {
        for ((col, zone), v) in self.cols.iter_mut().zip(&mut self.zones).zip(row) {
            col.set(slot, v);
            zone.observe(v);
        }
    }

    /// Materializes the full row at `slot`.
    pub fn row(&self, slot: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(slot)).collect()
    }

    /// Materializes the row at `slot` into `buf`, filling only the
    /// columns selected by `mask` (others become `Null`). With no mask
    /// every column is materialized.
    pub fn row_into(&self, slot: usize, mask: Option<&[bool]>, buf: &mut Vec<Value>) {
        buf.clear();
        match mask {
            None => buf.extend(self.cols.iter().map(|c| c.value(slot))),
            Some(mask) => buf.extend(self.cols.iter().zip(mask).map(|(c, &keep)| {
                if keep {
                    c.value(slot)
                } else {
                    Value::Null
                }
            })),
        }
    }

    /// Materializes column `col` for every slot in `sel`, appending one
    /// value to `out[k]` for slot `sel[k]`. The `ColumnData` match is
    /// hoisted out of the per-slot loop: this is the columnar gather
    /// backing the fused scan-project path, where an entire segment's
    /// surviving slots materialize one column at a time.
    pub fn gather_column(&self, col: usize, sel: &[u32], out: &mut [Vec<Value>]) {
        let c = &self.cols[col];
        match &c.data {
            ColumnData::Int(vals) => {
                for (row, &slot) in out.iter_mut().zip(sel) {
                    let s = slot as usize;
                    row.push(if c.nulls[s] {
                        Value::Null
                    } else {
                        Value::Int(vals[s])
                    });
                }
            }
            ColumnData::Float(vals) => {
                for (row, &slot) in out.iter_mut().zip(sel) {
                    let s = slot as usize;
                    row.push(if c.nulls[s] {
                        Value::Null
                    } else {
                        Value::Float(vals[s])
                    });
                }
            }
            ColumnData::Text { spans, arena } => {
                for (row, &slot) in out.iter_mut().zip(sel) {
                    let s = slot as usize;
                    row.push(if c.nulls[s] {
                        Value::Null
                    } else {
                        let (off, len) = spans[s];
                        Value::Text(arena[off as usize..(off + len) as usize].to_string())
                    });
                }
            }
        }
    }

    /// Whether the zone maps admit any match for *all* of `preds`.
    pub fn zones_admit(&self, preds: &[SimplePred]) -> bool {
        preds
            .iter()
            .all(|p| self.zones[p.col].can_match(p.op, &p.lit))
    }

    /// Collects the live slots in `range` into `sel`.
    pub fn live_slots(&self, range: std::ops::Range<usize>, sel: &mut Vec<u32>) {
        sel.clear();
        sel.extend(
            self.live[range.clone()]
                .iter()
                .zip(range)
                .filter(|(&live, _)| live)
                .map(|(_, slot)| slot as u32),
        );
    }

    /// Narrows `sel` to the slots whose value satisfies `pred`, with the
    /// same accept set as evaluating the conjunct through
    /// [`Value::compare`]: false *or unknown* drops the slot.
    pub fn apply_pred(&self, pred: &SimplePred, sel: &mut Vec<u32>) {
        let col = &self.cols[pred.col];
        let nulls = &col.nulls;
        let op = pred.op;
        match (&col.data, &pred.lit) {
            (ColumnData::Int(vals), Value::Int(lit)) => {
                let lit = *lit;
                sel.retain(|&s| {
                    let s = s as usize;
                    !nulls[s] && op.matches(vals[s].cmp(&lit))
                });
            }
            (ColumnData::Int(vals), Value::Float(lit)) => {
                // Exact mixed comparison, same as the scalar path: casting
                // the column values to f64 would collapse integers beyond
                // 2^53 onto the literal.
                let lit = *lit;
                sel.retain(|&s| {
                    let s = s as usize;
                    !nulls[s]
                        && crate::value::cmp_int_float(vals[s], lit).is_some_and(|o| op.matches(o))
                });
            }
            (ColumnData::Float(vals), Value::Float(lit)) => {
                let lit = *lit;
                sel.retain(|&s| {
                    let s = s as usize;
                    !nulls[s] && vals[s].partial_cmp(&lit).is_some_and(|o| op.matches(o))
                });
            }
            (ColumnData::Float(vals), Value::Int(lit)) => {
                // Mirror of the Int-column case: compare the integer
                // literal exactly against each float, never through a cast.
                let lit = *lit;
                sel.retain(|&s| {
                    let s = s as usize;
                    !nulls[s]
                        && crate::value::cmp_int_float(lit, vals[s])
                            .map(std::cmp::Ordering::reverse)
                            .is_some_and(|o| op.matches(o))
                });
            }
            (ColumnData::Text { spans, arena }, Value::Text(lit)) => {
                let lit = lit.as_str();
                sel.retain(|&s| {
                    let s = s as usize;
                    if nulls[s] {
                        return false;
                    }
                    let (off, len) = spans[s];
                    let text = &arena[off as usize..(off + len) as usize];
                    op.matches(text.cmp(lit))
                });
            }
            // Remaining cross-type cases (Int column vs Text literal,
            // Text column vs numeric literal, any column vs NULL):
            // `Value::compare` is unknown for every row.
            _ => sel.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_int(values: &[Option<i64>]) -> Segment {
        let mut seg = Segment::new(&[DataType::Int]);
        for (i, v) in values.iter().enumerate() {
            let val = v.map_or(Value::Null, Value::Int);
            seg.push(i as u64, &[val], 0);
        }
        seg
    }

    fn pred(op: CmpOp, lit: Value) -> SimplePred {
        SimplePred { col: 0, op, lit }
    }

    fn selected(seg: &Segment, p: &SimplePred) -> Vec<u32> {
        let mut sel = Vec::new();
        seg.live_slots(0..seg.len(), &mut sel);
        seg.apply_pred(p, &mut sel);
        sel
    }

    #[test]
    fn zone_bounds_track_min_max_and_nulls() {
        let seg = seg_int(&[Some(5), None, Some(2), Some(9)]);
        let zone = seg.zone(0);
        let (min, max) = zone.bounds().unwrap();
        assert_eq!((min, max), (&Value::Int(2), &Value::Int(9)));
        assert_eq!(zone.null_count(), 1);
    }

    #[test]
    fn zone_pruning_matches_kernel_results() {
        // Exhaustive consistency: whenever the zone says "no match",
        // the kernel must select nothing.
        let seg = seg_int(&[Some(10), Some(20), None, Some(30)]);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in [0i64, 9, 10, 15, 30, 31, 100] {
                let p = pred(op, Value::Int(lit));
                let sel = selected(&seg, &p);
                if !seg.zone(0).can_match(op, &p.lit) {
                    assert!(
                        sel.is_empty(),
                        "zone pruned but kernel found {sel:?} for {p:?}"
                    );
                }
            }
        }
        // And pruning actually fires on out-of-range literals.
        assert!(!seg.zone(0).can_match(CmpOp::Eq, &Value::Int(99)));
        assert!(!seg.zone(0).can_match(CmpOp::Lt, &Value::Int(10)));
        assert!(!seg.zone(0).can_match(CmpOp::Gt, &Value::Int(30)));
    }

    #[test]
    fn kernel_mixed_type_compare_is_exact() {
        // Int column vs float literal: 2^53 and 2^53+1 collapse onto the
        // same f64 under a cast; the kernel must keep them distinct, and
        // must agree with the scalar Value::compare path.
        let p53 = 1i64 << 53;
        let seg = seg_int(&[Some(p53), Some(p53 + 1), Some(i64::MAX)]);
        let sel = selected(&seg, &pred(CmpOp::Eq, Value::Float(p53 as f64)));
        assert_eq!(sel, vec![0], "only the exactly-equal slot matches");
        let sel = selected(&seg, &pred(CmpOp::Gt, Value::Float(p53 as f64)));
        assert_eq!(sel, vec![1, 2]);
        // i64::MAX as f64 rounds up to 2^63: nothing equals it.
        let two_63 = 9_223_372_036_854_775_808.0f64;
        let sel = selected(&seg, &pred(CmpOp::Eq, Value::Float(two_63)));
        assert!(sel.is_empty());
        let sel = selected(&seg, &pred(CmpOp::Lt, Value::Float(two_63)));
        assert_eq!(sel, vec![0, 1, 2]);

        // Float column vs big int literal, the mirror case.
        let mut fseg = Segment::new(&[DataType::Float]);
        fseg.push(0, &[Value::Float(p53 as f64)], 0);
        fseg.push(1, &[Value::Float((p53 as f64) * 2.0)], 0);
        let mut sel = Vec::new();
        fseg.live_slots(0..fseg.len(), &mut sel);
        fseg.apply_pred(&pred(CmpOp::Lt, Value::Int(p53 + 1)), &mut sel);
        assert_eq!(sel, vec![0], "2^53 < 2^53+1 exactly (a cast would tie)");
    }

    #[test]
    fn all_null_column_prunes_everything() {
        let seg = seg_int(&[None, None]);
        assert!(!seg.zone(0).can_match(CmpOp::Eq, &Value::Int(0)));
        assert!(!seg.zone(0).can_match(CmpOp::Ne, &Value::Int(0)));
    }

    #[test]
    fn null_literal_prunes() {
        let seg = seg_int(&[Some(1)]);
        assert!(!seg.zone(0).can_match(CmpOp::Eq, &Value::Null));
        assert!(selected(&seg, &pred(CmpOp::Eq, Value::Null)).is_empty());
    }

    #[test]
    fn nan_values_never_poison_zones() {
        let mut seg = Segment::new(&[DataType::Float]);
        seg.push(0, &[Value::Float(f64::NAN)], 0);
        // Only NaN so far: zone has no bounds, everything prunes...
        assert!(!seg.zone(0).can_match(CmpOp::Ge, &Value::Float(0.0)));
        seg.push(1, &[Value::Float(1.5)], 0);
        // ...but a later comparable value re-enables matching.
        assert!(seg.zone(0).can_match(CmpOp::Eq, &Value::Float(1.5)));
        let sel = selected(&seg, &pred(CmpOp::Ge, Value::Float(0.0)));
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn kernels_mirror_value_compare_across_types() {
        let mut seg = Segment::new(&[DataType::Int, DataType::Float, DataType::Text]);
        seg.push(
            0,
            &[Value::Int(3), Value::Float(2.5), Value::Text("pear".into())],
            0,
        );
        seg.push(1, &[Value::Null, Value::Null, Value::Null], 0);
        let cases = [
            (
                SimplePred {
                    col: 0,
                    op: CmpOp::Eq,
                    lit: Value::Float(3.0),
                },
                vec![0],
            ),
            (
                SimplePred {
                    col: 0,
                    op: CmpOp::Lt,
                    lit: Value::Float(2.5),
                },
                vec![],
            ),
            (
                SimplePred {
                    col: 1,
                    op: CmpOp::Gt,
                    lit: Value::Int(2),
                },
                vec![0],
            ),
            (
                SimplePred {
                    col: 1,
                    op: CmpOp::Gt,
                    lit: Value::Text("x".into()),
                },
                vec![],
            ),
            (
                SimplePred {
                    col: 2,
                    op: CmpOp::Ge,
                    lit: Value::Text("pea".into()),
                },
                vec![0],
            ),
            (
                SimplePred {
                    col: 2,
                    op: CmpOp::Lt,
                    lit: Value::Int(7),
                },
                vec![],
            ),
        ];
        for (p, want) in cases {
            assert_eq!(selected(&seg, &p), want, "pred {p:?}");
        }
    }

    #[test]
    fn tombstones_hide_rows_but_zones_stay_wide() {
        let mut seg = seg_int(&[Some(1), Some(100)]);
        seg.delete(1, 0);
        assert_eq!(seg.live_count(), 1);
        assert_eq!(selected(&seg, &pred(CmpOp::Ge, Value::Int(0))), vec![0]);
        // The deleted max still widens the zone — conservative, never wrong.
        assert!(seg.zone(0).can_match(CmpOp::Eq, &Value::Int(100)));
    }

    #[test]
    fn update_widens_zone_and_rewrites_text_span() {
        let mut seg = Segment::new(&[DataType::Text]);
        seg.push(0, &[Value::Text("bb".into())], 0);
        seg.update(0, &[Value::Text("zz".into())]);
        assert_eq!(seg.row(0), vec![Value::Text("zz".into())]);
        let (min, max) = seg.zone(0).bounds().unwrap();
        assert_eq!(min, &Value::Text("bb".into())); // old bound kept
        assert_eq!(max, &Value::Text("zz".into()));
    }

    #[test]
    fn masked_materialization_nulls_unused_columns() {
        let mut seg = Segment::new(&[DataType::Int, DataType::Text]);
        seg.push(0, &[Value::Int(7), Value::Text("long string".into())], 0);
        let mut buf = Vec::new();
        seg.row_into(0, Some(&[true, false]), &mut buf);
        assert_eq!(buf, vec![Value::Int(7), Value::Null]);
    }
}
