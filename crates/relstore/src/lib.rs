#![warn(missing_docs)]

//! # xomatiq-relstore
//!
//! An embedded relational engine — the stand-in for the commercial RDBMS
//! (Oracle 9i) underneath the paper's Data Hounds warehouse.
//!
//! The paper's architecture leans on four properties of the relational
//! substrate (§2.2): the ability to store and process large volumes of
//! tuples, mature query processing ("all of the power of relational
//! database systems"), meticulous index support (§3.2), and "the
//! concurrency access and crash recovery features of an RDBMS". This crate
//! implements each of them from scratch:
//!
//! * [`value`] / [`schema`] — typed values (the paper distinguishes string
//!   from numeric data because "common queries often require to compare
//!   these numeric types across large datasets"), columns, table schemas
//!   and a catalog.
//! * [`table`] / [`colstore`] / [`segment`] — an append-only segmented
//!   column store with stable, insertion-ordered row ids, per-segment
//!   zone maps for scan pruning, and vectorized predicate kernels.
//! * [`index`] — composite-key B-tree secondary indexes with point and
//!   range scans.
//! * [`text`] — an inverted keyword index supporting the paper's
//!   "efficient keyword-based searches in the relational database system".
//! * [`sql`] — a SQL subset (lexer, parser, AST) covering everything the
//!   XQ2SQL translator emits: `SELECT` (joins, `WHERE`, `ORDER BY`,
//!   `LIMIT`, `DISTINCT`, aggregates), DML and DDL.
//! * [`expr`], [`plan`], [`planner`], [`exec`] — expression evaluation,
//!   logical plans, an index-selecting planner, and the executor
//!   (filtered scans, index scans, nested-loop and hash joins, sort).
//! * [`wal`] / [`db`] — a write-ahead log with crash recovery, and the
//!   [`Database`] facade combining all of the above behind reader/writer
//!   locking.
//!
//! * [`query`] — the unified [`Query`] builder
//!   (`db.query(sql).bind(v).with_stats().run()`), prepared statements,
//!   the LRU plan cache, and typed row access ([`ResultRow`]).
//! * [`session`] — the per-connection [`Session`] state (prepared-
//!   statement handles, worker overrides) the wire-protocol server
//!   builds on.
//! * [`vtab`] / [`recorder`] — the introspection layer: `sys_*` system
//!   virtual tables over live engine telemetry, and the slow-query
//!   flight recorder behind `sys_queries` / `sys_profiles`.
//! * [`stats`] — per-table row counts, min/max, null fractions and NDV
//!   sketches (collected by `ANALYZE`, maintained incrementally) that
//!   drive the planner's cardinality estimates and the typed
//!   [`PlanExplain`] tree `EXPLAIN` renders.
//!
//! ```
//! use xomatiq_relstore::Database;
//!
//! let db = Database::in_memory();
//! db.query("CREATE TABLE enzymes (ec TEXT, description TEXT, sites INT)").run().unwrap();
//! db.query("INSERT INTO enzymes VALUES (?, ?, ?)")
//!     .bind("1.14.17.3")
//!     .bind("Peptidylglycine monooxygenase.")
//!     .bind(5i64)
//!     .run()
//!     .unwrap();
//! let out = db.query("SELECT ec FROM enzymes WHERE sites > ?").bind(2i64).run().unwrap();
//! assert_eq!(out.rows.rows().len(), 1);
//! for row in out.rows {
//!     let ec: String = row.get("ec").unwrap();
//!     assert_eq!(ec, "1.14.17.3");
//! }
//! ```

pub mod colstore;
pub mod db;
pub mod error;
pub mod exec;
pub(crate) mod exec_parallel;
pub mod exec_reference;
pub mod expr;
pub mod index;
pub(crate) mod metrics;
pub mod plan;
pub mod planner;
pub(crate) mod pool;
pub mod query;
pub mod recorder;
pub mod regex;
pub mod schema;
pub mod segment;
pub mod session;
pub mod sql;
pub mod stats;
pub mod table;
pub mod text;
pub mod value;
pub(crate) mod view;
pub mod vtab;
pub mod wal;

pub use db::{AnalyzedQuery, Database, DatabaseOptions, ResultSet};
pub use error::{RelError, RelResult};
pub use exec::{format_ns, ExecStats, OpProfile};
pub use plan::{PlanEstimate, PlanExplain, PlanExplainNode, PlannedQuery};
pub use query::{ColumnError, FromValue, Prepared, Query, QueryOutcome, ResultRow, ResultRows};
pub use recorder::{FlightRecorder, QueryRecord};
pub use schema::{Column, TableSchema};
pub use session::{Session, StmtHandle};
pub use stats::{ColumnStats, NdvSketch, StatsCatalog, TableStats};
pub use value::{DataType, Value};
pub use vtab::VirtualTableProvider;
pub use wal::{Corruption, FaultConfig, FaultyIo, RecoveryReport, SlowIo, StdFileIo, WalIo};
