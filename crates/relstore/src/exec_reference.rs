//! Reference (materializing) plan interpreter.
//!
//! The seed engine's pull-everything executor, retained as the semantic
//! oracle for the streaming executor in [`crate::exec`]: every operator
//! produces a fully materialized `(schema, rows)` pair with the simplest
//! possible implementation. The property tests run randomized queries
//! through both executors and require row-for-row identical output,
//! including order — so the hash join here always builds on the right
//! input and probes with the left, matching the streaming executor's
//! deterministic left-major output order, and `TopK` is spelled as the
//! sort/skip/take it fuses.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::db::Storage;
use crate::error::RelResult;
use crate::exec::{bound_ref, compare_rows, materialize_aggregates, projected_schema};
use crate::expr::{eval, eval_predicate, RowSchema};
use crate::plan::{IndexAccess, Plan};
use crate::sql::ast::Expr;
use crate::table::Row;
use crate::value::Value;

/// Executes a plan by materializing every operator's full output.
pub fn execute_plan(plan: &Plan, storage: &Storage) -> RelResult<(RowSchema, Vec<Row>)> {
    match plan {
        Plan::Scan { table, alias } => {
            let t = storage.table(table)?;
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = t.scan().map(|(_, r)| r).collect();
            Ok((schema, rows))
        }
        Plan::IndexScan {
            table,
            alias,
            index,
            access,
        } => {
            let t = storage.table(table)?;
            let idx = storage.btree_index(index)?;
            let mut ids = match access {
                IndexAccess::Exact(values) => {
                    if values.len() == idx.key_columns().len() {
                        idx.lookup(values)
                    } else {
                        idx.lookup_prefix(values)
                    }
                }
                IndexAccess::Range {
                    prefix,
                    lower,
                    upper,
                } => idx.range(prefix, bound_ref(lower), bound_ref(upper)),
            };
            // Return rows in insertion (document) order, matching Scan.
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = ids.into_iter().filter_map(|id| t.get(id)).collect();
            Ok((schema, rows))
        }
        Plan::KeywordScan {
            table,
            alias,
            index,
            keyword,
        } => {
            let t = storage.table(table)?;
            let idx = storage.keyword_index(index)?;
            let mut ids = idx.lookup(keyword);
            ids.sort();
            let schema =
                RowSchema::for_table(alias, t.schema().columns.iter().map(|c| c.name.clone()));
            let rows = ids.into_iter().filter_map(|id| t.get(id)).collect();
            Ok((schema, rows))
        }
        Plan::Filter { input, predicate } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let mut out = Vec::new();
            for row in rows {
                if eval_predicate(predicate, &schema, &row)? {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::NestedLoopJoin {
            left,
            right,
            condition,
        } => {
            let (ls, lrows) = execute_plan(left, storage)?;
            let (rs, rrows) = execute_plan(right, storage)?;
            let schema = ls.join(&rs);
            let mut out = Vec::new();
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    match condition {
                        Some(cond) => {
                            if eval_predicate(cond, &schema, &combined)? {
                                out.push(combined);
                            }
                        }
                        None => out.push(combined),
                    }
                }
            }
            Ok((schema, out))
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
            semi,
        } => {
            let (ls, lrows) = execute_plan(left, storage)?;
            let (rs, rrows) = execute_plan(right, storage)?;
            // Keys are evaluated once per row; NULL keys never join.
            let eval_keys =
                |keys: &[Expr], schema: &RowSchema, row: &Row| -> RelResult<Option<Vec<Value>>> {
                    let key: Vec<Value> = keys
                        .iter()
                        .map(|k| eval(k, schema, row))
                        .collect::<RelResult<_>>()?;
                    Ok(if key.iter().any(Value::is_null) {
                        None
                    } else {
                        Some(key)
                    })
                };
            if *semi {
                // Existence-only: emit each left row at most once and drop
                // the right side's columns (planner guaranteed nothing
                // downstream references them and the query is DISTINCT).
                let mut table: HashSet<Vec<Value>> = HashSet::new();
                for rrow in &rrows {
                    if let Some(key) = eval_keys(right_keys, &rs, rrow)? {
                        table.insert(key);
                    }
                }
                let mut out = Vec::new();
                for lrow in lrows {
                    if let Some(key) = eval_keys(left_keys, &ls, &lrow)? {
                        if table.contains(&key) {
                            out.push(lrow);
                        }
                    }
                }
                return Ok((ls, out));
            }
            let schema = ls.join(&rs);
            // Build on the right, probe with the left, so output order is
            // left-major — identical to the streaming executor.
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, rrow) in rrows.iter().enumerate() {
                if let Some(key) = eval_keys(right_keys, &rs, rrow)? {
                    table.entry(key).or_default().push(i);
                }
            }
            let mut out = Vec::new();
            for lrow in &lrows {
                let Some(key) = eval_keys(left_keys, &ls, lrow)? else {
                    continue;
                };
                if let Some(matches) = table.get(&key) {
                    for &i in matches {
                        let mut combined = lrow.clone();
                        combined.extend(rrows[i].iter().cloned());
                        match residual {
                            Some(cond) => {
                                if eval_predicate(cond, &schema, &combined)? {
                                    out.push(combined);
                                }
                            }
                            None => out.push(combined),
                        }
                    }
                }
            }
            Ok((schema, out))
        }
        Plan::Project { input, items, .. } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out_schema = projected_schema(items);
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected: Row = items
                    .iter()
                    .map(|item| eval(&item.expr, &schema, &row))
                    .collect::<RelResult<_>>()?;
                out.push(projected);
            }
            Ok((out_schema, out))
        }
        Plan::Aggregate {
            input,
            group_by,
            items,
            ..
        } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out_schema = projected_schema(items);
            // Group rows; with no GROUP BY everything is one global group.
            let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for row in rows {
                let key: Vec<Value> = group_by
                    .iter()
                    .map(|e| eval(e, &schema, &row))
                    .collect::<RelResult<_>>()?;
                match index.entry(key.clone()) {
                    Entry::Occupied(slot) => groups[*slot.get()].1.push(row),
                    Entry::Vacant(slot) => {
                        slot.insert(groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            if groups.is_empty() && group_by.is_empty() {
                // Global aggregate over empty input yields one row.
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (_, group_rows) in &groups {
                let null_row;
                let representative: &Row = match group_rows.first() {
                    Some(r) => r,
                    None => {
                        null_row = vec![Value::Null; schema.len()];
                        &null_row
                    }
                };
                let mut result_row = Vec::with_capacity(items.len());
                for item in items {
                    let materialized = materialize_aggregates(&item.expr, &schema, group_rows)?;
                    result_row.push(eval(&materialized, &schema, representative)?);
                }
                out.push(result_row);
            }
            Ok((out_schema, out))
        }
        Plan::Sort { input, keys } => {
            let (schema, mut rows) = execute_plan(input, storage)?;
            rows.sort_by(|a, b| compare_rows(a, b, keys));
            Ok((schema, rows))
        }
        Plan::TopK {
            input,
            keys,
            limit,
            offset,
        } => {
            // The unfused spelling: full sort, then skip/take.
            let (schema, mut rows) = execute_plan(input, storage)?;
            rows.sort_by(|a, b| compare_rows(a, b, keys));
            let out = rows
                .into_iter()
                .skip(*offset as usize)
                .take(*limit as usize)
                .collect();
            Ok((schema, out))
        }
        Plan::Distinct { input, visible } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let mut seen: HashSet<Vec<Value>> = HashSet::new();
            let mut out = Vec::new();
            for row in rows {
                let key: Vec<Value> = row.iter().take(*visible).cloned().collect();
                if seen.insert(key) {
                    out.push(row);
                }
            }
            Ok((schema, out))
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let (schema, rows) = execute_plan(input, storage)?;
            let out = rows
                .into_iter()
                .skip(*offset as usize)
                .take(limit.map(|l| l as usize).unwrap_or(usize::MAX))
                .collect();
            Ok((schema, out))
        }
    }
}
