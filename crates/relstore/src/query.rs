//! The unified query API: the [`Query`] builder, prepared statements, the
//! plan cache, and typed row access.
//!
//! One entry point replaces the old pile of `Database` methods
//! (`execute`, `query_with_stats`, `explain_analyze_query`,
//! `query_reference` — all now thin deprecated wrappers):
//!
//! ```
//! use xomatiq_relstore::Database;
//!
//! let db = Database::in_memory();
//! db.query("CREATE TABLE t (a INT, b TEXT)").run().unwrap();
//! db.query("INSERT INTO t VALUES (?, ?)").bind(1i64).bind("x").run().unwrap();
//! let out = db.query("SELECT b FROM t WHERE a = ?").bind(1i64).with_stats().run().unwrap();
//! assert_eq!(out.rows.rows().len(), 1);
//! assert!(out.stats.is_some());
//! ```
//!
//! `SELECT` plans resolved through the builder go through a per-database
//! LRU plan cache keyed by *(normalized SQL, bound parameter values)*; a
//! hit skips parse and plan entirely. Parameters are part of the key
//! because they are substituted into the statement as literals *before*
//! planning — that is what lets a bound `WHERE doc_id = ?` use the same
//! index-selection (sargability) analysis as its literal counterpart.
//! DDL invalidates the whole cache; hits, misses and evictions are
//! published as `relstore.plan.cache_{hit,miss,evict}`.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use xomatiq_obs::trace;

use crate::db::{Database, ResultSet};
use crate::error::{RelError, RelResult};
use crate::exec::{execute_plan_profiled, ExecStats, OpProfile};
use crate::metrics;
use crate::plan::PlannedQuery;
use crate::recorder::QueryRecord;
use crate::schema::Catalog;
use crate::sql::ast::{Expr, JoinClause, OrderKey, SelectItem, SelectStmt, Statement, TableRef};
use crate::sql::parser::parse_statement_with_params;
use crate::table::Row;
use crate::value::{DataType, Value};
use crate::vtab::SYS_PREFIX;

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Multiply-xor string hasher for the plan cache. Normalized-SQL keys run
/// hundreds of bytes, where SipHash's per-byte cost dominates the whole
/// hit path; this construction processes 8 bytes per multiply. The cache
/// is capacity-bounded, so hash-flooding resistance buys nothing here.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().unwrap());
            self.0 = (self.0 ^ word).wrapping_mul(SEED);
        }
        let mut tail = 0u64;
        for (i, b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(*b) << (8 * i);
        }
        self.0 = (self.0 ^ tail).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FxMap<V> = HashMap<String, V, std::hash::BuildHasherDefault<FxHasher>>;

/// One cached plan plus the statistics generation it was costed against.
struct CachedPlan {
    plan: Arc<PlannedQuery>,
    /// Stats generation of the snapshot the plan was built from. A lookup
    /// from a snapshot with a *different* generation misses (and evicts
    /// the entry), so `ANALYZE` provably invalidates every stale plan —
    /// even one inserted by a reader pinned to a pre-`ANALYZE` snapshot
    /// after the explicit cache clear ran.
    generation: u64,
    stamp: u64,
}

/// A capacity-bounded LRU cache of planned `SELECT`s, keyed by
/// [`cache_key`]. Owned by [`Database`] behind a mutex; cleared on DDL
/// and on `ANALYZE`, and cross-checked against the statistics generation
/// on every lookup.
pub(crate) struct PlanCache {
    capacity: usize,
    stamp: u64,
    entries: FxMap<CachedPlan>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            stamp: 0,
            entries: FxMap::default(),
        }
    }

    /// Looks up a plan, refreshing its LRU stamp on a hit. An entry built
    /// under a different stats generation is treated as a miss and
    /// dropped — its costing no longer reflects the querying snapshot.
    pub(crate) fn get(&mut self, key: &str, generation: u64) -> Option<Arc<PlannedQuery>> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.entries.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                entry.stamp = stamp;
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                self.entries.remove(key);
                None
            }
            None => None,
        }
    }

    /// Inserts a plan, evicting the least-recently-used entry when full.
    pub(crate) fn insert(&mut self, key: String, plan: Arc<PlannedQuery>, generation: u64) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                metrics::engine().cache_evict.inc();
            }
        }
        self.entries.insert(
            key,
            CachedPlan {
                plan,
                generation,
                stamp: self.stamp,
            },
        );
    }

    /// Drops every cached plan (the DDL invalidation hook).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached plans (used by tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Normalizes SQL for plan-cache keying: ASCII-lowercases and collapses
/// whitespace runs *outside* single-quoted string literals, and strips
/// `--` line comments the same way the lexer does. `SELECT  A` and
/// `select a` share a cache entry while `'CaSe'` keeps its meaning.
///
/// The two tokenizer subtleties matter for key *correctness*, not just
/// hit rate:
/// - `''` inside a literal is an escaped quote, **not** a close-and-
///   reopen: the literal stays open, so `SELECT 'O''Hara'` and
///   `select 'O''hara'` (different literals) must never share a key.
/// - comments are dead text to the lexer, so they must be dead text to
///   the key too — otherwise `SELECT a -- x\nFROM t` and
///   `SELECT a -- x FROM t` (whose `FROM` is genuinely commented out,
///   a *different statement*) would collide once the newline is
///   collapsed to a space.
pub(crate) fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut pending_space = false;
    while let Some(ch) = chars.next() {
        if ch == '-' && chars.peek() == Some(&'-') {
            // `--` line comment: skip to the newline, which then counts
            // as ordinary whitespace (mirrors tokenize_sql).
            for c in chars.by_ref() {
                if c == '\n' {
                    break;
                }
            }
            pending_space = true;
            continue;
        }
        if ch.is_whitespace() {
            pending_space = true;
            continue;
        }
        if pending_space && !out.is_empty() {
            out.push(' ');
        }
        pending_space = false;
        if ch == '\'' {
            // String literal: copied verbatim. A doubled quote is the
            // `''` escape and keeps the literal open.
            out.push('\'');
            while let Some(c) = chars.next() {
                out.push(c);
                if c == '\'' {
                    match chars.peek() {
                        Some('\'') => {
                            out.push('\'');
                            chars.next();
                        }
                        // Closing quote (or unterminated literal at end
                        // of input, which the parser will reject anyway).
                        _ => break,
                    }
                }
            }
        } else {
            out.push(ch.to_ascii_lowercase());
        }
    }
    out
}

/// The cache key: normalized SQL, then each bound parameter value
/// rendered after a `\0` separator (`Debug` keeps `Int(3)` and
/// `Float(3.0)` distinct, which matters because parameters are planned as
/// literals). A param-less key borrows the normalized SQL unchanged, so
/// the prepared-statement hit path never allocates.
pub(crate) fn cache_key<'a>(sql_norm: Cow<'a, str>, params: &[Value]) -> Cow<'a, str> {
    if params.is_empty() {
        return sql_norm;
    }
    let mut key = String::with_capacity(sql_norm.len() + 16 * params.len());
    key.push_str(&sql_norm);
    for p in params {
        key.push('\0');
        key.push_str(&format!("{p:?}"));
    }
    Cow::Owned(key)
}

// ---------------------------------------------------------------------------
// Parameter substitution and type inference
// ---------------------------------------------------------------------------

fn bind_missing(i: usize) -> RelError {
    RelError::Bind(format!("no value bound for parameter ?{}", i + 1))
}

fn check_count(expected: usize, got: usize) -> RelResult<()> {
    if expected == got {
        Ok(())
    } else {
        Err(RelError::Bind(format!(
            "statement takes {expected} parameter(s), {got} bound"
        )))
    }
}

fn subst_expr(expr: &Expr, params: &[Value], lenient: bool) -> RelResult<Expr> {
    Ok(match expr {
        Expr::Param(i) => match params.get(*i) {
            Some(v) => Expr::Literal(v.clone()),
            // Lenient mode (EXPLAIN of a prepared statement with unbound
            // placeholders): keep the `?` in place so the planner can
            // estimate with placeholder selectivities instead of erroring.
            None if lenient => Expr::Param(*i),
            None => return Err(bind_missing(*i)),
        },
        Expr::Literal(_) | Expr::Column { .. } => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(subst_expr(left, params, lenient)?),
            right: Box::new(subst_expr(right, params, lenient)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(subst_expr(e, params, lenient)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(subst_expr(e, params, lenient)?)),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(subst_expr(expr, params, lenient)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(subst_expr(expr, params, lenient)?),
            pattern: Box::new(subst_expr(pattern, params, lenient)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(subst_expr(expr, params, lenient)?),
            list: list
                .iter()
                .map(|e| subst_expr(e, params, lenient))
                .collect::<RelResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(subst_expr(expr, params, lenient)?),
            low: Box::new(subst_expr(low, params, lenient)?),
            high: Box::new(subst_expr(high, params, lenient)?),
            negated: *negated,
        },
        Expr::Contains { column, keyword } => Expr::Contains {
            column: Box::new(subst_expr(column, params, lenient)?),
            keyword: Box::new(subst_expr(keyword, params, lenient)?),
        },
        Expr::Matches { column, pattern } => Expr::Matches {
            column: Box::new(subst_expr(column, params, lenient)?),
            pattern: Box::new(subst_expr(pattern, params, lenient)?),
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(subst_expr(a, params, lenient)?)),
                None => None,
            },
            distinct: *distinct,
        },
    })
}

fn subst_select(s: &SelectStmt, params: &[Value], lenient: bool) -> RelResult<SelectStmt> {
    Ok(SelectStmt {
        distinct: s.distinct,
        items: s
            .items
            .iter()
            .map(|item| {
                Ok(match item {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: subst_expr(expr, params, lenient)?,
                        alias: alias.clone(),
                    },
                    other => other.clone(),
                })
            })
            .collect::<RelResult<_>>()?,
        from: s.from.clone(),
        joins: s
            .joins
            .iter()
            .map(|j| {
                Ok(JoinClause {
                    table: j.table.clone(),
                    on: subst_expr(&j.on, params, lenient)?,
                })
            })
            .collect::<RelResult<_>>()?,
        filter: s
            .filter
            .as_ref()
            .map(|f| subst_expr(f, params, lenient))
            .transpose()?,
        group_by: s
            .group_by
            .iter()
            .map(|e| subst_expr(e, params, lenient))
            .collect::<RelResult<_>>()?,
        order_by: s
            .order_by
            .iter()
            .map(|k| {
                Ok(OrderKey {
                    expr: subst_expr(&k.expr, params, lenient)?,
                    descending: k.descending,
                })
            })
            .collect::<RelResult<_>>()?,
        limit: s.limit,
        offset: s.offset,
    })
}

/// Replaces every `?` placeholder with its bound value as a literal —
/// done *before* planning, so bound parameters stay sargable.
pub(crate) fn substitute_params(stmt: &Statement, params: &[Value]) -> RelResult<Statement> {
    substitute_params_with(stmt, params, false)
}

/// Like [`substitute_params`], but an *unbound* placeholder stays an
/// [`Expr::Param`] instead of erroring. Used by [`Query::explain`]: a
/// prepared statement can be explained before any values are bound, and
/// the planner costs the remaining `?`s with placeholder selectivities.
pub(crate) fn substitute_params_lenient(
    stmt: &Statement,
    params: &[Value],
) -> RelResult<Statement> {
    substitute_params_with(stmt, params, true)
}

fn substitute_params_with(
    stmt: &Statement,
    params: &[Value],
    lenient: bool,
) -> RelResult<Statement> {
    Ok(match stmt {
        Statement::Select(s) => Statement::Select(subst_select(s, params, lenient)?),
        Statement::Explain { analyze, inner } => Statement::Explain {
            analyze: *analyze,
            inner: Box::new(substitute_params_with(inner, params, lenient)?),
        },
        Statement::Insert { table, rows } => Statement::Insert {
            table: table.clone(),
            rows: rows
                .iter()
                .map(|row| row.iter().map(|e| subst_expr(e, params, lenient)).collect())
                .collect::<RelResult<_>>()?,
        },
        Statement::Delete { table, filter } => Statement::Delete {
            table: table.clone(),
            filter: filter
                .as_ref()
                .map(|f| subst_expr(f, params, lenient))
                .transpose()?,
        },
        Statement::Update {
            table,
            assignments,
            filter,
        } => Statement::Update {
            table: table.clone(),
            assignments: assignments
                .iter()
                .map(|(c, e)| Ok((c.clone(), subst_expr(e, params, lenient)?)))
                .collect::<RelResult<_>>()?,
            filter: filter
                .as_ref()
                .map(|f| subst_expr(f, params, lenient))
                .transpose()?,
        },
        ddl => ddl.clone(),
    })
}

/// Best-effort parameter type inference: a parameter compared against a
/// column (`col = ?`, `? < col`, `col BETWEEN ? AND ?`, `col IN (?, ?)`),
/// inserted into a column position, or assigned to a column, takes that
/// column's declared type. Parameters in other positions stay untyped
/// and bind any value verbatim.
fn infer_param_types(stmt: &Statement, catalog: &Catalog, count: usize) -> Vec<Option<DataType>> {
    let mut types = vec![None; count];
    match stmt {
        Statement::Select(s) => {
            let mut tables: Vec<&TableRef> = s.from.iter().collect();
            tables.extend(s.joins.iter().map(|j| &j.table));
            let col_ty = move |qualifier: Option<&str>, name: &str| -> Option<DataType> {
                for tr in &tables {
                    if let Some(q) = qualifier {
                        if !tr.alias.eq_ignore_ascii_case(q) {
                            continue;
                        }
                    }
                    if let Ok(schema) = catalog.table(&tr.table) {
                        if let Some(i) = schema.column_index(name) {
                            return Some(schema.columns[i].ty);
                        }
                    }
                }
                None
            };
            for item in &s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    infer_expr(expr, &col_ty, &mut types);
                }
            }
            for j in &s.joins {
                infer_expr(&j.on, &col_ty, &mut types);
            }
            if let Some(f) = &s.filter {
                infer_expr(f, &col_ty, &mut types);
            }
        }
        Statement::Insert { table, rows } => {
            if let Ok(schema) = catalog.table(table) {
                for row in rows {
                    for (pos, expr) in row.iter().enumerate() {
                        if let Expr::Param(i) = expr {
                            if let Some(col) = schema.columns.get(pos) {
                                types[*i] = Some(col.ty);
                            }
                        }
                    }
                }
            }
        }
        Statement::Delete { table, filter } => {
            if let (Ok(schema), Some(f)) = (catalog.table(table), filter) {
                let col_ty = move |_: Option<&str>, name: &str| -> Option<DataType> {
                    schema.column_index(name).map(|i| schema.columns[i].ty)
                };
                infer_expr(f, &col_ty, &mut types);
            }
        }
        Statement::Update {
            table,
            assignments,
            filter,
        } => {
            if let Ok(schema) = catalog.table(table) {
                for (col, expr) in assignments {
                    if let Expr::Param(i) = expr {
                        if let Some(pos) = schema.column_index(col) {
                            types[*i] = Some(schema.columns[pos].ty);
                        }
                    }
                }
                if let Some(f) = filter {
                    let col_ty = move |_: Option<&str>, name: &str| -> Option<DataType> {
                        schema.column_index(name).map(|i| schema.columns[i].ty)
                    };
                    infer_expr(f, &col_ty, &mut types);
                }
            }
        }
        _ => {}
    }
    types
}

fn infer_expr<F>(expr: &Expr, col_ty: &F, types: &mut [Option<DataType>])
where
    F: Fn(Option<&str>, &str) -> Option<DataType>,
{
    let mut note = |i: usize, table: &Option<String>, name: &str| {
        if types[i].is_none() {
            types[i] = col_ty(table.as_deref(), name);
        }
    };
    match expr {
        Expr::Binary { op, left, right } => {
            if op.is_comparison() {
                match (&**left, &**right) {
                    (Expr::Column { table, name }, Expr::Param(i))
                    | (Expr::Param(i), Expr::Column { table, name }) => note(*i, table, name),
                    _ => {}
                }
            }
            infer_expr(left, col_ty, types);
            infer_expr(right, col_ty, types);
        }
        Expr::Between {
            expr: e, low, high, ..
        } => {
            if let Expr::Column { table, name } = &**e {
                for bound in [&**low, &**high] {
                    if let Expr::Param(i) = bound {
                        note(*i, table, name);
                    }
                }
            }
            infer_expr(e, col_ty, types);
            infer_expr(low, col_ty, types);
            infer_expr(high, col_ty, types);
        }
        Expr::InList { expr: e, list, .. } => {
            if let Expr::Column { table, name } = &**e {
                for item in list {
                    if let Expr::Param(i) = item {
                        note(*i, table, name);
                    }
                }
            }
            infer_expr(e, col_ty, types);
            for item in list {
                infer_expr(item, col_ty, types);
            }
        }
        Expr::Like {
            expr: e, pattern, ..
        } => {
            if let Expr::Param(i) = &**pattern {
                if types[*i].is_none() {
                    types[*i] = Some(DataType::Text);
                }
            }
            infer_expr(e, col_ty, types);
            infer_expr(pattern, col_ty, types);
        }
        Expr::Contains { column, keyword }
        | Expr::Matches {
            column,
            pattern: keyword,
        } => {
            if let Expr::Param(i) = &**keyword {
                if types[*i].is_none() {
                    types[*i] = Some(DataType::Text);
                }
            }
            infer_expr(column, col_ty, types);
            infer_expr(keyword, col_ty, types);
        }
        Expr::Not(e) | Expr::Neg(e) => infer_expr(e, col_ty, types),
        Expr::IsNull { expr: e, .. } => infer_expr(e, col_ty, types),
        Expr::Aggregate { arg: Some(a), .. } => infer_expr(a, col_ty, types),
        Expr::Aggregate { arg: None, .. }
        | Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Column { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

/// A statement parsed once and reusable with different bound parameters,
/// produced by [`Database::prepare`].
///
/// Parameter types are inferred at prepare time from the columns each
/// placeholder is compared against (or inserted into); at bind time every
/// value is coerced to its inferred type, and a value that does not
/// coerce fails with [`RelError::Bind`] before anything executes.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub(crate) stmt: Statement,
    pub(crate) sql_norm: String,
    pub(crate) param_count: usize,
    pub(crate) param_types: Vec<Option<DataType>>,
}

impl Prepared {
    /// Number of `?` placeholders in the statement.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Inferred parameter types, one per placeholder; `None` means the
    /// placeholder's type could not be inferred and binds any value.
    pub fn param_types(&self) -> &[Option<DataType>] {
        &self.param_types
    }
}

// ---------------------------------------------------------------------------
// The Query builder
// ---------------------------------------------------------------------------

enum QuerySource<'a> {
    Sql(&'a str),
    Prepared(&'a Prepared),
}

/// A fluent, single entry point for executing statements:
/// `db.query(sql).bind(v).with_stats().run()`.
///
/// `SELECT`s resolved through the builder use the plan cache and, when
/// the plan shape allows it, the morsel-parallel executor. Profiled runs
/// ([`Query::with_profile`]) and reference runs ([`Query::via_reference`])
/// always execute sequentially.
pub struct Query<'a> {
    db: &'a Database,
    /// The MVCC snapshot this query is pinned to, captured when the
    /// builder was created: the state as of the last durable commit.
    /// Concurrent writers never change what this query sees.
    snapshot: Arc<crate::db::Storage>,
    source: QuerySource<'a>,
    params: Vec<Value>,
    with_stats: bool,
    with_profile: bool,
    reference: bool,
    workers: Option<usize>,
}

/// What one [`Query::run`] produced.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The statement's result rows (or DML affected-count).
    pub rows: ResultSet,
    /// Executor counters, present when [`Query::with_stats`] or
    /// [`Query::with_profile`] was requested (SELECT only).
    pub stats: Option<ExecStats>,
    /// Per-operator profile, present when [`Query::with_profile`] was
    /// requested (SELECT only).
    pub profile: Option<OpProfile>,
}

impl<'a> Query<'a> {
    /// Binds the next `?` placeholder (placeholders bind left-to-right).
    pub fn bind(mut self, value: impl Into<Value>) -> Self {
        self.params.push(value.into());
        self
    }

    /// Binds a [`Value`] directly (useful for `Value::Null`).
    pub fn bind_value(mut self, value: Value) -> Self {
        self.params.push(value);
        self
    }

    /// Requests executor counters in the outcome (SELECT only).
    pub fn with_stats(mut self) -> Self {
        self.with_stats = true;
        self
    }

    /// Requests a per-operator runtime profile (SELECT only; forces the
    /// sequential streaming executor, as `EXPLAIN ANALYZE` does).
    pub fn with_profile(mut self) -> Self {
        self.with_profile = true;
        self
    }

    /// Runs the statement on the materializing reference interpreter
    /// instead of the streaming/parallel executors (SELECT only) — the
    /// oracle the property suite compares against.
    pub fn via_reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Overrides the worker count for this query only (capped below by 1;
    /// `1` forces sequential execution). Defaults to
    /// [`DatabaseOptions::workers`](crate::db::DatabaseOptions::workers).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    fn effective_workers(&self) -> usize {
        self.workers.unwrap_or(self.db.options.workers).max(1)
    }

    /// The normalized-SQL cache key prefix plus the (coerced) parameters.
    /// A prepared source borrows its precomputed normalization — the hit
    /// path must not copy the SQL text.
    fn norm_and_params(&self) -> RelResult<(Cow<'a, str>, Vec<Value>)> {
        match self.source {
            QuerySource::Sql(sql) => Ok((Cow::Owned(normalize_sql(sql)), self.params.clone())),
            QuerySource::Prepared(p) => {
                check_count(p.param_count, self.params.len())?;
                let coerced = self
                    .params
                    .iter()
                    .zip(&p.param_types)
                    .enumerate()
                    .map(|(i, (v, ty))| match ty {
                        Some(ty) => v.coerce(*ty).ok_or_else(|| {
                            RelError::Bind(format!(
                                "parameter ?{} ({v:?}) does not coerce to {ty}",
                                i + 1
                            ))
                        }),
                        None => Ok(v.clone()),
                    })
                    .collect::<RelResult<Vec<_>>>()?;
                Ok((Cow::Borrowed(p.sql_norm.as_str()), coerced))
            }
        }
    }

    /// Parses (if needed) and substitutes parameters into the statement.
    fn statement(&self, params: &[Value]) -> RelResult<Statement> {
        match self.source {
            QuerySource::Sql(sql) => {
                let (stmt, count) = parse_statement_with_params(sql)?;
                check_count(count, params.len())?;
                substitute_params(&stmt, params)
            }
            QuerySource::Prepared(p) => substitute_params(&p.stmt, params),
        }
    }

    /// Resolves the query's plan through the plan cache without executing
    /// it (SELECT only). A warm cache makes this skip parse and plan
    /// entirely — the path the bench's ≥100× cache-hit gate measures.
    /// Statements referencing system virtual tables bypass the cache in
    /// both directions: their table contents change per query, so a
    /// cached plan would pin dead snapshot state.
    pub fn planned(&self) -> RelResult<Arc<PlannedQuery>> {
        let m = metrics::engine();
        let (norm, params) = self.norm_and_params()?;
        let sys = may_reference_system(&norm);
        let key = cache_key(norm, &params);
        let generation = self.snapshot.stats.generation;
        if !sys {
            if let Some(planned) = self.db.plan_cache.lock().get(key.as_ref(), generation) {
                m.cache_hit.inc();
                return Ok(planned);
            }
        }
        let stmt = self.statement(&params)?;
        let Statement::Select(select) = stmt else {
            return Err(RelError::Parse("only SELECT can be planned".into()));
        };
        m.cache_miss.inc();
        let storage = if sys {
            self.db.storage_for_select(&self.snapshot, &select)?
        } else {
            Arc::clone(&self.snapshot)
        };
        let planned = Arc::new(self.db.plan_select_stmt(&storage, &select)?);
        if !sys {
            self.db
                .plan_cache
                .lock()
                .insert(key.into_owned(), Arc::clone(&planned), generation);
        }
        Ok(planned)
    }

    /// Plans the statement (without executing it) and returns the typed
    /// [`PlanExplain`](crate::plan::PlanExplain) tree — estimated rows per
    /// operator, plus the worker count the parallel cutover would use.
    /// This is the typed successor to the deprecated string-returning
    /// `Database::explain`; call [`render`](crate::plan::PlanExplain::render)
    /// for the classic indented text form.
    ///
    /// Unbound `?` placeholders are allowed here: they stay in the plan
    /// and are costed with placeholder (default) selectivities, so a
    /// prepared statement can be explained before any values are bound.
    pub fn explain(&self) -> RelResult<crate::plan::PlanExplain> {
        let select = self.explain_select()?;
        let storage = self.db.storage_for_select(&self.snapshot, &select)?;
        let planned = self.db.plan_select_stmt(&storage, &select)?;
        Ok(self.db.plan_explain_tree(&planned))
    }

    /// Executes the statement on the profiling executor and returns the
    /// typed [`PlanExplain`](crate::plan::PlanExplain) tree with *both*
    /// estimated and actual rows (plus per-operator self time) — the
    /// typed form of `EXPLAIN ANALYZE`. All placeholders must be bound,
    /// since the statement really runs.
    pub fn explain_analyzed(&self) -> RelResult<crate::plan::PlanExplain> {
        let (_, params) = self.norm_and_params()?;
        let select = match self.statement(&params)? {
            Statement::Select(select) => select,
            Statement::Explain { inner, .. } => match *inner {
                Statement::Select(select) => select,
                _ => return Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
            },
            _ => return Err(RelError::Parse("only SELECT can be analyzed".into())),
        };
        let storage = self.db.storage_for_select(&self.snapshot, &select)?;
        let planned = self.db.plan_select_stmt(&storage, &select)?;
        let analyzed = self.db.analyze_select(&storage, &select)?;
        let mut tree = self.db.plan_explain_tree(&planned);
        tree.attach_profile(&analyzed.profile);
        Ok(tree)
    }

    /// Extracts the `SELECT` to explain, substituting bound parameters
    /// leniently (unbound `?`s survive as placeholders). Accepts both a
    /// bare `SELECT` and an `EXPLAIN [ANALYZE] SELECT` wrapper.
    fn explain_select(&self) -> RelResult<SelectStmt> {
        let stmt = match self.source {
            QuerySource::Sql(sql) => {
                let (stmt, _) = parse_statement_with_params(sql)?;
                substitute_params_lenient(&stmt, &self.params)?
            }
            QuerySource::Prepared(p) => substitute_params_lenient(&p.stmt, &self.params)?,
        };
        match stmt {
            Statement::Select(select) => Ok(select),
            Statement::Explain { inner, .. } => match *inner {
                Statement::Select(select) => Ok(select),
                _ => Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
            },
            _ => Err(RelError::Parse("only SELECT can be explained".into())),
        }
    }

    /// Executes the statement. Every run carries a trace context — the
    /// thread's current one (e.g. rooted by the server from a
    /// client-supplied trace id) or a fresh root — and deposits one
    /// record in the flight recorder on completion.
    pub fn run(self) -> RelResult<QueryOutcome> {
        if self.with_profile {
            return self.run_profiled();
        }
        if self.reference {
            return self.run_reference();
        }
        let (_root, trace_id) = ensure_trace();
        let _qspan = trace::span("relstore.query");
        let started = Instant::now();
        let m = metrics::engine();
        let (norm, params) = self.norm_and_params()?;
        let sys = may_reference_system(&norm);
        let sql_norm = self
            .db
            .flight_recorder()
            .enabled()
            .then(|| norm.clone().into_owned());
        let key = cache_key(norm, &params);
        let generation = self.snapshot.stats.generation;
        if !sys {
            let cached = self.db.plan_cache.lock().get(key.as_ref(), generation);
            if let Some(planned) = cached {
                m.cache_hit.inc();
                trace_mark("relstore.query.cache_hit");
                let workers = self.effective_workers();
                let (rows, stats) = self
                    .db
                    .run_planned_query(&self.snapshot, &planned, workers)?;
                record_statement(RecordArgs {
                    db: self.db,
                    trace_id,
                    sql_norm,
                    rows: rows.len() as u64,
                    started,
                    cache_hit: true,
                    workers,
                    stats: Some(&stats),
                    profile_source: Some((&planned, self.snapshot.as_ref())),
                    profile: None,
                });
                return Ok(QueryOutcome {
                    rows,
                    stats: self.with_stats.then_some(stats),
                    profile: None,
                });
            }
        }
        let stmt = {
            let _t = trace::span("relstore.query.parse");
            self.statement(&params)?
        };
        match stmt {
            Statement::Select(select) => {
                m.cache_miss.inc();
                trace_mark("relstore.query.cache_miss");
                let storage = if sys {
                    self.db.storage_for_select(&self.snapshot, &select)?
                } else {
                    Arc::clone(&self.snapshot)
                };
                let planned = Arc::new(self.db.plan_select_stmt(&storage, &select)?);
                if !sys {
                    self.db.plan_cache.lock().insert(
                        key.into_owned(),
                        Arc::clone(&planned),
                        generation,
                    );
                }
                let workers = self.effective_workers();
                let (rows, stats) = self.db.run_planned_query(&storage, &planned, workers)?;
                record_statement(RecordArgs {
                    db: self.db,
                    trace_id,
                    sql_norm,
                    rows: rows.len() as u64,
                    started,
                    cache_hit: false,
                    workers,
                    stats: Some(&stats),
                    profile_source: Some((&planned, storage.as_ref())),
                    profile: None,
                });
                Ok(QueryOutcome {
                    rows,
                    stats: self.with_stats.then_some(stats),
                    profile: None,
                })
            }
            other => {
                if self.with_stats {
                    return Err(RelError::Parse("only SELECT reports exec stats".into()));
                }
                let rows = self.db.execute_statement(other)?;
                record_statement(RecordArgs {
                    db: self.db,
                    trace_id,
                    sql_norm,
                    rows: rows.affected() as u64,
                    started,
                    cache_hit: false,
                    workers: 1,
                    stats: None,
                    profile_source: None,
                    profile: None,
                });
                Ok(QueryOutcome {
                    rows,
                    stats: None,
                    profile: None,
                })
            }
        }
    }

    fn run_profiled(self) -> RelResult<QueryOutcome> {
        let (_root, trace_id) = ensure_trace();
        let _qspan = trace::span("relstore.query");
        let started = Instant::now();
        let (norm, params) = self.norm_and_params()?;
        let sql_norm = self
            .db
            .flight_recorder()
            .enabled()
            .then(|| norm.into_owned());
        let select = match self.statement(&params)? {
            Statement::Select(select) => select,
            Statement::Explain { inner, .. } => match *inner {
                Statement::Select(select) => select,
                _ => return Err(RelError::Parse("EXPLAIN supports SELECT only".into())),
            },
            _ => return Err(RelError::Parse("only SELECT can be analyzed".into())),
        };
        let storage = self.db.storage_for_select(&self.snapshot, &select)?;
        let analyzed = self.db.analyze_select(&storage, &select)?;
        record_statement(RecordArgs {
            db: self.db,
            trace_id,
            sql_norm,
            rows: analyzed.result.len() as u64,
            started,
            cache_hit: false,
            workers: 1,
            stats: Some(&analyzed.stats),
            profile_source: None,
            profile: Some(analyzed.profile.clone()),
        });
        Ok(QueryOutcome {
            rows: analyzed.result,
            stats: Some(analyzed.stats),
            profile: Some(analyzed.profile),
        })
    }

    /// The reference interpreter stays a pure oracle: no tracing, no
    /// flight-recorder writes — the property suite compares its rows
    /// against the streaming executor's, nothing else.
    fn run_reference(self) -> RelResult<QueryOutcome> {
        let (_, params) = self.norm_and_params()?;
        let Statement::Select(select) = self.statement(&params)? else {
            return Err(RelError::Parse(
                "only SELECT runs on the reference executor".into(),
            ));
        };
        let storage = self.db.storage_for_select(&self.snapshot, &select)?;
        let rows = self.db.run_select_reference(&storage, &select)?;
        Ok(QueryOutcome {
            rows,
            stats: None,
            profile: None,
        })
    }
}

/// Conservative pre-parse filter for system-table references: normalized
/// SQL mentioning `sys_` anywhere bypasses the plan cache. Identifiers
/// are lowercased by normalization so every real reference matches; a
/// false positive (the prefix inside a string literal) merely skips the
/// cache for that statement.
fn may_reference_system(norm: &str) -> bool {
    norm.contains(SYS_PREFIX)
}

/// Adopts the thread's current trace context or roots a fresh trace.
/// Returns the guard holding the root scope open (`None` when adopted)
/// and the trace id this statement runs under.
fn ensure_trace() -> (Option<trace::ScopeGuard>, u64) {
    match trace::current() {
        Some(ctx) => (None, ctx.trace_id),
        None => {
            let ctx = trace::TraceCtx::root();
            let trace_id = ctx.trace_id;
            (Some(trace::scope(ctx)), trace_id)
        }
    }
}

/// Zero-length marker span under the current context (plan-cache
/// hit/miss outcomes).
fn trace_mark(name: &'static str) {
    if let Some(ctx) = trace::current() {
        trace::emit(name, ctx, 0);
    }
}

/// Emits one trace span per operator of a captured profile, preserving
/// the operator tree shape under `parent`.
fn emit_profile_spans(node: &OpProfile, trace_id: u64, parent: u64) {
    let id = trace::emit_with_parent(node.op.clone(), trace_id, parent, node.total_ns);
    for child in &node.children {
        emit_profile_spans(child, trace_id, id);
    }
}

struct RecordArgs<'a> {
    db: &'a Database,
    trace_id: u64,
    /// `None` when the recorder is disabled (spares the allocation).
    sql_norm: Option<String>,
    rows: u64,
    started: Instant,
    cache_hit: bool,
    workers: usize,
    stats: Option<&'a ExecStats>,
    /// Plan + pinned snapshot, for re-profiling a statement that turns
    /// out slow (MVCC guarantees the re-run sees identical rows).
    profile_source: Option<(&'a PlannedQuery, &'a crate::db::Storage)>,
    /// A profile the run already produced (`with_profile` path).
    profile: Option<OpProfile>,
}

/// Deposits one completed statement into the flight recorder. Statements
/// at or above the slow threshold keep a per-operator profile — either
/// the one the run produced, or one captured now by re-executing the
/// plan against the statement's own snapshot — and mirror it into the
/// trace tree as per-operator spans.
fn record_statement(args: RecordArgs<'_>) {
    let rec = args.db.flight_recorder();
    if !rec.enabled() {
        return;
    }
    let latency_ns = u64::try_from(args.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let slow = latency_ns >= rec.slow_ns();
    let mut profile = slow.then_some(args.profile).flatten();
    if slow && profile.is_none() {
        if let Some((planned, storage)) = args.profile_source {
            profile = execute_plan_profiled(&planned.plan, storage)
                .ok()
                .map(|(_, _, _, p)| p);
        }
    }
    if let Some(p) = profile.as_ref() {
        if let Some(ctx) = trace::current() {
            emit_profile_spans(p, ctx.trace_id, ctx.span_id);
        }
    }
    rec.record(QueryRecord {
        query_id: rec.next_query_id(),
        trace_id: args.trace_id,
        sql: args.sql_norm.unwrap_or_default(),
        rows: args.rows,
        latency_ns,
        cache_hit: args.cache_hit,
        workers: u32::try_from(args.workers).unwrap_or(u32::MAX),
        segments_pruned: args.stats.map_or(0, |s| s.segments_pruned),
        slow,
        profile,
    });
}

impl Database {
    /// Starts a [`Query`] builder over one SQL statement — the unified
    /// entry point for every statement kind (SELECT, DML, DDL, EXPLAIN).
    pub fn query<'a>(&'a self, sql: &'a str) -> Query<'a> {
        Query {
            db: self,
            snapshot: self.snapshot(),
            source: QuerySource::Sql(sql),
            params: Vec::new(),
            with_stats: false,
            with_profile: false,
            reference: false,
            workers: None,
        }
    }

    /// Parses `sql` once into a reusable [`Prepared`] handle, inferring a
    /// type for each `?` placeholder from the catalog.
    pub fn prepare(&self, sql: &str) -> RelResult<Prepared> {
        let (stmt, param_count) = parse_statement_with_params(sql)?;
        let param_types = {
            let storage = self.snapshot();
            infer_param_types(&stmt, &storage.catalog, param_count)
        };
        Ok(Prepared {
            sql_norm: normalize_sql(sql),
            stmt,
            param_count,
            param_types,
        })
    }

    /// Starts a [`Query`] builder over a prepared statement.
    pub fn query_prepared<'a>(&'a self, prepared: &'a Prepared) -> Query<'a> {
        Query {
            db: self,
            snapshot: self.snapshot(),
            source: QuerySource::Prepared(prepared),
            params: Vec::new(),
            with_stats: false,
            with_profile: false,
            reference: false,
            workers: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Typed row access
// ---------------------------------------------------------------------------

/// A typed-access error from [`ResultRow::get`] / [`ResultRow::try_get`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColumnError {
    /// The named column does not exist in the result set.
    NoSuchColumn(String),
    /// The cell is SQL NULL; use [`ResultRow::try_get`] for an `Option`.
    Null(String),
    /// The cell's runtime type does not convert to the requested type.
    TypeMismatch {
        /// The accessed column.
        column: String,
        /// The requested Rust type.
        expected: &'static str,
        /// The cell's actual runtime type.
        actual: &'static str,
    },
}

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnError::NoSuchColumn(c) => write!(f, "no such column {c:?}"),
            ColumnError::Null(c) => write!(f, "column {c:?} is NULL"),
            ColumnError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(f, "column {column:?} is {actual}, requested {expected}"),
        }
    }
}

impl std::error::Error for ColumnError {}

fn value_type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Text(_) => "text",
    }
}

/// Conversion from a non-NULL [`Value`] cell, used by [`ResultRow::get`].
pub trait FromValue: Sized {
    /// Human-readable name of the requested type, used in error messages.
    const EXPECTED: &'static str;

    /// Converts from a non-NULL value; `None` on type mismatch.
    fn from_value(v: &Value) -> Option<Self>;
}

impl FromValue for i64 {
    const EXPECTED: &'static str = "int";

    fn from_value(v: &Value) -> Option<i64> {
        v.as_int()
    }
}

impl FromValue for f64 {
    const EXPECTED: &'static str = "float";

    fn from_value(v: &Value) -> Option<f64> {
        v.as_f64()
    }
}

impl FromValue for String {
    const EXPECTED: &'static str = "text";

    fn from_value(v: &Value) -> Option<String> {
        v.as_text().map(str::to_string)
    }
}

impl FromValue for Value {
    const EXPECTED: &'static str = "value";

    fn from_value(v: &Value) -> Option<Value> {
        Some(v.clone())
    }
}

/// One row of a [`ResultSet`] with name-based, typed column access.
#[derive(Debug, Clone)]
pub struct ResultRow {
    columns: Arc<[String]>,
    values: Row,
}

impl ResultRow {
    /// The result set's column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The row's cells in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row into its cells.
    pub fn into_values(self) -> Row {
        self.values
    }

    fn position(&self, column: &str) -> Result<usize, ColumnError> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))
            .ok_or_else(|| ColumnError::NoSuchColumn(column.to_string()))
    }

    /// Typed access to a non-NULL cell: `row.get::<i64>("doc_id")?`.
    /// NULL is an error here; use [`ResultRow::try_get`] to map NULL to
    /// `None` instead.
    pub fn get<T: FromValue>(&self, column: &str) -> Result<T, ColumnError> {
        let v = &self.values[self.position(column)?];
        if v.is_null() {
            return Err(ColumnError::Null(column.to_string()));
        }
        T::from_value(v).ok_or_else(|| ColumnError::TypeMismatch {
            column: column.to_string(),
            expected: T::EXPECTED,
            actual: value_type_name(v),
        })
    }

    /// Like [`ResultRow::get`], but NULL becomes `Ok(None)`.
    pub fn try_get<T: FromValue>(&self, column: &str) -> Result<Option<T>, ColumnError> {
        let v = &self.values[self.position(column)?];
        if v.is_null() {
            return Ok(None);
        }
        T::from_value(v)
            .map(Some)
            .ok_or_else(|| ColumnError::TypeMismatch {
                column: column.to_string(),
                expected: T::EXPECTED,
                actual: value_type_name(v),
            })
    }
}

/// Iterator over a [`ResultSet`]'s rows as [`ResultRow`]s.
pub struct ResultRows {
    columns: Arc<[String]>,
    rows: std::vec::IntoIter<Row>,
}

impl Iterator for ResultRows {
    type Item = ResultRow;

    fn next(&mut self) -> Option<ResultRow> {
        self.rows.next().map(|values| ResultRow {
            columns: Arc::clone(&self.columns),
            values,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.rows.size_hint()
    }
}

impl ExactSizeIterator for ResultRows {}

impl IntoIterator for ResultSet {
    type Item = ResultRow;
    type IntoIter = ResultRows;

    fn into_iter(self) -> ResultRows {
        let columns: Arc<[String]> = self.columns().to_vec().into();
        ResultRows {
            columns,
            rows: self.into_rows().into_iter(),
        }
    }
}

impl IntoIterator for &ResultSet {
    type Item = ResultRow;
    type IntoIter = ResultRows;

    fn into_iter(self) -> ResultRows {
        let columns: Arc<[String]> = self.columns().to_vec().into();
        ResultRows {
            columns,
            rows: self.rows().to_vec().into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_outside_strings() {
        assert_eq!(
            normalize_sql("SELECT  A\n FROM   T WHERE x = 'Ca  Se'"),
            "select a from t where x = 'Ca  Se'"
        );
        assert_eq!(normalize_sql("  SELECT 1  "), "select 1");
        // The '' escape keeps the literal open across the doubled quote.
        assert_eq!(normalize_sql("SELECT 'IT''S  A'"), "select 'IT''S  A'");
    }

    #[test]
    fn normalize_keeps_escaped_literals_distinct() {
        // Different literals must produce different keys: everything
        // after the `''` escape is still *inside* the string and must
        // keep its case and spacing.
        let pairs = [
            ("SELECT 'O''Hara'", "select 'O''hara'"),
            ("SELECT 'O''Hara  X' FROM T", "SELECT 'O''Hara X' FROM T"),
            ("SELECT 'A''B''C'", "SELECT 'a''b''c'"),
            // A literal that is just one escaped quote, then diverging
            // content in a *second* literal.
            ("SELECT '''', 'UP'", "SELECT '''', 'up'"),
        ];
        for (a, b) in pairs {
            assert_ne!(normalize_sql(a), normalize_sql(b), "{a} vs {b}");
        }
        // While the same statement differing only outside literals —
        // case, whitespace — still collapses onto one key.
        assert_eq!(
            normalize_sql("SELECT  'O''Hara'  FROM T"),
            normalize_sql("select 'O''Hara' from t")
        );
        assert_eq!(
            normalize_sql("SELECT 'IT''S  A' FROM t WHERE A=1"),
            normalize_sql("select 'IT''S  A' FROM T where a=1")
        );
    }

    #[test]
    fn normalize_strips_comments_like_the_lexer() {
        // Comments are invisible to the lexer, so they must be invisible
        // to the cache key.
        assert_eq!(
            normalize_sql("SELECT a -- it's fine\nFROM t"),
            "select a from t"
        );
        // The collision this prevents: with the comment kept, collapsing
        // the newline would merge a live FROM with a commented-out one.
        assert_ne!(
            normalize_sql("SELECT a -- x\nFROM t"),
            normalize_sql("SELECT a -- x FROM t")
        );
        assert_eq!(normalize_sql("SELECT a -- x FROM t"), "select a");
        // `--` inside a literal is data, not a comment.
        assert_eq!(normalize_sql("SELECT '--NoT'"), "select '--NoT'");
    }

    #[test]
    fn cache_key_distinguishes_param_types() {
        let a = cache_key(Cow::Borrowed("select 1"), &[Value::Int(3)]);
        let b = cache_key(Cow::Borrowed("select 1"), &[Value::Float(3.0)]);
        assert_ne!(a, b);
        // No params: the key is the normalized SQL itself, still borrowed.
        let key = cache_key(Cow::Borrowed("select 1"), &[]);
        assert_eq!(key, "select 1");
        assert!(matches!(key, Cow::Borrowed(_)));
    }

    fn scan_plan() -> Arc<PlannedQuery> {
        use crate::plan::{Plan, PlanEstimate};
        let plan = Plan::Scan {
            table: "t".into(),
            alias: "t".into(),
        };
        let estimate = PlanEstimate::unknown(&plan);
        Arc::new(PlannedQuery {
            plan,
            visible: 1,
            estimate,
        })
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert("a".into(), scan_plan(), 0);
        cache.insert("b".into(), scan_plan(), 0);
        assert!(cache.get("a", 0).is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), scan_plan(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", 0).is_none());
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
    }

    #[test]
    fn plan_cache_rejects_stale_stats_generation() {
        let mut cache = PlanCache::new(4);
        cache.insert("q".into(), scan_plan(), 1);
        // Same generation: hit.
        assert!(cache.get("q", 1).is_some());
        // Newer generation (post-ANALYZE snapshot): miss, and the stale
        // entry is dropped rather than lingering at the old generation.
        assert!(cache.get("q", 2).is_none());
        assert_eq!(cache.len(), 0);
        // A plan inserted by a reader pinned to the old snapshot never
        // serves post-ANALYZE lookups.
        cache.insert("q".into(), scan_plan(), 1);
        assert!(cache.get("q", 2).is_none());
    }
}
