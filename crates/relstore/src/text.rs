//! Inverted keyword index.
//!
//! XomatiQ extends XQuery with `contains(path, keyword, any)` — "simple
//! keyword-based queries, similar to those found in web-based search
//! engines" (§3) — and the warehouse schema is designed to "support
//! efficient keyword-based searches in the relational database system"
//! (§2.2). This module supplies that support: a tokenizer and an inverted
//! index mapping each token to the set of rows whose indexed column
//! contains it.

use std::collections::{BTreeMap, BTreeSet};

use crate::table::RowId;
use crate::value::Value;

/// Splits text into lowercase alphanumeric tokens.
///
/// Biological identifiers such as `cdc6`, EC numbers like `1.14.17.3` and
/// accession numbers like `P10731` must each survive tokenization as
/// searchable units; `.` is therefore kept inside tokens when surrounded by
/// digits (EC numbers), while all other punctuation separates.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut cur = String::new();
    for (i, &c) in chars.iter().enumerate() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if c == '.'
            && i > 0
            && chars[i - 1].is_ascii_digit()
            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
        {
            cur.push('.');
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// An inverted index over a single text column of a table.
#[derive(Debug, Clone, Default)]
pub struct KeywordIndex {
    /// Token → row ids containing it.
    postings: BTreeMap<String, BTreeSet<RowId>>,
    /// Indexed column position in the table schema.
    column: usize,
}

impl KeywordIndex {
    /// Creates an empty index over column position `column`.
    pub fn new(column: usize) -> Self {
        KeywordIndex {
            postings: BTreeMap::new(),
            column,
        }
    }

    /// The indexed column position.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Indexes `row`'s text under `id`. Non-text values index nothing.
    pub fn insert(&mut self, id: RowId, row: &[Value]) {
        if let Some(text) = row.get(self.column).and_then(Value::as_text) {
            for token in tokenize(text) {
                self.postings.entry(token).or_default().insert(id);
            }
        }
    }

    /// Removes `row`'s entries for `id`.
    pub fn remove(&mut self, id: RowId, row: &[Value]) {
        if let Some(text) = row.get(self.column).and_then(Value::as_text) {
            for token in tokenize(text) {
                if let Some(set) = self.postings.get_mut(&token) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.postings.remove(&token);
                    }
                }
            }
        }
    }

    /// Rows containing `keyword` as a whole token (case-insensitive).
    ///
    /// A multi-token query keyword (e.g. `"cell division"`) returns rows
    /// containing *all* of its tokens, mirroring the paper's extension
    /// where keywords are "implicitly meant to be located close to one
    /// another in the same XML document".
    pub fn lookup(&self, keyword: &str) -> Vec<RowId> {
        let tokens = tokenize(keyword);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut sets = Vec::with_capacity(tokens.len());
        for token in &tokens {
            match self.postings.get(token) {
                Some(set) => sets.push(set),
                None => return Vec::new(),
            }
        }
        // Intersect starting from the smallest posting list.
        sets.sort_by_key(|s| s.len());
        let (first, rest) = sets.split_first().expect("non-empty");
        first
            .iter()
            .copied()
            .filter(|id| rest.iter().all(|s| s.contains(id)))
            .collect()
    }

    /// Number of distinct tokens indexed.
    pub fn distinct_tokens(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("Cell Division Cycle"),
            vec!["cell", "division", "cycle"]
        );
        assert_eq!(tokenize("  lots -- of;punct "), vec!["lots", "of", "punct"]);
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ;;").is_empty());
    }

    #[test]
    fn tokenize_keeps_ec_numbers_whole() {
        assert_eq!(
            tokenize("EC 1.14.17.3 deficiency"),
            vec!["ec", "1.14.17.3", "deficiency"]
        );
        // Trailing period is punctuation, not part of the token.
        assert_eq!(tokenize("monooxygenase."), vec!["monooxygenase"]);
    }

    #[test]
    fn tokenize_identifiers() {
        assert_eq!(
            tokenize("protein cdc6 (P10731)"),
            vec!["protein", "cdc6", "p10731"]
        );
    }

    #[test]
    fn tokenize_unicode_lowercases() {
        assert_eq!(tokenize("Glycine-Ärm"), vec!["glycine", "ärm"]);
    }

    fn sample() -> KeywordIndex {
        let mut idx = KeywordIndex::new(1);
        let docs = [
            (0, "cell division cycle protein cdc6"),
            (1, "peptidylglycine monooxygenase"),
            (2, "the enzyme catalyzes ketone formation"),
            (3, "division of labour in the cell"),
        ];
        for (id, text) in docs {
            idx.insert(
                RowId(id),
                &[Value::Int(id as i64), Value::Text(text.into())],
            );
        }
        idx
    }

    #[test]
    fn lookup_single_token() {
        let idx = sample();
        assert_eq!(idx.lookup("cdc6"), vec![RowId(0)]);
        assert_eq!(idx.lookup("CDC6"), vec![RowId(0)]);
        let mut cells = idx.lookup("cell");
        cells.sort();
        assert_eq!(cells, vec![RowId(0), RowId(3)]);
        assert!(idx.lookup("absent").is_empty());
        assert!(idx.lookup("").is_empty());
    }

    #[test]
    fn lookup_multi_token_intersects() {
        let idx = sample();
        let mut both = idx.lookup("cell division");
        both.sort();
        assert_eq!(both, vec![RowId(0), RowId(3)]);
        assert_eq!(idx.lookup("cell ketone"), Vec::<RowId>::new());
    }

    #[test]
    fn substring_does_not_match() {
        let idx = sample();
        // Whole-token semantics: "divis" is not a token.
        assert!(idx.lookup("divis").is_empty());
    }

    #[test]
    fn remove_unindexes() {
        let mut idx = sample();
        idx.remove(
            RowId(0),
            &[
                Value::Int(0),
                Value::Text("cell division cycle protein cdc6".into()),
            ],
        );
        assert!(idx.lookup("cdc6").is_empty());
        assert_eq!(idx.lookup("division"), vec![RowId(3)]);
    }

    #[test]
    fn non_text_values_index_nothing() {
        let mut idx = KeywordIndex::new(0);
        idx.insert(RowId(1), &[Value::Int(42)]);
        idx.insert(RowId(2), &[Value::Null]);
        assert_eq!(idx.distinct_tokens(), 0);
    }
}
