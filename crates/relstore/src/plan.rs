//! Logical query plans.
//!
//! The planner compiles a parsed `SELECT` into a tree of these operators;
//! the executor interprets the tree. The shapes mirror what the paper's
//! §3.2 describes observing in Oracle's plans: index-driven access paths
//! chosen "by meticulous analysis of the query plans", hash joins for the
//! cross-database equi-joins of Figure 11, and filtered scans elsewhere.

use std::ops::Bound;

use crate::sql::ast::{Expr, OrderKey};
use crate::value::Value;

/// How an index scan locates rows.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexAccess {
    /// Equality on the first `values.len()` key columns (full key or prefix).
    Exact(Vec<Value>),
    /// Equality on `prefix`, then a range over the next key column.
    Range {
        /// Exact values for the leading key columns.
        prefix: Vec<Value>,
        /// Lower bound on the next key column.
        lower: Bound<Value>,
        /// Upper bound on the next key column.
        upper: Bound<Value>,
    },
}

/// One output column of a projection: expression plus output name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectItem {
    /// The expression to evaluate.
    pub expr: Expr,
    /// The name the column carries in the result set.
    pub name: String,
}

/// A logical plan operator.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Full scan of a table bound under `alias`.
    Scan {
        /// Table name.
        table: String,
        /// Binding alias.
        alias: String,
    },
    /// B-tree index scan.
    IndexScan {
        /// Table name.
        table: String,
        /// Binding alias.
        alias: String,
        /// Index name.
        index: String,
        /// How the index is probed.
        access: IndexAccess,
    },
    /// Inverted keyword index scan (serves `CONTAINS`).
    KeywordScan {
        /// Table name.
        table: String,
        /// Binding alias.
        alias: String,
        /// Index name.
        index: String,
        /// The keyword(s) looked up.
        keyword: String,
    },
    /// Predicate filter.
    Filter {
        /// Input operator.
        input: Box<Plan>,
        /// Rows are kept when this evaluates to true.
        predicate: Expr,
    },
    /// Nested-loop join with an optional residual condition.
    NestedLoopJoin {
        /// Left (outer) input.
        left: Box<Plan>,
        /// Right (inner) input.
        right: Box<Plan>,
        /// Optional join condition (cross join when absent).
        condition: Option<Expr>,
    },
    /// Hash join on equi-key expressions, with an optional residual filter.
    /// With `semi`, the join only tests existence: each left row is emitted
    /// at most once and the right side's columns are dropped — sound under
    /// `SELECT DISTINCT` when nothing downstream references the right side
    /// (the planner checks both).
    HashJoin {
        /// Left input (probe side by default).
        left: Box<Plan>,
        /// Right input (build side by default).
        right: Box<Plan>,
        /// Key expressions over the left schema.
        left_keys: Vec<Expr>,
        /// Key expressions over the right schema.
        right_keys: Vec<Expr>,
        /// Extra condition checked on joined rows.
        residual: Option<Expr>,
        /// Existence-only semi-join (see type docs).
        semi: bool,
    },
    /// Projection. `visible` marks how many leading items the user asked
    /// for; the remainder are hidden sort keys appended by the planner.
    Project {
        /// Input operator.
        input: Box<Plan>,
        /// Output expressions, visible ones first.
        items: Vec<ProjectItem>,
        /// How many leading items the user asked for.
        visible: usize,
    },
    /// Grouped aggregation producing one row per group; items may contain
    /// aggregate calls.
    Aggregate {
        /// Input operator.
        input: Box<Plan>,
        /// Grouping key expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// Output expressions, possibly containing aggregate calls.
        items: Vec<ProjectItem>,
        /// How many leading items the user asked for.
        visible: usize,
    },
    /// Sort by projected column positions.
    Sort {
        /// Input operator.
        input: Box<Plan>,
        /// Sort keys over the projected row.
        keys: Vec<SortKey>,
    },
    /// Fused `Sort` + `Limit`: retains only the top `offset + limit` rows
    /// in a bounded heap instead of sorting the full input. Chosen by the
    /// planner whenever an `ORDER BY … LIMIT` has no intervening
    /// `DISTINCT`; semantics (including stable tie order) are identical
    /// to `Limit(Sort(input))`.
    TopK {
        /// Input operator.
        input: Box<Plan>,
        /// Sort keys over the projected row.
        keys: Vec<SortKey>,
        /// Maximum rows to return.
        limit: u64,
        /// Rows to skip after sorting.
        offset: u64,
    },
    /// Duplicate elimination over the first `visible` columns.
    Distinct {
        /// Input operator.
        input: Box<Plan>,
        /// Number of leading columns considered for uniqueness.
        visible: usize,
    },
    /// Row-count limiting.
    Limit {
        /// Input operator.
        input: Box<Plan>,
        /// Maximum rows to return (`None` = unlimited).
        limit: Option<u64>,
        /// Rows to skip first.
        offset: u64,
    },
}

/// A sort key: projected column position plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column position in the projected row.
    pub column: usize,
    /// Descending order.
    pub descending: bool,
}

impl Plan {
    /// A one-line-per-operator rendering for plan inspection (the moral
    /// equivalent of `EXPLAIN`, which §3.2 leans on for index design).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.describe());
        out.push('\n');
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// The one-line label of this operator (the line `explain` prints for
    /// it, without children) — shared with the `EXPLAIN ANALYZE` profile
    /// rendering so both views stay in sync.
    pub fn describe(&self) -> String {
        match self {
            Plan::Scan { table, alias } => format!("Scan {table} AS {alias}"),
            Plan::IndexScan {
                table,
                alias,
                index,
                access,
            } => {
                let how = match access {
                    IndexAccess::Exact(values) => format!("exact({} cols)", values.len()),
                    IndexAccess::Range { prefix, .. } => {
                        format!("range(prefix {} cols)", prefix.len())
                    }
                };
                format!("IndexScan {table} AS {alias} USING {index} {how}")
            }
            Plan::KeywordScan {
                table,
                alias,
                index,
                keyword,
            } => format!("KeywordScan {table} AS {alias} USING {index} FOR {keyword:?}"),
            Plan::Filter { .. } => "Filter".to_string(),
            Plan::NestedLoopJoin { .. } => "NestedLoopJoin".to_string(),
            Plan::HashJoin {
                left_keys, semi, ..
            } => {
                let kind = if *semi { "HashSemiJoin" } else { "HashJoin" };
                format!("{kind} ({} keys)", left_keys.len())
            }
            Plan::Project { items, visible, .. } => format!(
                "Project [{}]{}",
                items
                    .iter()
                    .take(*visible)
                    .map(|i| i.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
                if items.len() > *visible {
                    " (+hidden sort keys)"
                } else {
                    ""
                },
            ),
            Plan::Aggregate {
                group_by,
                items,
                visible,
                ..
            } => format!(
                "Aggregate groups={} [{}]",
                group_by.len(),
                items
                    .iter()
                    .take(*visible)
                    .map(|i| i.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
            Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            Plan::TopK {
                keys,
                limit,
                offset,
                ..
            } => format!("TopK {limit} OFFSET {offset} ({} keys)", keys.len()),
            Plan::Distinct { .. } => "Distinct".to_string(),
            Plan::Limit { limit, offset, .. } => format!("Limit {limit:?} OFFSET {offset}"),
        }
    }

    /// This operator's inputs, in plan (and `explain`) order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::IndexScan { .. } | Plan::KeywordScan { .. } => Vec::new(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Distinct { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::NestedLoopJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Whether any operator in the tree is an index or keyword scan —
    /// used by tests and the index-ablation bench to assert access paths.
    pub fn uses_index(&self) -> bool {
        match self {
            Plan::IndexScan { .. } | Plan::KeywordScan { .. } => true,
            _ => self.children().into_iter().any(Plan::uses_index),
        }
    }
}

/// Estimated cardinalities for one plan operator, kept as a parallel tree
/// whose children line up with [`Plan::children`]. `None` means the
/// planner had no basis for a number (e.g. a virtual-table overlay with
/// no tracked row count).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEstimate {
    /// Estimated output rows of this operator.
    pub rows: Option<f64>,
    /// Cumulative estimated rows *processed* by this subtree (scans,
    /// probes, builds and intermediate results) — the planner's cost
    /// unit, also used for the parallel-execution cutover.
    pub cost: Option<f64>,
    /// Child estimates, in [`Plan::children`] order.
    pub children: Vec<PlanEstimate>,
}

impl PlanEstimate {
    /// An all-unknown estimate tree matching `plan`'s shape.
    pub fn unknown(plan: &Plan) -> PlanEstimate {
        PlanEstimate {
            rows: None,
            cost: None,
            children: plan.children().into_iter().map(Self::unknown).collect(),
        }
    }
}

/// The planner's output: a plan plus the visible column count.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The operator tree.
    pub plan: Plan,
    /// The number of user-visible output columns (hidden sort keys follow).
    pub visible: usize,
    /// Estimated cardinality per operator, parallel to `plan`.
    pub estimate: PlanEstimate,
}

/// Re-exported for planner convenience.
pub type OrderKeys = Vec<OrderKey>;

/// The typed `EXPLAIN` surface: one node per plan operator carrying the
/// operator label, the planner's row estimate and — after an analyzed run
/// — the observed row count and exclusive wall-time. Built by
/// [`crate::Query::explain`] / [`crate::Query::explain_analyzed`];
/// [`PlanExplain::render`] produces the text form the shell and the wire
/// protocol's EXPLAIN frame print.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplain {
    /// The root operator.
    pub root: PlanExplainNode,
    /// Workers the morsel-parallel executor would use for this plan shape
    /// (1 when the plan must run on the streaming executor).
    pub workers: usize,
}

/// One operator of a [`PlanExplain`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExplainNode {
    /// Operator label, identical to [`Plan::describe`].
    pub op: String,
    /// The planner's estimated output rows, when it had a basis.
    pub estimated_rows: Option<f64>,
    /// Rows the operator actually produced (analyzed runs only).
    pub actual_rows: Option<u64>,
    /// Exclusive (self) wall-time in nanoseconds (analyzed runs only).
    pub self_time_ns: Option<u64>,
    /// Child operators, in plan order.
    pub children: Vec<PlanExplainNode>,
}

impl PlanExplain {
    /// Builds the explain tree for a planned query (no actuals).
    pub fn from_planned(planned: &PlannedQuery, workers: usize) -> PlanExplain {
        fn node(plan: &Plan, est: &PlanEstimate) -> PlanExplainNode {
            let unknown = PlanEstimate::unknown(plan);
            let children = plan.children();
            // A malformed estimate tree degrades to unknowns, never panics.
            let ests = if est.children.len() == children.len() {
                &est.children
            } else {
                &unknown.children
            };
            PlanExplainNode {
                op: plan.describe(),
                estimated_rows: est.rows,
                actual_rows: None,
                self_time_ns: None,
                children: children
                    .into_iter()
                    .zip(ests)
                    .map(|(p, e)| node(p, e))
                    .collect(),
            }
        }
        PlanExplain {
            root: node(&planned.plan, &planned.estimate),
            workers,
        }
    }

    /// Copies observed row counts and self-times from an executed
    /// profile into matching operators (matched by label and shape).
    pub fn attach_profile(&mut self, profile: &crate::exec::OpProfile) {
        fn walk(node: &mut PlanExplainNode, prof: &crate::exec::OpProfile) {
            if node.op != prof.op {
                return;
            }
            node.actual_rows = Some(prof.rows_out);
            node.self_time_ns = Some(prof.elapsed_ns);
            if node.children.len() == prof.children.len() {
                for (c, p) in node.children.iter_mut().zip(&prof.children) {
                    walk(c, p);
                }
            }
        }
        walk(&mut self.root, profile);
    }

    /// Renders the tree as indented text, one operator per line, followed
    /// by the `parallel=N` summary line — the same shape the string
    /// `EXPLAIN` surface always printed, now with row estimates (and,
    /// when analyzed, actual rows and self-times) appended per operator.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(0, &mut out);
        out.push_str(&format!("parallel={}\n", self.workers));
        out
    }
}

impl PlanExplainNode {
    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.op);
        let mut parts: Vec<String> = Vec::new();
        if let Some(rows) = self.actual_rows {
            parts.push(format!("rows={rows}"));
        }
        if let Some(est) = self.estimated_rows {
            parts.push(format!("est={est:.0}"));
        }
        if let Some(ns) = self.self_time_ns {
            parts.push(format!("self={}", crate::exec::format_ns(ns)));
        }
        if !parts.is_empty() {
            out.push_str("  [");
            out.push_str(&parts.join(" "));
            out.push(']');
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::Limit {
            input: Box::new(Plan::Filter {
                input: Box::new(Plan::Scan {
                    table: "t".into(),
                    alias: "t".into(),
                }),
                predicate: Expr::lit(1i64),
            }),
            limit: Some(5),
            offset: 0,
        };
        let text = plan.explain();
        assert!(text.contains("Limit Some(5) OFFSET 0"));
        assert!(text.contains("  Filter"));
        assert!(text.contains("    Scan t AS t"));
    }

    #[test]
    fn explain_renders_topk() {
        let plan = Plan::TopK {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                alias: "t".into(),
            }),
            keys: vec![SortKey {
                column: 0,
                descending: true,
            }],
            limit: 3,
            offset: 2,
        };
        let text = plan.explain();
        assert!(text.contains("TopK 3 OFFSET 2 (1 keys)"));
        assert!(text.contains("  Scan t AS t"));
        assert!(!plan.uses_index());
    }

    #[test]
    fn uses_index_detects_access_paths() {
        let scan = Plan::Scan {
            table: "t".into(),
            alias: "t".into(),
        };
        assert!(!scan.uses_index());
        let idx = Plan::IndexScan {
            table: "t".into(),
            alias: "t".into(),
            index: "i".into(),
            access: IndexAccess::Exact(vec![Value::Int(1)]),
        };
        assert!(idx.uses_index());
        let join = Plan::NestedLoopJoin {
            left: Box::new(scan),
            right: Box::new(idx),
            condition: None,
        };
        assert!(join.uses_index());
    }
}
