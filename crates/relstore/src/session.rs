//! Session-scoped query surface: the state a wire-protocol connection
//! owns on top of a shared [`Database`].
//!
//! A [`Session`] holds what must *not* leak between concurrent clients —
//! prepared statements addressed by small integer handles, and
//! session-local settings such as the worker count — while everything
//! worth sharing (the plan cache, the MVCC storage root, indexes) stays
//! in the `Database` it wraps. Dropping a session drops its prepared
//! statements; nothing else needs cleanup, which is what makes an
//! abruptly-killed connection safe: the server just drops the value.
//!
//! Every query run through a session pins an MVCC snapshot at build time
//! (see [`Database::query`]), so two sessions interleaving reads and
//! writes each see a consistent committed state, never a torn one.

use std::collections::HashMap;
use std::sync::Arc;

use crate::db::Database;
use crate::error::{RelError, RelResult};
use crate::query::{Prepared, QueryOutcome};
use crate::value::Value;

/// A prepared-statement handle as returned to a session client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StmtHandle {
    /// Session-scoped statement id; meaningless in any other session.
    pub id: u32,
    /// Number of `?` placeholders the statement takes.
    pub param_count: usize,
}

/// Per-connection state over a shared [`Database`]. See the module docs.
///
/// Each session registers itself with the database on construction and
/// unregisters on drop, which is what `sys_sessions` rows are made of.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    prepared: HashMap<u32, Prepared>,
    next_stmt_id: u32,
    workers: Option<usize>,
}

impl Session {
    /// A fresh session over `db` with no prepared statements and the
    /// database's default worker count.
    pub fn new(db: Arc<Database>) -> Session {
        let id = db.register_session();
        Session {
            db,
            id,
            prepared: HashMap::new(),
            next_stmt_id: 1,
            workers: None,
        }
    }

    /// The database-assigned session id (the `sys_sessions.session_id`
    /// this session shows up under).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shared database this session runs against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Overrides the worker count for every subsequent query in this
    /// session (`None` restores the database default).
    pub fn set_workers(&mut self, workers: Option<usize>) {
        self.workers = workers.map(|w| w.max(1));
        let workers = self.workers;
        self.db.update_session(self.id, |s| s.workers = workers);
    }

    /// The session's worker override, if any.
    pub fn workers(&self) -> Option<usize> {
        self.workers
    }

    /// Number of live prepared statements (used by tests and `METRICS`).
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    /// Runs one SQL statement with positional parameters, honoring the
    /// session's worker override. The query pins its MVCC snapshot here.
    pub fn run_sql(&self, sql: &str, params: Vec<Value>) -> RelResult<QueryOutcome> {
        let mut q = self.db.query(sql);
        for p in params {
            q = q.bind_value(p);
        }
        if let Some(w) = self.workers {
            q = q.with_workers(w);
        }
        self.db.update_session(self.id, |s| s.queries += 1);
        q.run()
    }

    /// Parses and types `sql` once, returning a handle valid only within
    /// this session.
    pub fn prepare(&mut self, sql: &str) -> RelResult<StmtHandle> {
        let prepared = self.db.prepare(sql)?;
        let handle = StmtHandle {
            id: self.next_stmt_id,
            param_count: prepared.param_count(),
        };
        self.next_stmt_id += 1;
        self.prepared.insert(handle.id, prepared);
        let live = self.prepared.len();
        self.db.update_session(self.id, |s| s.prepared = live);
        Ok(handle)
    }

    /// Executes a previously prepared statement with bound parameters.
    /// An id this session never issued (or already closed) is a typed
    /// error — notably including ids issued by *other* sessions.
    pub fn execute(&self, id: u32, params: Vec<Value>) -> RelResult<QueryOutcome> {
        let prepared = self.prepared.get(&id).ok_or_else(|| {
            RelError::Bind(format!("no prepared statement #{id} in this session"))
        })?;
        let mut q = self.db.query_prepared(prepared);
        for p in params {
            q = q.bind_value(p);
        }
        if let Some(w) = self.workers {
            q = q.with_workers(w);
        }
        self.db.update_session(self.id, |s| s.queries += 1);
        q.run()
    }

    /// Drops a prepared statement; `false` if the id was not live.
    pub fn close_stmt(&mut self, id: u32) -> bool {
        let removed = self.prepared.remove(&id).is_some();
        let live = self.prepared.len();
        self.db.update_session(self.id, |s| s.prepared = live);
        removed
    }

    /// Renders the plan tree (or, with `analyze`, runs the query and
    /// renders the per-operator profile) for a `SELECT`. The non-analyze
    /// path renders the typed [`PlanExplain`](crate::plan::PlanExplain)
    /// tree from [`crate::query::Query::explain`].
    pub fn explain(&self, sql: &str, analyze: bool) -> RelResult<String> {
        if analyze {
            self.db.explain_analyze(sql)
        } else {
            Ok(self.db.query(sql).explain()?.render())
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.db.unregister_session(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_rows() -> Arc<Database> {
        let db = Arc::new(Database::in_memory());
        db.query("CREATE TABLE t (a INT, s TEXT)").run().unwrap();
        for i in 0..5i64 {
            db.query("INSERT INTO t VALUES (?, ?)")
                .bind(i)
                .bind(format!("row{i}"))
                .run()
                .unwrap();
        }
        db
    }

    #[test]
    fn prepared_handles_are_session_scoped() {
        let db = db_with_rows();
        let mut s1 = Session::new(Arc::clone(&db));
        let mut s2 = Session::new(Arc::clone(&db));
        let h1 = s1.prepare("SELECT s FROM t WHERE a = ?").unwrap();
        assert_eq!(h1.param_count, 1);
        // Same id space, different statements: no cross-talk.
        let h2 = s2.prepare("SELECT a FROM t WHERE s = ?").unwrap();
        assert_eq!(h1.id, h2.id);
        let out = s1.execute(h1.id, vec![Value::Int(3)]).unwrap();
        assert_eq!(out.rows.rows()[0][0], Value::Text("row3".into()));
        let out = s2.execute(h2.id, vec![Value::Text("row3".into())]).unwrap();
        assert_eq!(out.rows.rows()[0][0], Value::Int(3));
        // A handle the session never issued fails with a bind error.
        let err = s1.execute(99, vec![]).unwrap_err();
        assert_eq!(err.code(), "bind");
        // Closing invalidates.
        assert!(s1.close_stmt(h1.id));
        assert!(!s1.close_stmt(h1.id));
        assert!(s1.execute(h1.id, vec![Value::Int(3)]).is_err());
    }

    #[test]
    fn run_sql_binds_and_honors_workers() {
        let db = db_with_rows();
        let mut s = Session::new(db);
        s.set_workers(Some(2));
        assert_eq!(s.workers(), Some(2));
        let out = s
            .run_sql("SELECT COUNT(*) FROM t WHERE a < ?", vec![Value::Int(3)])
            .unwrap();
        assert_eq!(out.rows.rows()[0][0], Value::Int(3));
        s.set_workers(Some(0)); // clamps to 1
        assert_eq!(s.workers(), Some(1));
    }
}
