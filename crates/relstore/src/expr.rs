//! Expression evaluation.
//!
//! Expressions are evaluated against a [`RowSchema`] (the named columns an
//! operator produces) and a row of values. SQL three-valued logic is
//! honoured: comparisons involving NULL yield NULL, `AND`/`OR` short-
//! circuit around NULL per the standard truth tables, and a WHERE clause
//! accepts a row only when its predicate is *true* (not NULL).

use crate::error::{RelError, RelResult};
use crate::regex::Pattern;
use crate::sql::ast::{BinOp, Expr};
use crate::text::tokenize;
use crate::value::Value;

thread_local! {
    /// Compiled-pattern cache for `MATCHES`: a query evaluates the same
    /// pattern once per row, so compilation is amortized per thread.
    static PATTERN_CACHE: std::cell::RefCell<std::collections::HashMap<String, Pattern>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Compiles `pattern` (cached) and tests it against `text`.
pub fn regex_match(pattern: &str, text: &str) -> RelResult<bool> {
    PATTERN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if !cache.contains_key(pattern) {
            let compiled = Pattern::compile(pattern).map_err(|e| RelError::Eval(e.to_string()))?;
            cache.insert(pattern.to_string(), compiled);
        }
        Ok(cache.get(pattern).expect("just inserted").is_match(text))
    })
}

/// A named column in an operator's output: `(binding alias, column name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBinding {
    /// The table alias this column came from.
    pub table: String,
    /// The column name.
    pub name: String,
}

/// The schema of rows flowing through the executor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowSchema {
    columns: Vec<ColumnBinding>,
}

impl RowSchema {
    /// Creates a schema from bindings.
    pub fn new(columns: Vec<ColumnBinding>) -> Self {
        RowSchema { columns }
    }

    /// Builds a schema for a base table bound under `alias`.
    pub fn for_table(alias: &str, column_names: impl IntoIterator<Item = String>) -> Self {
        RowSchema {
            columns: column_names
                .into_iter()
                .map(|name| ColumnBinding {
                    table: alias.to_string(),
                    name,
                })
                .collect(),
        }
    }

    /// The bindings.
    pub fn columns(&self) -> &[ColumnBinding] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Concatenates two schemas (join output).
    pub fn join(&self, other: &RowSchema) -> RowSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        RowSchema { columns }
    }

    /// Resolves a possibly-qualified column reference to its position.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> RelResult<usize> {
        let mut found = None;
        for (i, binding) in self.columns.iter().enumerate() {
            let table_ok = table.is_none_or(|t| binding.table.eq_ignore_ascii_case(t));
            if table_ok && binding.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    let full = match table {
                        Some(t) => format!("{t}.{name}"),
                        None => name.to_string(),
                    };
                    return Err(RelError::AmbiguousColumn(full));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_string(),
            };
            RelError::UnknownColumn(full)
        })
    }
}

/// Evaluates `expr` against one row.
pub fn eval(expr: &Expr, schema: &RowSchema, row: &[Value]) -> RelResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let i = schema.resolve(table.as_deref(), name)?;
            Ok(row[i].clone())
        }
        Expr::Binary { op, left, right } => {
            if matches!(op, BinOp::And | BinOp::Or) {
                return eval_logic(*op, left, right, schema, row);
            }
            let l = eval(left, schema, row)?;
            let r = eval(right, schema, row)?;
            if op.is_comparison() {
                return Ok(match l.compare(&r) {
                    None => Value::Null,
                    Some(ord) => {
                        let b = match op {
                            BinOp::Eq => ord.is_eq(),
                            BinOp::Ne => ord.is_ne(),
                            BinOp::Lt => ord.is_lt(),
                            BinOp::Le => ord.is_le(),
                            BinOp::Gt => ord.is_gt(),
                            BinOp::Ge => ord.is_ge(),
                            _ => unreachable!("comparison op"),
                        };
                        bool_value(b)
                    }
                });
            }
            eval_arith(*op, &l, &r)
        }
        Expr::Not(inner) => {
            let v = eval(inner, schema, row)?;
            Ok(match truth(&v) {
                None => Value::Null,
                Some(b) => bool_value(!b),
            })
        }
        Expr::Neg(inner) => {
            let v = eval(inner, schema, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => i
                    .checked_neg()
                    .map(Value::Int)
                    .ok_or_else(|| RelError::Eval(format!("integer overflow evaluating -({i})"))),
                Value::Float(f) => Ok(Value::Float(-f)),
                Value::Text(_) => Err(RelError::Eval("cannot negate text".into())),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(bool_value(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            let p = eval(pattern, schema, row)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(text), Value::Text(pattern)) => {
                    Ok(bool_value(like_match(pattern, text) != *negated))
                }
                _ => Err(RelError::Eval("LIKE requires text operands".into())),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let candidate = eval(item, schema, row)?;
                match v.compare(&candidate) {
                    Some(ord) if ord.is_eq() => return Ok(bool_value(!*negated)),
                    None if candidate.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(bool_value(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            let lo = eval(low, schema, row)?;
            let hi = eval(high, schema, row)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => Ok(bool_value((a.is_ge() && b.is_le()) != *negated)),
                _ => Ok(Value::Null),
            }
        }
        Expr::Contains { column, keyword } => {
            let v = eval(column, schema, row)?;
            let k = eval(keyword, schema, row)?;
            match (&v, &k) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(text), Value::Text(keyword)) => {
                    Ok(bool_value(contains_keywords(text, keyword)))
                }
                _ => Err(RelError::Eval("CONTAINS requires text operands".into())),
            }
        }
        Expr::Matches { column, pattern } => {
            let v = eval(column, schema, row)?;
            let p = eval(pattern, schema, row)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(text), Value::Text(pattern)) => {
                    Ok(bool_value(regex_match(pattern, text)?))
                }
                _ => Err(RelError::Eval("MATCHES requires text operands".into())),
            }
        }
        Expr::Param(i) => Err(RelError::Eval(format!("unbound parameter ?{}", i + 1))),
        Expr::Aggregate { .. } => Err(RelError::Eval(
            "aggregate used outside of a select list".into(),
        )),
    }
}

/// Evaluates a predicate for filtering: true ⇢ keep, false/NULL ⇢ drop.
pub fn eval_predicate(expr: &Expr, schema: &RowSchema, row: &[Value]) -> RelResult<bool> {
    Ok(truth(&eval(expr, schema, row)?).unwrap_or(false))
}

fn eval_logic(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    schema: &RowSchema,
    row: &[Value],
) -> RelResult<Value> {
    let l = truth(&eval(left, schema, row)?);
    // Short-circuit per three-valued logic.
    match (op, l) {
        (BinOp::And, Some(false)) => return Ok(bool_value(false)),
        (BinOp::Or, Some(true)) => return Ok(bool_value(true)),
        _ => {}
    }
    let r = truth(&eval(right, schema, row)?);
    Ok(match op {
        BinOp::And => match (l, r) {
            (Some(true), Some(true)) => bool_value(true),
            (Some(false), _) | (_, Some(false)) => bool_value(false),
            _ => Value::Null,
        },
        BinOp::Or => match (l, r) {
            (Some(false), Some(false)) => bool_value(false),
            (Some(true), _) | (_, Some(true)) => bool_value(true),
            _ => Value::Null,
        },
        _ => unreachable!("logic op"),
    })
}

fn eval_arith(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are Int; otherwise float.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        // Out-of-range results are surfaced as errors, never wrapped:
        // a silently wrapped total is indistinguishable from real data.
        let overflow = || RelError::Eval(format!("integer overflow evaluating {a} {op:?} {b}"));
        return match op {
            BinOp::Add => a.checked_add(*b).map(Value::Int).ok_or_else(overflow),
            BinOp::Sub => a.checked_sub(*b).map(Value::Int).ok_or_else(overflow),
            BinOp::Mul => a.checked_mul(*b).map(Value::Int).ok_or_else(overflow),
            BinOp::Div => {
                if *b == 0 {
                    Err(RelError::Eval("division by zero".into()))
                } else {
                    // checked_div guards i64::MIN / -1, which would panic.
                    a.checked_div(*b).map(Value::Int).ok_or_else(overflow)
                }
            }
            _ => Err(RelError::Eval(format!("{op:?} is not arithmetic"))),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(RelError::Eval(format!(
                "arithmetic on non-numeric values {l} and {r}"
            )))
        }
    };
    match op {
        BinOp::Add => Ok(Value::Float(a + b)),
        BinOp::Sub => Ok(Value::Float(a - b)),
        BinOp::Mul => Ok(Value::Float(a * b)),
        BinOp::Div => {
            if b == 0.0 {
                Err(RelError::Eval("division by zero".into()))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        _ => Err(RelError::Eval(format!("{op:?} is not arithmetic"))),
    }
}

fn bool_value(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

/// SQL truthiness: NULL is unknown; zero numerics are false; text is an
/// error domain we conservatively treat as false.
fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Float(f) => Some(*f != 0.0),
        Value::Text(_) => Some(false),
    }
}

/// `LIKE` pattern matching with `%` (any run) and `_` (any single char).
///
/// Greedy two-pointer algorithm: on mismatch after a `%`, resume at the
/// most recent `%` and let it absorb one more character. Each text
/// position is revisited at most once per `%`, so matching is O(n·m) in
/// the worst case — never the exponential blowup of naive backtracking
/// on patterns like `%a%a%a%b`.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Resume state for the last `%` seen: its pattern position, and the
    // text position its run currently extends to.
    let (mut star, mut star_ti) = (None::<usize>, 0usize);
    while ti < t.len() {
        // `%` must be interpreted as a wildcard before any literal
        // comparison: if the text character is itself '%', a literal
        // match here would skip recording the resume state and lose
        // the run the wildcard is supposed to absorb.
        if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if let Some(s) = star {
            // Mismatch: widen the last `%` by one character and retry.
            pi = s + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    // Only trailing `%` can match the exhausted text.
    p[pi..].iter().all(|c| *c == '%')
}

/// Whole-token containment used by the fallback (non-indexed) CONTAINS.
pub fn contains_keywords(text: &str, keyword: &str) -> bool {
    let wanted = tokenize(keyword);
    if wanted.is_empty() {
        return false;
    }
    let have = tokenize(text);
    wanted.iter().all(|w| have.iter().any(|h| h == w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;

    fn schema() -> RowSchema {
        RowSchema::for_table("t", vec!["a".into(), "b".into(), "txt".into()])
    }

    fn filter_of(sql: &str) -> Expr {
        match parse_statement(&format!("SELECT * FROM t WHERE {sql}")).unwrap() {
            Statement::Select(s) => s.filter.unwrap(),
            _ => unreachable!(),
        }
    }

    fn run(pred: &str, row: &[Value]) -> bool {
        eval_predicate(&filter_of(pred), &schema(), row).unwrap()
    }

    fn row(a: i64, b: f64, txt: &str) -> Vec<Value> {
        vec![Value::Int(a), Value::Float(b), Value::Text(txt.into())]
    }

    #[test]
    fn comparisons() {
        let r = row(5, 2.5, "hello");
        assert!(run("a = 5", &r));
        assert!(run("a <> 4", &r));
        assert!(run("b < 3", &r));
        assert!(run("b >= 2.5", &r));
        assert!(run("a > b", &r));
        assert!(run("txt = 'hello'", &r));
        assert!(!run("txt = 'HELLO'", &r));
    }

    #[test]
    fn three_valued_logic() {
        let r = vec![Value::Null, Value::Float(1.0), Value::Text("x".into())];
        assert!(!run("a = 1", &r));
        assert!(!run("a <> 1", &r));
        assert!(run("a IS NULL", &r));
        assert!(!run("a IS NOT NULL", &r));
        // NULL OR true = true; NULL AND false = false.
        assert!(run("a = 1 OR b = 1", &r));
        assert!(!run("a = 1 AND b = 0", &r));
        assert!(!run("a = 1 AND b = 1", &r));
        // NOT NULL is NULL → filtered out.
        assert!(!run("NOT (a = 1)", &r));
    }

    #[test]
    fn arithmetic() {
        let r = row(10, 0.5, "");
        assert!(run("a + 5 = 15", &r));
        assert!(run("a * 2 = 20", &r));
        assert!(run("a / 3 = 3", &r)); // integer division
        assert!(run("b * 4 = 2.0", &r));
        assert!(run("-a = -10", &r));
        let err = eval(&filter_of("a / 0"), &schema(), &r).unwrap_err();
        assert!(matches!(err, RelError::Eval(_)));
    }

    #[test]
    fn mixed_numeric_comparison() {
        let r = row(2, 2.0, "");
        assert!(run("a = b", &r));
        assert!(run("a >= b", &r));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("%ketone%", "the ketone group"));
        assert!(like_match("cdc_", "cdc6"));
        assert!(like_match("%", ""));
        assert!(like_match("a%z", "az"));
        assert!(like_match("a%z", "a--z"));
        assert!(!like_match("a%z", "a--y"));
        assert!(!like_match("_", ""));
        assert!(like_match("%%x%%", "xx"));
        let r = row(0, 0.0, "Peptidylglycine monooxygenase.");
        assert!(run("txt LIKE '%glycine%'", &r));
        assert!(run("txt NOT LIKE 'x%'", &r));
    }

    #[test]
    fn like_no_exponential_backtracking() {
        // Seed regression: the naive recursive matcher was exponential in
        // the number of `%` wildcards on non-matching text. 200 chars of
        // text against a 10-wildcard pattern must finish in milliseconds.
        let text = "a".repeat(200);
        let pattern = format!("{}b", "%a".repeat(10));
        let start = std::time::Instant::now();
        assert!(!like_match(&pattern, &text));
        // Generous bound: the greedy matcher runs in microseconds; the
        // exponential one would need longer than the age of the universe.
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "like_match took {:?}",
            start.elapsed()
        );
        // Same shape, but matching (text ends in b).
        let text = format!("{}b", "a".repeat(199));
        assert!(like_match(&pattern, &text));
    }

    #[test]
    fn like_backtracking_semantics() {
        // Cases that exercise the %-resume path specifically.
        assert!(like_match("%abc%", "ababcx"));
        assert!(like_match("%a_c%", "zzabczz"));
        assert!(!like_match("%abc", "ababx"));
        assert!(like_match("a%b%c", "axxbyyc"));
        assert!(!like_match("a%b%c", "axxbyyd"));
        assert!(like_match("%_%", "x"));
        assert!(!like_match("%_%", ""));
        assert!(like_match("ab%", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn like_wildcard_wins_over_literal_percent() {
        // Regression: the two-pointer matcher once tested the literal
        // branch before the `%` branch, so a '%' in the *text* matched a
        // pattern '%' as a literal and the resume state was never
        // recorded — silently mismatching any text containing '%'.
        assert!(like_match("%", "%a"));
        assert!(like_match("%x", "%yx"));
        assert!(like_match("%beta", "%odd beta"));
        assert!(like_match("%%", "%"));
        assert!(like_match("%a%", "x%a%y"));
        assert!(!like_match("%x", "%y"));
        // '_' in the text is only ever a literal (no resume state), but
        // pin the behaviour alongside its sibling.
        assert!(like_match("_", "_"));
        assert!(like_match("%_", "a_"));
    }

    /// Obviously-correct exponential reference matcher for the
    /// differential test below.
    fn like_ref(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some((&'%', rest)) => (0..=t.len()).any(|i| like_ref(rest, &t[i..])),
            Some((&'_', rest)) => !t.is_empty() && like_ref(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && like_ref(rest, &t[1..]),
        }
    }

    #[test]
    fn like_differential_over_metacharacter_strings() {
        // Every pair of strings over {a, %, _} up to length 4 — texts
        // containing the metacharacters included — must agree with the
        // naive recursive matcher. The literal-'%'-in-text bug diverged
        // on 546 of these pairs.
        let alphabet = ['a', '%', '_'];
        let mut strings = vec![String::new()];
        let mut frontier = vec![String::new()];
        for _ in 0..4 {
            let mut next = Vec::new();
            for s in &frontier {
                for c in alphabet {
                    let mut grown = s.clone();
                    grown.push(c);
                    strings.push(grown.clone());
                    next.push(grown);
                }
            }
            frontier = next;
        }
        for pattern in &strings {
            let p: Vec<char> = pattern.chars().collect();
            for text in &strings {
                let t: Vec<char> = text.chars().collect();
                assert_eq!(
                    like_match(pattern, text),
                    like_ref(&p, &t),
                    "divergence on pattern {pattern:?} text {text:?}"
                );
            }
        }
    }

    #[test]
    fn integer_overflow_is_an_error_not_a_wrap() {
        // Seed regression: wrapping_add/sub/mul returned wrong answers
        // silently; i64::MIN / -1 panicked.
        let s = schema();
        let r = row(0, 0.0, "");
        let max = i64::MAX;
        // i64::MIN has no SQL literal spelling (its magnitude overflows
        // during parsing), so build it as -MAX - 1.
        let min = format!("(-{max} - 1)");
        for sql in [
            format!("a + ({max} + 1)"),
            format!("a + ({min} - 1)"),
            format!("a + ({max} * 2)"),
            format!("a + ({min} / -1)"),
            format!("a + (-{min})"),
        ] {
            let err = eval(&filter_of(&sql), &s, &r).unwrap_err();
            match err {
                RelError::Eval(msg) => {
                    assert!(
                        msg.contains("integer overflow"),
                        "unexpected message: {msg}"
                    )
                }
                other => panic!("expected Eval error, got {other:?}"),
            }
        }
        // In-range results are untouched.
        assert!(run(&format!("a + {max} = {max}"), &r));
        assert!(run("a + (-9) / -1 = 9", &r));
    }

    #[test]
    fn in_list_semantics() {
        let r = row(2, 0.0, "x");
        assert!(run("a IN (1, 2, 3)", &r));
        assert!(!run("a IN (4, 5)", &r));
        assert!(run("a NOT IN (4, 5)", &r));
        // x NOT IN (..., NULL) is NULL when no match → filtered.
        assert!(!run("a NOT IN (4, NULL)", &r));
        assert!(run("a IN (2, NULL)", &r));
    }

    #[test]
    fn between_semantics() {
        let r = row(5, 0.0, "x");
        assert!(run("a BETWEEN 1 AND 10", &r));
        assert!(run("a BETWEEN 5 AND 5", &r));
        assert!(!run("a BETWEEN 6 AND 10", &r));
        assert!(run("a NOT BETWEEN 6 AND 10", &r));
    }

    #[test]
    fn contains_predicate() {
        let r = row(0, 0.0, "cell division cycle protein cdc6");
        assert!(run("CONTAINS(txt, 'cdc6')", &r));
        assert!(run("CONTAINS(txt, 'CELL division')", &r));
        assert!(!run("CONTAINS(txt, 'mitosis')", &r));
        assert!(!run("CONTAINS(txt, 'divis')", &r)); // whole-token only
    }

    #[test]
    fn matches_predicate() {
        let r = row(0, 0.0, "MKNVTLAGRA");
        assert!(run("MATCHES(txt, 'N[^P][ST]')", &r));
        assert!(run("MATCHES(txt, '^MK')", &r));
        assert!(!run("MATCHES(txt, '^VTL')", &r));
        assert!(run("MATCHES(txt, 'AGRA$')", &r));
        // NULL propagates.
        let n = vec![Value::Int(0), Value::Float(0.0), Value::Null];
        assert!(!run("MATCHES(txt, 'x')", &n));
        // Bad pattern is an error.
        assert!(eval(&filter_of("MATCHES(txt, '[')"), &schema(), &r).is_err());
        // Non-text operand is an error.
        assert!(eval(&filter_of("MATCHES(a, 'x')"), &schema(), &r).is_err());
    }

    #[test]
    fn column_resolution() {
        let s = RowSchema::for_table("a", vec!["x".into()])
            .join(&RowSchema::for_table("b", vec!["x".into(), "y".into()]));
        assert_eq!(s.resolve(Some("a"), "x").unwrap(), 0);
        assert_eq!(s.resolve(Some("b"), "x").unwrap(), 1);
        assert_eq!(s.resolve(None, "y").unwrap(), 2);
        assert!(matches!(
            s.resolve(None, "x"),
            Err(RelError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            s.resolve(None, "zz"),
            Err(RelError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.resolve(Some("c"), "x"),
            Err(RelError::UnknownColumn(_))
        ));
    }

    #[test]
    fn case_insensitive_resolution() {
        let s = schema();
        let r = row(1, 2.0, "t");
        assert!(run("T.A = 1", &r));
        assert_eq!(s.resolve(Some("T"), "TXT").unwrap(), 2);
    }
}
