//! Materialized views: delta-wise maintenance over committed transactions.
//!
//! Every test compares a view's stored contents against a from-scratch
//! recompute of its defining query, because that is the subsystem's whole
//! contract: after any sequence of committed DML, `SELECT * FROM view`
//! and running the definition directly must be indistinguishable.

use std::collections::BTreeMap;
use std::path::PathBuf;

use xomatiq_relstore::{Database, FaultConfig, FaultyIo, Value};

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-matview-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.wal", std::process::id()));
    for suffix in ["", ".old", ".ckpt", ".ckpt.tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
    path
}

/// Sorted multiset of a query's rows, rendered; view contents and direct
/// recompute must agree on this exactly (order within the view is not
/// part of the contract — only the multiset is).
fn rows_of(db: &Database, sql: &str) -> Vec<Vec<String>> {
    let out = db.query(sql).run().unwrap();
    let mut rows: Vec<Vec<String>> = out
        .rows
        .rows()
        .iter()
        .map(|r| r.iter().map(render_value).collect())
        .collect();
    rows.sort();
    rows
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "∅".to_string(),
        Value::Float(f) => format!("{f:.9}"),
        other => other.to_string(),
    }
}

fn assert_view_matches(db: &Database, view: &str, definition: &str) {
    assert_eq!(
        rows_of(db, &format!("SELECT * FROM {view}")),
        rows_of(db, definition),
        "view {view} diverged from its definition"
    );
}

fn sys_views_row(db: &Database, view: &str) -> BTreeMap<String, String> {
    let out = db
        .query("SELECT * FROM sys_views WHERE view_name = ?")
        .bind(view)
        .run()
        .unwrap();
    let row = out.rows.rows().first().cloned().unwrap_or_default();
    out.rows
        .columns()
        .iter()
        .zip(row)
        .map(|(c, v)| (c.clone(), v.to_string()))
        .collect()
}

// ---------------------------------------------------------------------------
// Synchronous (REFRESH ON COMMIT) maintenance
// ---------------------------------------------------------------------------

#[test]
fn on_commit_filter_view_tracks_inserts_updates_deletes() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, grp TEXT, v INT)")
        .run()
        .unwrap();
    for i in 0..40i64 {
        db.query("INSERT INTO t VALUES (?, ?, ?)")
            .bind(i)
            .bind(if i % 3 == 0 { "a" } else { "b" })
            .bind(i * 7 % 11)
            .run()
            .unwrap();
    }
    let def = "SELECT id, v * 2 AS dbl FROM t WHERE v > 3";
    db.query(&format!(
        "CREATE MATERIALIZED VIEW big REFRESH ON COMMIT AS {def}"
    ))
    .run()
    .unwrap();
    assert_view_matches(&db, "big", def);

    // Rows migrate across the predicate boundary in both directions.
    db.query("UPDATE t SET v = v + 5 WHERE id < 10")
        .run()
        .unwrap();
    assert_view_matches(&db, "big", def);
    db.query("UPDATE t SET v = 0 WHERE id >= 30").run().unwrap();
    assert_view_matches(&db, "big", def);
    db.query("DELETE FROM t WHERE v > 8").run().unwrap();
    assert_view_matches(&db, "big", def);
    db.query("INSERT INTO t VALUES (100, 'a', 9), (101, 'b', 1)")
        .run()
        .unwrap();
    assert_view_matches(&db, "big", def);
}

#[test]
fn on_commit_join_view_tracks_both_sides() {
    let db = Database::in_memory();
    db.query("CREATE TABLE orders (id INT, cust INT, total INT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE customers (id INT, name TEXT)")
        .run()
        .unwrap();
    for i in 0..8i64 {
        db.query("INSERT INTO customers VALUES (?, ?)")
            .bind(i)
            .bind(format!("c{i}"))
            .run()
            .unwrap();
    }
    for i in 0..30i64 {
        db.query("INSERT INTO orders VALUES (?, ?, ?)")
            .bind(i)
            .bind(i % 10) // custs 8..9 dangle
            .bind(i * 13 % 97)
            .run()
            .unwrap();
    }
    let def = "SELECT o.id, c.name, o.total FROM orders o \
               JOIN customers c ON o.cust = c.id WHERE o.total > 20";
    db.query(&format!(
        "CREATE MATERIALIZED VIEW cust_orders REFRESH ON COMMIT AS {def}"
    ))
    .run()
    .unwrap();
    assert_view_matches(&db, "cust_orders", def);

    // Left-side churn: new orders, moved orders, deleted orders.
    db.query("INSERT INTO orders VALUES (200, 3, 50)")
        .run()
        .unwrap();
    db.query("UPDATE orders SET cust = 8 WHERE id < 5")
        .run()
        .unwrap();
    db.query("DELETE FROM orders WHERE total > 80")
        .run()
        .unwrap();
    assert_view_matches(&db, "cust_orders", def);

    // Right-side churn: a customer vanishes (drops all its matches), a
    // rename flows through, a previously-dangling cust id appears.
    db.query("DELETE FROM customers WHERE id = 3")
        .run()
        .unwrap();
    db.query("UPDATE customers SET name = 'renamed' WHERE id = 4")
        .run()
        .unwrap();
    db.query("INSERT INTO customers VALUES (9, 'late')")
        .run()
        .unwrap();
    assert_view_matches(&db, "cust_orders", def);
}

#[test]
fn on_commit_aggregate_view_handles_minmax_retraction() {
    let db = Database::in_memory();
    db.query("CREATE TABLE m (grp TEXT, v INT)").run().unwrap();
    for i in 0..30i64 {
        db.query("INSERT INTO m VALUES (?, ?)")
            .bind(if i % 2 == 0 { "x" } else { "y" })
            .bind(i)
            .run()
            .unwrap();
    }
    let def = "SELECT grp, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, \
               MAX(v) AS hi, AVG(v) AS mean FROM m GROUP BY grp";
    db.query(&format!(
        "CREATE MATERIALIZED VIEW agg REFRESH ON COMMIT AS {def}"
    ))
    .run()
    .unwrap();
    assert_view_matches(&db, "agg", def);

    // Retract the current max of group x (29 stays in y): forces the
    // per-group rescan path for MAX while SUM/COUNT stay additive.
    db.query("DELETE FROM m WHERE v = 28").run().unwrap();
    assert_view_matches(&db, "agg", def);
    // Retract the min of both groups at once.
    db.query("DELETE FROM m WHERE v < 2").run().unwrap();
    assert_view_matches(&db, "agg", def);
    // A group disappears entirely, then reappears.
    db.query("DELETE FROM m WHERE grp = 'y'").run().unwrap();
    assert_view_matches(&db, "agg", def);
    db.query("INSERT INTO m VALUES ('y', 1000)").run().unwrap();
    assert_view_matches(&db, "agg", def);
    // Non-extreme updates keep accumulators additive.
    db.query("UPDATE m SET v = v + 1 WHERE v < 20")
        .run()
        .unwrap();
    assert_view_matches(&db, "agg", def);
}

#[test]
fn on_commit_global_aggregate_tracks_empty_table() {
    let db = Database::in_memory();
    db.query("CREATE TABLE g (v INT)").run().unwrap();
    let def = "SELECT COUNT(*) AS n, SUM(v) AS s FROM g";
    db.query(&format!(
        "CREATE MATERIALIZED VIEW tot REFRESH ON COMMIT AS {def}"
    ))
    .run()
    .unwrap();
    // The global group exists even over an empty table: COUNT 0, SUM NULL.
    assert_view_matches(&db, "tot", def);
    db.query("INSERT INTO g VALUES (5), (7)").run().unwrap();
    assert_view_matches(&db, "tot", def);
    db.query("DELETE FROM g WHERE v > 0").run().unwrap();
    assert_view_matches(&db, "tot", def);
}

#[test]
fn multi_statement_batch_maintains_views_atomically() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1, 10), (2, 20)")
        .run()
        .unwrap();
    let def = "SELECT id, v FROM t WHERE v > 5";
    db.query(&format!(
        "CREATE MATERIALIZED VIEW f REFRESH ON COMMIT AS {def}"
    ))
    .run()
    .unwrap();
    // One transaction whose statements interact: the view must reflect
    // the net effect, not the per-statement intermediates.
    db.execute_batch(&[
        "INSERT INTO t VALUES (3, 30)",
        "UPDATE t SET v = 1 WHERE id = 3",
        "DELETE FROM t WHERE id = 1",
        "INSERT INTO t VALUES (4, 40)",
    ])
    .unwrap();
    assert_view_matches(&db, "f", def);
}

// ---------------------------------------------------------------------------
// Deferred refresh and the bounded delta log
// ---------------------------------------------------------------------------

#[test]
fn deferred_view_stays_stale_until_refresh() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1, 10), (2, 20)")
        .run()
        .unwrap();
    let def = "SELECT id, v FROM t WHERE v > 5";
    db.query(&format!("CREATE MATERIALIZED VIEW lazy AS {def}"))
        .run()
        .unwrap();
    assert_view_matches(&db, "lazy", def);

    db.query("INSERT INTO t VALUES (3, 30)").run().unwrap();
    // Still the creation-time contents...
    assert_eq!(rows_of(&db, "SELECT * FROM lazy").len(), 2);
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["refresh_policy"], "deferred");
    assert_eq!(info["pending_delta_rows"], "1");

    // ...until REFRESH drains the delta log incrementally.
    db.query("REFRESH MATERIALIZED VIEW lazy").run().unwrap();
    assert_view_matches(&db, "lazy", def);
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["pending_delta_rows"], "0");
    assert_eq!(info["incremental_refreshes"], "1");
}

#[test]
fn refresh_full_recomputes_and_counts_as_fallback() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1, 10)").run().unwrap();
    db.query("CREATE MATERIALIZED VIEW lazy AS SELECT id, v FROM t")
        .run()
        .unwrap();
    db.query("INSERT INTO t VALUES (2, 20)").run().unwrap();
    db.query("REFRESH MATERIALIZED VIEW lazy FULL")
        .run()
        .unwrap();
    assert_view_matches(&db, "lazy", "SELECT id, v FROM t");
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["fallback_refreshes"], "1");
    assert_eq!(info["pending_delta_rows"], "0");
}

#[test]
fn delta_log_overflow_falls_back_to_full_recompute() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
    db.query("CREATE MATERIALIZED VIEW lazy AS SELECT id, v FROM t WHERE v >= 0")
        .run()
        .unwrap();
    // Blow past the 4096-event cap in a handful of batched commits.
    for batch in 0..5i64 {
        let rows: Vec<String> = (0..1000)
            .map(|i| format!("({}, {})", batch * 1000 + i, i))
            .collect();
        db.query(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .run()
            .unwrap();
    }
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["delta_log_overflow"], "1");
    assert_eq!(info["pending_delta_rows"], "0", "overflowed log is dropped");

    // A plain REFRESH silently takes the full-recompute path.
    db.query("REFRESH MATERIALIZED VIEW lazy").run().unwrap();
    assert_view_matches(&db, "lazy", "SELECT id, v FROM t WHERE v >= 0");
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["delta_log_overflow"], "0");
    assert_eq!(info["fallback_refreshes"], "1");
    assert_eq!(info["incremental_refreshes"], "0");
}

#[test]
fn refresh_with_nothing_pending_is_a_noop() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT)").run().unwrap();
    db.query("CREATE MATERIALIZED VIEW lazy AS SELECT id FROM t")
        .run()
        .unwrap();
    db.query("REFRESH MATERIALIZED VIEW lazy").run().unwrap();
    let info = sys_views_row(&db, "lazy");
    assert_eq!(info["incremental_refreshes"], "0");
    assert_eq!(info["fallback_refreshes"], "0");
}

// ---------------------------------------------------------------------------
// DDL guards
// ---------------------------------------------------------------------------

#[test]
fn view_ddl_guards() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1)").run().unwrap();
    db.query("CREATE MATERIALIZED VIEW v AS SELECT id FROM t")
        .run()
        .unwrap();

    // Views are read-only to DML.
    for sql in [
        "INSERT INTO v VALUES (9)",
        "UPDATE v SET id = 9",
        "DELETE FROM v",
    ] {
        let err = db.query(sql).run().unwrap_err().to_string();
        assert!(err.contains("materialized view"), "{sql}: {err}");
    }
    // Wrong DROP flavor in both directions.
    let err = db.query("DROP TABLE v").run().unwrap_err().to_string();
    assert!(err.contains("DROP MATERIALIZED VIEW"), "{err}");
    let err = db
        .query("DROP MATERIALIZED VIEW t")
        .run()
        .unwrap_err()
        .to_string();
    assert!(err.contains("not a materialized view"), "{err}");
    // A base table with dependents cannot be dropped from under them.
    let err = db.query("DROP TABLE t").run().unwrap_err().to_string();
    assert!(err.contains('v'), "{err}");
    // No secondary indexes on views; maintenance writes bypass index hooks.
    let err = db
        .query("CREATE INDEX vi ON v (id)")
        .run()
        .unwrap_err()
        .to_string();
    assert!(err.contains("materialized view"), "{err}");
    // No views over views.
    let err = db
        .query("CREATE MATERIALIZED VIEW vv AS SELECT id FROM v")
        .run()
        .unwrap_err()
        .to_string();
    assert!(err.contains("views over views"), "{err}");

    // DROP MATERIALIZED VIEW releases the name and the dependency.
    db.query("DROP MATERIALIZED VIEW v").run().unwrap();
    db.query("DROP TABLE t").run().unwrap();
}

// ---------------------------------------------------------------------------
// Queries over views: plain planner/executor, visible access path
// ---------------------------------------------------------------------------

#[test]
fn explain_over_view_shows_its_table_scan_access_path() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
    for i in 0..20i64 {
        db.query("INSERT INTO t VALUES (?, ?)")
            .bind(i)
            .bind(i)
            .run()
            .unwrap();
    }
    db.query("CREATE MATERIALIZED VIEW v REFRESH ON COMMIT AS SELECT id, v FROM t WHERE v > 3")
        .run()
        .unwrap();
    // The view is an ordinary table to the planner: EXPLAIN renders a
    // scan of the view's backing table, not of its base tables.
    let tree = db
        .query("SELECT id FROM v WHERE id < 10")
        .explain()
        .unwrap();
    let rendered = tree.render();
    assert!(rendered.contains("Scan v"), "{rendered}");
    assert!(!rendered.contains("Scan t"), "{rendered}");

    // And the typed EXPLAIN statement agrees with the builder.
    let out = db
        .query("EXPLAIN SELECT id FROM v WHERE id < 10")
        .run()
        .unwrap();
    let text: Vec<String> = out.rows.rows().iter().map(|r| r[0].to_string()).collect();
    assert!(
        text.iter().any(|l| l.contains("Scan v")),
        "EXPLAIN output: {text:?}"
    );
}

#[test]
fn views_work_across_all_executors() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (id INT, grp TEXT, v INT)")
        .run()
        .unwrap();
    for i in 0..200i64 {
        db.query("INSERT INTO t VALUES (?, ?, ?)")
            .bind(i)
            .bind(format!("g{}", i % 5))
            .bind(i)
            .run()
            .unwrap();
    }
    db.query(
        "CREATE MATERIALIZED VIEW sums REFRESH ON COMMIT AS \
         SELECT grp, SUM(v) AS s FROM t GROUP BY grp",
    )
    .run()
    .unwrap();
    db.query("DELETE FROM t WHERE id > 150 AND id < 180")
        .run()
        .unwrap();

    let sql = "SELECT grp, s FROM sums ORDER BY grp";
    let streaming = rows_of(&db, sql);
    let parallel = {
        let out = db.query(sql).with_workers(4).run().unwrap();
        let mut rows: Vec<Vec<String>> = out
            .rows
            .rows()
            .iter()
            .map(|r| r.iter().map(render_value).collect())
            .collect();
        rows.sort();
        rows
    };
    let reference = {
        let out = db.query(sql).via_reference().run().unwrap();
        let mut rows: Vec<Vec<String>> = out
            .rows
            .rows()
            .iter()
            .map(|r| r.iter().map(render_value).collect())
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(streaming, parallel);
    assert_eq!(streaming, reference);
}

// ---------------------------------------------------------------------------
// Durability: WAL replay, kill-and-restart, checkpoint images
// ---------------------------------------------------------------------------

#[test]
fn views_rebuild_on_restart() {
    let path = wal_path("views-rebuild");
    let def = "SELECT grp, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY grp";
    {
        let db = Database::open(&path).unwrap();
        db.query("CREATE TABLE t (grp TEXT, v INT)").run().unwrap();
        for i in 0..50i64 {
            db.query("INSERT INTO t VALUES (?, ?)")
                .bind(if i % 2 == 0 { "a" } else { "b" })
                .bind(i)
                .run()
                .unwrap();
        }
        db.query(&format!(
            "CREATE MATERIALIZED VIEW agg REFRESH ON COMMIT AS {def}"
        ))
        .run()
        .unwrap();
        db.query("DELETE FROM t WHERE v > 40").run().unwrap();
        db.query("CREATE MATERIALIZED VIEW doomed AS SELECT grp FROM t")
            .run()
            .unwrap();
        db.query("DROP MATERIALIZED VIEW doomed").run().unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_view_matches(&db, "agg", def);
    let info = sys_views_row(&db, "agg");
    assert_eq!(info["refresh_policy"], "on_commit");
    // Recovery rebuilds contents from scratch — that is a fallback refresh.
    assert_eq!(info["fallback_refreshes"], "1");
    // The dropped view stayed dropped.
    let err = db.query("SELECT * FROM doomed").run().unwrap_err();
    assert!(err.to_string().contains("doomed"), "{err}");
    // And maintenance still runs after recovery.
    db.query("INSERT INTO t VALUES ('a', 1000)").run().unwrap();
    assert_view_matches(&db, "agg", def);
}

#[test]
fn kill_and_restart_leaves_views_consistent_with_recovered_base() {
    // Fsyncs start failing mid-run; whatever prefix of commits survives
    // in the log, the rebuilt view must match a recompute over exactly
    // that recovered base state.
    let def = "SELECT id, v FROM t WHERE v > 10";
    let io = FaultyIo::new(0xB10_F00D, FaultConfig::none());
    {
        let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        db.query("CREATE TABLE t (id INT, v INT)").run().unwrap();
        db.query(&format!(
            "CREATE MATERIALIZED VIEW big REFRESH ON COMMIT AS {def}"
        ))
        .run()
        .unwrap();
        io.set_config(FaultConfig {
            fsync_fail_in: 9,
            ..FaultConfig::none()
        });
        for i in 0..200i64 {
            let res = db
                .query("INSERT INTO t VALUES (?, ?)")
                .bind(i)
                .bind(i)
                .run();
            if res.is_err() {
                break; // the log handle is poisoned; "kill" the process
            }
        }
    }
    io.crash();
    io.set_config(FaultConfig::none());
    let (db, report) = Database::open_with_io(Box::new(io)).unwrap();
    assert!(
        report.replay_errors.is_empty(),
        "{:?}",
        report.replay_errors
    );
    assert_view_matches(&db, "big", def);
}

#[test]
fn checkpoint_image_carries_view_definitions_not_contents() {
    let path = wal_path("views-ckpt");
    let def = "SELECT id FROM t WHERE id > 2";
    {
        let db = Database::open(&path).unwrap();
        db.query("CREATE TABLE t (id INT)").run().unwrap();
        for i in 0..10i64 {
            db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap();
        }
        db.query(&format!(
            "CREATE MATERIALIZED VIEW v REFRESH ON COMMIT AS {def}"
        ))
        .run()
        .unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint mutations land in the fresh log tail.
        db.query("DELETE FROM t WHERE id > 7").run().unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_view_matches(&db, "v", def);
    db.query("INSERT INTO t VALUES (100)").run().unwrap();
    assert_view_matches(&db, "v", def);
}
