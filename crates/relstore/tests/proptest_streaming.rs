//! Streaming-vs-reference executor equivalence.
//!
//! The streaming executor ([`xomatiq_relstore::exec`]) is an optimization,
//! never a semantic change: for any plan the planner can produce, its
//! output must match the retained materializing interpreter
//! ([`xomatiq_relstore::exec_reference`]) row for row, *including order* —
//! same rows, same duplicates, same tie-breaking under Top-K.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use proptest::prelude::*;
use xomatiq_relstore::{Database, Value};

/// One database with two joinable tables, `t` (fact-like) and `u`
/// (dimension-like), optionally indexed so index scans get exercised too.
fn build_db(t_rows: &[(i64, i64, String)], u_rows: &[(i64, String)]) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b INT, s TEXT)").unwrap();
    db.execute("CREATE TABLE u (a INT, name TEXT)").unwrap();
    db.execute("CREATE INDEX idx_t_a ON t (a)").unwrap();
    db.execute("CREATE KEYWORD INDEX kw_t_s ON t (s)").unwrap();
    for (a, b, s) in t_rows {
        // The pool includes strings containing single quotes, so the
        // SQL-literal path ('' escaping) is exercised on every insert.
        let lit = s.replace('\'', "''");
        db.execute(&format!("INSERT INTO t VALUES ({a}, {b}, '{lit}')"))
            .unwrap();
    }
    for (a, name) in u_rows {
        db.execute(&format!("INSERT INTO u VALUES ({a}, '{name}')"))
            .unwrap();
    }
    db
}

fn t_row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        0i64..12,
        0i64..6,
        prop::sample::select(vec![
            "alpha beta".to_string(),
            "beta gamma".to_string(),
            "cdc6 protein".to_string(),
            "plain".to_string(),
            // LIKE metacharacters *in the data*: a literal '%' aligned
            // with a pattern '%' once matched as a literal and broke
            // wildcard resume (see expr::like_match).
            "100% beta".to_string(),
            "%odd beta".to_string(),
            "under_score".to_string(),
            // Single quotes *in the data*: these must survive the ''
            // escape through insert, equality predicates and the plan
            // cache's normalize_sql (which once risked de-syncing on
            // them — see query.rs).
            "o'hara beta".to_string(),
            "5'-utr region".to_string(),
        ]),
    )
}

fn u_row_strategy() -> impl Strategy<Value = (i64, String)> {
    (
        0i64..12,
        prop::sample::select(vec!["x".to_string(), "y".to_string(), "z".to_string()]),
    )
}

/// Both executors, same SQL, same database: identical ordered output.
fn assert_same(db: &Database, sql: &str) -> Result<(), TestCaseError> {
    let streaming = db.execute(sql).unwrap();
    let reference = db.query_reference(sql).unwrap();
    prop_assert_eq!(
        streaming.columns(),
        reference.columns(),
        "columns diverged on {}",
        sql
    );
    prop_assert_eq!(
        streaming.rows(),
        reference.rows(),
        "rows diverged on {}",
        sql
    );
    Ok(())
}

/// Integers clustered where Int↔Float comparison precision matters:
/// the ±2^53 boundary (beyond which f64 cannot represent every i64) and
/// the extremes, mixed with small values so predicates stay selective.
fn big_int_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        (-4i64..=4).prop_map(|d| (1i64 << 53) + d),
        (-4i64..=4).prop_map(|d| -(1i64 << 53) + d),
        Just(i64::MAX),
        Just(i64::MIN),
        any::<i64>(),
        -10i64..10,
    ]
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(48)))]

    #[test]
    fn streaming_matches_reference(
        t_rows in prop::collection::vec(t_row_strategy(), 0..50),
        u_rows in prop::collection::vec(u_row_strategy(), 0..20),
        point in 0i64..12,
        limit in 0u64..15,
        offset in 0u64..8,
    ) {
        let db = build_db(&t_rows, &u_rows);
        let queries = [
            // Plain and filtered scans (index and full).
            "SELECT a, b, s FROM t".to_string(),
            format!("SELECT a, b FROM t WHERE a = {point}"),
            format!("SELECT a, b FROM t WHERE a >= {point} AND b < 4"),
            "SELECT a, b FROM t WHERE CONTAINS(s, 'beta')".to_string(),
            // LIKE over data containing '%'/'_' literals.
            "SELECT a, s FROM t WHERE s LIKE '%beta'".to_string(),
            "SELECT a, s FROM t WHERE s LIKE '100%'".to_string(),
            "SELECT a FROM t WHERE s LIKE '%under_score%'".to_string(),
            "SELECT a, s FROM t WHERE s NOT LIKE '%a%'".to_string(),
            format!("SELECT a FROM t WHERE s LIKE '%beta%' ORDER BY a LIMIT {limit}"),
            // Escaped-quote literal in a predicate: lexer and
            // normalize_sql must agree on where the string ends.
            "SELECT a, b FROM t WHERE s = 'o''hara beta'".to_string(),
            "SELECT a FROM t WHERE s = '5''-utr region' ORDER BY a".to_string(),
            // Projection with expressions.
            "SELECT a + b, s FROM t WHERE b > 1".to_string(),
            // Limit/offset without sort (document order).
            format!("SELECT a, b FROM t LIMIT {limit}"),
            format!("SELECT a, b FROM t LIMIT {limit} OFFSET {offset}"),
            format!("SELECT a FROM t OFFSET {offset}"),
            // Sort, and Sort fused with Limit into Top-K (ties abound:
            // `a` repeats, so stability differences would show here).
            "SELECT a, b FROM t ORDER BY a".to_string(),
            "SELECT b, a FROM t ORDER BY b DESC, a".to_string(),
            format!("SELECT a, b FROM t ORDER BY a LIMIT {limit}"),
            format!("SELECT a, s FROM t ORDER BY a DESC LIMIT {limit} OFFSET {offset}"),
            format!("SELECT a FROM t ORDER BY b LIMIT {limit}"),
            // Distinct (blocks fusion) and distinct + order + limit.
            "SELECT DISTINCT a FROM t".to_string(),
            format!("SELECT DISTINCT a FROM t ORDER BY a LIMIT {limit}"),
            format!("SELECT DISTINCT b FROM t ORDER BY b DESC LIMIT {limit} OFFSET {offset}"),
            // Hash join, semi-join (DISTINCT + existence-only table),
            // and a cross join kept small by filters.
            "SELECT t.a, t.b, u.name FROM t, u WHERE t.a = u.a".to_string(),
            format!("SELECT t.a, u.name FROM t, u WHERE t.a = u.a ORDER BY t.b LIMIT {limit}"),
            "SELECT DISTINCT t.s FROM t, u WHERE t.a = u.a".to_string(),
            format!("SELECT t.a, u.a FROM t, u WHERE t.b < 2 AND u.a = {point}"),
            // Aggregates above a join and above a filter.
            "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a ORDER BY a".to_string(),
            "SELECT COUNT(*), MIN(a), MAX(b), AVG(b) FROM t".to_string(),
            format!("SELECT u.name, COUNT(*) FROM t, u WHERE t.a = u.a GROUP BY u.name ORDER BY u.name LIMIT {limit}"),
        ];
        for sql in &queries {
            assert_same(&db, sql)?;
        }
    }

    #[test]
    fn streaming_matches_reference_on_errors(
        t_rows in prop::collection::vec(t_row_strategy(), 1..20),
    ) {
        // Both executors must also fail identically (e.g. SUM over text).
        let db = build_db(&t_rows, &[]);
        for sql in ["SELECT SUM(s) FROM t", "SELECT a + s FROM t"] {
            let streaming = db.execute(sql);
            let reference = db.query_reference(sql);
            prop_assert_eq!(streaming.is_err(), reference.is_err(), "{}", sql);
        }
    }

    #[test]
    fn big_int_float_comparisons_match_reference(
        vals in prop::collection::vec(big_int_strategy(), 1..40),
    ) {
        // Int↔Float comparisons used to round the integer through f64,
        // collapsing neighbours beyond ±2^53. The scalar path, the
        // vectorized kernels (full scans) and the zone maps (pruned
        // scans) must all perform the exact comparison now — and agree
        // with the reference interpreter on every executor-visible shape.
        let db = Database::in_memory();
        db.execute("CREATE TABLE big (v INT)").unwrap();
        for v in &vals {
            db.query("INSERT INTO big VALUES (?)").bind(*v).run().unwrap();
        }
        // 2^53 = 9007199254740992 is the last exactly-representable
        // neighbourhood; 2^63 rounds to exactly 9223372036854775808.0.
        for sql in [
            "SELECT v FROM big WHERE v > 9007199254740992.0 ORDER BY v",
            "SELECT v FROM big WHERE v = 9007199254740992.0 ORDER BY v",
            "SELECT v FROM big WHERE v < 9007199254740992.0 ORDER BY v",
            "SELECT v FROM big WHERE v >= 9007199254740991.5 ORDER BY v",
            "SELECT v FROM big WHERE v <= -9007199254740991.5 ORDER BY v",
            "SELECT v FROM big WHERE v < 9223372036854775808.0 ORDER BY v",
            "SELECT v FROM big WHERE v >= -9223372036854775808.0 ORDER BY v",
            "SELECT COUNT(*) FROM big WHERE v > 0.5",
        ] {
            assert_same(&db, sql)?;
        }
    }

    #[test]
    fn topk_equals_sort_then_limit_semantics(
        t_rows in prop::collection::vec(t_row_strategy(), 0..50),
        limit in 0u64..12,
        offset in 0u64..6,
    ) {
        // Independent of the reference executor: the fused Top-K must
        // agree with materializing the full sorted output and slicing it.
        let db = build_db(&t_rows, &[]);
        let fused = db
            .execute(&format!("SELECT a, b FROM t ORDER BY a, b DESC LIMIT {limit} OFFSET {offset}"))
            .unwrap();
        let full = db
            .execute("SELECT a, b FROM t ORDER BY a, b DESC")
            .unwrap();
        let expect: Vec<Vec<Value>> = full
            .rows()
            .iter()
            .skip(offset as usize)
            .take(limit as usize)
            .cloned()
            .collect();
        prop_assert_eq!(fused.rows(), &expect[..]);
    }
}
