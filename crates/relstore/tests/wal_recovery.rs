//! Durability tests: committed work survives reopen; uncommitted and torn
//! tails do not; compaction preserves state; concurrent readers see
//! consistent snapshots during writes.

use std::path::PathBuf;
use std::sync::Arc;

use xomatiq_relstore::{Database, Value};

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-db-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn seed(db: &Database) {
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("CREATE INDEX idx_a ON t (a)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
}

#[test]
fn committed_data_survives_reopen() {
    let path = wal_path("reopen");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("UPDATE t SET b = 'TWO' WHERE a = 2").unwrap();
        db.execute("DELETE FROM t WHERE a = 3").unwrap();
    } // drop = process exit
    let db = Database::open(&path).unwrap();
    let rs = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        rs.rows(),
        &[
            vec![Value::Int(1), Value::Text("one".into())],
            vec![Value::Int(2), Value::Text("TWO".into())],
        ]
    );
    // Indexes are rebuilt and used after recovery.
    assert!(db
        .plan("SELECT b FROM t WHERE a = 1")
        .unwrap()
        .plan
        .uses_index());
    let via_index = db.execute("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(via_index.rows()[0][0], Value::Text("one".into()));
}

#[test]
fn ddl_survives_reopen() {
    let path = wal_path("ddl");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("CREATE KEYWORD INDEX kw_b ON t (b)").unwrap();
        db.execute("CREATE TABLE gone (x INT)").unwrap();
        db.execute("DROP TABLE gone").unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(db.table_names(), vec!["t".to_string()]);
    let rs = db
        .execute("SELECT a FROM t WHERE CONTAINS(b, 'two')")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
}

#[test]
fn torn_tail_loses_only_the_last_transaction() {
    let path = wal_path("torn");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("INSERT INTO t VALUES (99, 'late')").unwrap();
    }
    // Corrupt the last few bytes, as if the machine died mid-append.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    let db = Database::open(&path).unwrap();
    // The torn commit record kills transaction 99's insert; earlier commits
    // are intact.
    let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(3));
}

#[test]
fn failed_batch_leaves_no_trace_after_reopen() {
    let path = wal_path("batch");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        let result = db.execute_batch(&[
            "INSERT INTO t VALUES (50, 'fifty')",
            "INSERT INTO missing VALUES (1)",
        ]);
        assert!(result.is_err());
        // Successful batch afterwards.
        db.execute_batch(&["INSERT INTO t VALUES (60, 'sixty')"])
            .unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t WHERE a = 50")
            .unwrap()
            .rows()[0][0],
        Value::Int(0)
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t WHERE a = 60")
            .unwrap()
            .rows()[0][0],
        Value::Int(1)
    );
}

#[test]
fn compaction_preserves_state_and_shrinks_log() {
    let path = wal_path("compact");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        // Churn: many updates that compaction should collapse.
        for i in 0..50 {
            db.execute(&format!("UPDATE t SET b = 'v{i}' WHERE a = 1"))
                .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        db.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(
            after < before,
            "compaction should shrink the log ({before} -> {after})"
        );
    }
    let db = Database::open(&path).unwrap();
    let rs = db.execute("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Text("v49".into()));
    assert_eq!(db.row_count("t").unwrap(), 3);
    // Writes continue to work after compaction + reopen.
    db.execute("INSERT INTO t VALUES (4, 'four')").unwrap();
    assert_eq!(db.row_count("t").unwrap(), 4);
}

#[test]
fn row_ids_do_not_collide_after_recovery() {
    let path = wal_path("rowids");
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.execute("DELETE FROM t WHERE a = 1").unwrap();
    }
    let db = Database::open(&path).unwrap();
    db.execute("INSERT INTO t VALUES (3, 'z')").unwrap();
    let rs = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows().len(), 2);
}

#[test]
fn concurrent_readers_during_writes() {
    let db = Arc::new(Database::in_memory());
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (0, 'seed')").unwrap();

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..50 {
                    db.execute(&format!(
                        "INSERT INTO t VALUES ({}, 'w{w}i{i}')",
                        w * 1000 + i
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let rs = db.execute("SELECT COUNT(*), MIN(a) FROM t").unwrap();
                    // The seed row is always visible; counts only grow.
                    assert_eq!(rs.rows()[0][1], Value::Int(0));
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    assert_eq!(db.row_count("t").unwrap(), 201);
}

#[test]
fn in_memory_mode_has_no_wal_side_effects() {
    let db = Database::in_memory();
    seed(&db);
    db.compact().unwrap(); // no-op, must not fail
    assert_eq!(db.row_count("t").unwrap(), 3);
}
