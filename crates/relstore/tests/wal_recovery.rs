//! Durability tests: committed work survives reopen; uncommitted and torn
//! tails do not; compaction preserves state; concurrent readers see
//! consistent snapshots during writes.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use std::path::PathBuf;
use std::sync::Arc;

use xomatiq_relstore::wal::{Wal, WalRecord};
use xomatiq_relstore::{Database, FaultConfig, FaultyIo, Value};

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-db-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn seed(db: &Database) {
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("CREATE INDEX idx_a ON t (a)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        .unwrap();
}

#[test]
fn committed_data_survives_reopen() {
    let path = wal_path("reopen");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("UPDATE t SET b = 'TWO' WHERE a = 2").unwrap();
        db.execute("DELETE FROM t WHERE a = 3").unwrap();
    } // drop = process exit
    let db = Database::open(&path).unwrap();
    let rs = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        rs.rows(),
        &[
            vec![Value::Int(1), Value::Text("one".into())],
            vec![Value::Int(2), Value::Text("TWO".into())],
        ]
    );
    // Indexes are rebuilt and used after recovery.
    assert!(db
        .plan("SELECT b FROM t WHERE a = 1")
        .unwrap()
        .plan
        .uses_index());
    let via_index = db.execute("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(via_index.rows()[0][0], Value::Text("one".into()));
}

#[test]
fn ddl_survives_reopen() {
    let path = wal_path("ddl");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("CREATE KEYWORD INDEX kw_b ON t (b)").unwrap();
        db.execute("CREATE TABLE gone (x INT)").unwrap();
        db.execute("DROP TABLE gone").unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(db.table_names(), vec!["t".to_string()]);
    let rs = db
        .execute("SELECT a FROM t WHERE CONTAINS(b, 'two')")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
}

#[test]
fn torn_tail_loses_only_the_last_transaction() {
    let path = wal_path("torn");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("INSERT INTO t VALUES (99, 'late')").unwrap();
    }
    // Corrupt the last few bytes, as if the machine died mid-append.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    let db = Database::open(&path).unwrap();
    // The torn commit record kills transaction 99's insert; earlier commits
    // are intact.
    let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(3));
}

#[test]
fn failed_batch_leaves_no_trace_after_reopen() {
    let path = wal_path("batch");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        let result = db.execute_batch(&[
            "INSERT INTO t VALUES (50, 'fifty')",
            "INSERT INTO missing VALUES (1)",
        ]);
        assert!(result.is_err());
        // Successful batch afterwards.
        db.execute_batch(&["INSERT INTO t VALUES (60, 'sixty')"])
            .unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t WHERE a = 50")
            .unwrap()
            .rows()[0][0],
        Value::Int(0)
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t WHERE a = 60")
            .unwrap()
            .rows()[0][0],
        Value::Int(1)
    );
}

#[test]
fn compaction_preserves_state_and_shrinks_log() {
    let path = wal_path("compact");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        // Churn: many updates that compaction should collapse.
        for i in 0..50 {
            db.execute(&format!("UPDATE t SET b = 'v{i}' WHERE a = 1"))
                .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        db.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(
            after < before,
            "compaction should shrink the log ({before} -> {after})"
        );
    }
    let db = Database::open(&path).unwrap();
    let rs = db.execute("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Text("v49".into()));
    assert_eq!(db.row_count("t").unwrap(), 3);
    // Writes continue to work after compaction + reopen.
    db.execute("INSERT INTO t VALUES (4, 'four')").unwrap();
    assert_eq!(db.row_count("t").unwrap(), 4);
}

#[test]
fn row_ids_do_not_collide_after_recovery() {
    let path = wal_path("rowids");
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        db.execute("DELETE FROM t WHERE a = 1").unwrap();
    }
    let db = Database::open(&path).unwrap();
    db.execute("INSERT INTO t VALUES (3, 'z')").unwrap();
    let rs = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows().len(), 2);
}

#[test]
fn concurrent_readers_during_writes() {
    let db = Arc::new(Database::in_memory());
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (0, 'seed')").unwrap();

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..50 {
                    db.execute(&format!(
                        "INSERT INTO t VALUES ({}, 'w{w}i{i}')",
                        w * 1000 + i
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let rs = db.execute("SELECT COUNT(*), MIN(a) FROM t").unwrap();
                    // The seed row is always visible; counts only grow.
                    assert_eq!(rs.rows()[0][1], Value::Int(0));
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }
    assert_eq!(db.row_count("t").unwrap(), 201);
}

#[test]
fn in_memory_mode_has_no_wal_side_effects() {
    let db = Database::in_memory();
    seed(&db);
    db.compact().unwrap(); // no-op, must not fail
    assert_eq!(db.row_count("t").unwrap(), 3);
}

/// Hand-writes a log with two interleaved transactions where only one
/// commits: replay must apply exactly the committed one. (The live engine
/// never interleaves — `commit_tx` writes Begin..Commit under one lock —
/// but recovery has to be correct for any log an older writer, a partial
/// copy, or a future concurrent writer could leave behind.)
#[test]
fn interleaved_transactions_replay_only_the_committed_one() {
    use xomatiq_relstore::table::RowId;
    use xomatiq_relstore::{Column, DataType, TableSchema};

    let path = wal_path("interleaved");
    let mut wal = Wal::open(&path).unwrap();
    let schema = TableSchema::new(
        "t",
        vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Text),
        ],
    );
    let ins = |tx: u64, id: u64, a: i64, b: &str| WalRecord::Insert {
        tx,
        table: "t".into(),
        row_id: RowId(id),
        row: vec![Value::Int(a), Value::Text(b.into())],
    };
    wal.append(&WalRecord::CreateTable { schema });
    wal.append(&WalRecord::Begin { tx: 1 });
    wal.append(&WalRecord::Begin { tx: 2 });
    wal.append(&ins(1, 0, 10, "uncommitted"));
    wal.append(&ins(2, 1, 20, "committed"));
    wal.append(&ins(1, 2, 11, "uncommitted"));
    wal.append(&ins(2, 3, 21, "committed"));
    wal.append(&WalRecord::Commit { tx: 2 });
    // tx 1 never commits: crash before its Commit record.
    wal.sync().unwrap();
    drop(wal);

    let (db, report) = Database::open_with_report(&path).unwrap();
    let rs = db.execute("SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        rs.rows(),
        &[
            vec![Value::Int(20), Value::Text("committed".into())],
            vec![Value::Int(21), Value::Text("committed".into())],
        ]
    );
    assert_eq!(report.transactions_applied, 1);
    assert_eq!(report.transactions_dropped, vec![1]);
}

/// Two interleaved transactions touching the same row: replay applies
/// each transaction's operations at its *Commit* record, so the later
/// commit wins regardless of the order the operations were appended.
#[test]
fn interleaved_commits_apply_in_commit_order() {
    use xomatiq_relstore::table::RowId;
    use xomatiq_relstore::{Column, DataType, TableSchema};

    let path = wal_path("commit-order");
    let mut wal = Wal::open(&path).unwrap();
    let schema = TableSchema::new(
        "t",
        vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Text),
        ],
    );
    wal.append(&WalRecord::CreateTable { schema });
    // Snapshot-style seed row (no Begin: applied directly).
    wal.append(&WalRecord::Insert {
        tx: 0,
        table: "t".into(),
        row_id: RowId(0),
        row: vec![Value::Int(1), Value::Text("seed".into())],
    });
    let upd = |tx: u64, b: &str| WalRecord::Update {
        tx,
        table: "t".into(),
        row_id: RowId(0),
        row: vec![Value::Int(1), Value::Text(b.into())],
    };
    wal.append(&WalRecord::Begin { tx: 1 });
    wal.append(&WalRecord::Begin { tx: 2 });
    // Appended tx1-first, but tx2 commits first: commit order must rule.
    wal.append(&upd(1, "second commit"));
    wal.append(&upd(2, "first commit"));
    wal.append(&WalRecord::Commit { tx: 2 });
    wal.append(&WalRecord::Commit { tx: 1 });
    wal.sync().unwrap();
    drop(wal);

    let (db, report) = Database::open_with_report(&path).unwrap();
    let rs = db.execute("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Text("second commit".into()));
    assert_eq!(report.transactions_applied, 2);
    assert!(report.transactions_dropped.is_empty());
}

#[test]
fn mid_log_corruption_recovers_the_prefix_and_reports_it() {
    let path = wal_path("midlog");
    {
        let db = Database::open(&path).unwrap();
        seed(&db);
        db.execute("INSERT INTO t VALUES (4, 'four')").unwrap();
        db.execute("INSERT INTO t VALUES (5, 'five')").unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    // Flip a byte 60% of the way in: inside the tail transactions but
    // well past the schema and first inserts.
    let mut corrupted = bytes.clone();
    let at = bytes.len() * 6 / 10;
    corrupted[at] ^= 0x40;
    std::fs::write(&path, &corrupted).unwrap();

    let (db, report) = Database::open_with_report(&path).unwrap();
    let report_corruption = report.corruption.expect("corruption reported");
    assert!(report_corruption.offset <= at as u64);
    assert!(report.truncated_bytes > 0);
    // The surviving rows are a prefix of the committed history.
    let n = db.execute("SELECT COUNT(*) FROM t").unwrap().rows()[0][0]
        .as_int()
        .unwrap();
    assert!((0..=5).contains(&n), "unexpected row count {n}");
    // The database stays writable, and the repair is durable: reopening
    // again reports a clean log.
    db.execute("INSERT INTO t VALUES (100, 'after')").unwrap();
    drop(db);
    let (_, second) = Database::open_with_report(&path).unwrap();
    assert!(second.corruption.is_none());
}

#[test]
fn fsync_failure_poisons_the_database_until_reopen() {
    let io = FaultyIo::new(11, FaultConfig::none());
    let (db, report) = Database::open_with_io(Box::new(io.clone())).unwrap();
    assert!(report.is_clean());
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'acked')").unwrap();

    io.set_config(FaultConfig {
        fsync_fail_in: 1,
        ..FaultConfig::none()
    });
    let err = db
        .execute("INSERT INTO t VALUES (2, 'lost')")
        .expect_err("fsync failure must surface");
    assert!(err.to_string().contains("poisoned"), "{err}");
    // The failed insert is also rolled back in memory: memory and log
    // agree on what exists.
    assert_eq!(db.row_count("t").unwrap(), 1);
    // Fail-fast from now on, even though the disk recovered.
    io.set_config(FaultConfig::none());
    assert!(db
        .execute("INSERT INTO t VALUES (3, 'still-poisoned')")
        .is_err());
    // Reads are unaffected.
    assert_eq!(
        db.execute("SELECT b FROM t").unwrap().rows()[0][0],
        Value::Text("acked".into())
    );

    // Crash + reopen over the same disk: exactly the acked row survives.
    io.crash();
    let (db2, report2) = Database::open_with_io(Box::new(io)).unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 1);
    // Recovery repaired whatever partial bytes the failed fsync left.
    db2.execute("INSERT INTO t VALUES (4, 'fresh')").unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 2);
    let _ = report2;
}

#[test]
fn compaction_works_over_a_custom_io_backend() {
    let io = FaultyIo::new(5, FaultConfig::none());
    let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
    seed(&db);
    for i in 0..20 {
        db.execute(&format!("UPDATE t SET b = 'v{i}' WHERE a = 1"))
            .unwrap();
    }
    let before = io.len();
    db.compact().unwrap();
    assert!(io.len() < before, "compaction should shrink the log");
    drop(db);
    let (db2, report) = Database::open_with_io(Box::new(io)).unwrap();
    assert!(report.is_clean());
    assert_eq!(
        db2.execute("SELECT b FROM t WHERE a = 1").unwrap().rows()[0][0],
        Value::Text("v19".into())
    );
    assert_eq!(db2.row_count("t").unwrap(), 3);
}
