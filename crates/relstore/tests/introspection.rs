//! The observability surface as seen from SQL: system virtual tables,
//! the flight recorder, request tracing, and the read-only contract.
//!
//! Everything here goes through `db.query(...)` on purpose — the whole
//! point of `sys_*` tables is that the engine's own telemetry answers to
//! the same planner, executor, filters and joins as user data.

use std::sync::Arc;

use xomatiq_obs::trace::{self, TraceCtx};
use xomatiq_obs::MemoryTraceSink;
use xomatiq_relstore::vtab::trace_id_text;
use xomatiq_relstore::{
    Column, DataType, Database, DatabaseOptions, Session, TableSchema, Value, VirtualTableProvider,
};

/// A database whose flight recorder flags everything as slow, so the
/// profile-capture path runs on every statement.
fn recording_db() -> Database {
    let db = Database::in_memory_with_options(DatabaseOptions {
        slow_query_ns: 0,
        ..DatabaseOptions::default()
    });
    db.query("CREATE TABLE t (a INT, s TEXT)").run().unwrap();
    for i in 0..20i64 {
        db.query("INSERT INTO t VALUES (?, ?)")
            .bind(i)
            .bind(format!("row{i}"))
            .run()
            .unwrap();
    }
    db
}

fn int_at(out: &xomatiq_relstore::QueryOutcome, row: usize, col: usize) -> i64 {
    match &out.rows.rows()[row][col] {
        Value::Int(v) => *v,
        other => panic!("expected Int, got {other:?}"),
    }
}

#[test]
fn sys_metrics_answers_to_like_filters() {
    let db = recording_db();
    db.query("SELECT COUNT(*) FROM t").run().unwrap();
    let out = db
        .query("SELECT name, item, value FROM sys_metrics WHERE name LIKE 'relstore.%'")
        .run()
        .unwrap();
    assert!(
        !out.rows.rows().is_empty(),
        "engine metrics should be visible through sys_metrics"
    );
    // Histograms fan out into count/sum/quantile/bucket item rows.
    let out = db
        .query("SELECT item FROM sys_metrics WHERE kind = 'histogram' AND item = 'count'")
        .run()
        .unwrap();
    assert!(!out.rows.rows().is_empty());
}

#[test]
fn sys_queries_remembers_statements_and_profiles_join() {
    let db = recording_db();
    db.query("SELECT COUNT(*) FROM t WHERE a < 10")
        .run()
        .unwrap();
    // Everything is "slow" at threshold 0, so the scan above carries a
    // per-operator profile reachable by joining the two system tables.
    let out = db
        .query(
            "SELECT q.query_id, p.op, p.rows_out FROM sys_queries q \
             JOIN sys_profiles p ON q.query_id = p.query_id \
             WHERE q.slow = 1 ORDER BY p.total_ns DESC",
        )
        .run()
        .unwrap();
    assert!(
        !out.rows.rows().is_empty(),
        "slow queries must expose their operator profile via sys_profiles"
    );
    // The recorder remembers the normalized SQL of past statements.
    let out = db
        .query("SELECT COUNT(*) FROM sys_queries WHERE sql LIKE '%count(*) from t%'")
        .run()
        .unwrap();
    assert!(int_at(&out, 0, 0) >= 1);
}

#[test]
fn sys_queries_reports_plan_cache_outcomes() {
    let db = recording_db();
    db.query("SELECT a FROM t WHERE a = 7").run().unwrap();
    db.query("SELECT a FROM t WHERE a = 7").run().unwrap();
    let out = db
        .query(
            "SELECT cache_hit, COUNT(*) FROM sys_queries \
             WHERE sql = 'select a from t where a = 7' GROUP BY cache_hit ORDER BY cache_hit",
        )
        .run()
        .unwrap();
    let rows = out.rows.rows();
    assert_eq!(rows.len(), 2, "one miss then one hit, got {rows:?}");
    assert_eq!(rows[0][0], Value::Int(0));
    assert_eq!(rows[1][0], Value::Int(1));
}

#[test]
fn system_statements_bypass_the_plan_cache() {
    let db = recording_db();
    // If this plan were cached, the second run would execute against the
    // first run's materialized overlay — and could not see the record the
    // first run itself deposited.
    let first = db.query("SELECT COUNT(*) FROM sys_queries").run().unwrap();
    let second = db.query("SELECT COUNT(*) FROM sys_queries").run().unwrap();
    assert!(
        int_at(&second, 0, 0) > int_at(&first, 0, 0),
        "each sys_queries scan must see a fresh recorder snapshot"
    );
    // And no sys_ statement ever reports a plan-cache hit.
    let out = db
        .query("SELECT COUNT(*) FROM sys_queries WHERE sql LIKE '%sys_%' AND cache_hit = 1")
        .run()
        .unwrap();
    assert_eq!(int_at(&out, 0, 0), 0);
}

#[test]
fn system_tables_are_read_only() {
    let db = recording_db();
    for sql in [
        "INSERT INTO sys_queries VALUES (1)",
        "DELETE FROM sys_metrics",
        "UPDATE sys_sessions SET queries = 0",
        "DROP TABLE sys_metrics",
        "CREATE TABLE sys_mine (a INT)",
        "CREATE INDEX idx ON sys_queries (query_id)",
    ] {
        let err = db.query(sql).run().unwrap_err();
        assert_eq!(err.code(), "read_only", "{sql} should be rejected");
    }
}

#[test]
fn sys_segments_joins_against_user_tables() {
    let db = recording_db();
    let out = db
        .query(
            "SELECT segment_id, column_name, rows, min_value, max_value FROM sys_segments \
             WHERE table_name = 't' AND column_name = 'a'",
        )
        .run()
        .unwrap();
    assert!(!out.rows.rows().is_empty());
    // Zone-map bounds for the Int column cover the inserted range.
    for row in out.rows.rows() {
        assert_eq!(row[1], Value::Text("a".into()));
    }
    // A user-table join: which segments hold the row with a = 0?
    let out = db
        .query(
            "SELECT COUNT(*) FROM sys_segments s JOIN t ON s.table_name = 't' \
             WHERE t.a = 0 AND s.column_name = 'a'",
        )
        .run()
        .unwrap();
    assert!(int_at(&out, 0, 0) >= 1);
}

#[test]
fn sys_sessions_tracks_live_sessions() {
    let db = Arc::new(recording_db());
    let mut session = Session::new(Arc::clone(&db));
    session.set_workers(Some(3));
    session.prepare("SELECT a FROM t WHERE a = ?").unwrap();
    session.run_sql("SELECT COUNT(*) FROM t", vec![]).unwrap();
    let id = i64::try_from(session.id()).unwrap();
    let out = db
        .query("SELECT workers, prepared, queries FROM sys_sessions WHERE session_id = ?")
        .bind(id)
        .run()
        .unwrap();
    let rows = out.rows.rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(3));
    assert_eq!(rows[0][1], Value::Int(1));
    assert_eq!(rows[0][2], Value::Int(1));
    drop(session);
    let out = db
        .query("SELECT COUNT(*) FROM sys_sessions WHERE session_id = ?")
        .bind(id)
        .run()
        .unwrap();
    assert_eq!(int_at(&out, 0, 0), 0, "dropped sessions disappear");
}

#[test]
fn a_supplied_trace_id_lands_in_sys_queries_and_the_trace_tree() {
    let db = recording_db();
    let sink = Arc::new(MemoryTraceSink::new());
    trace::set_trace_sink(Some(sink.clone()));
    let trace_id = 0xabcd_1234_u64;
    {
        let _scope = trace::scope(TraceCtx::with_trace_id(trace_id));
        db.query("SELECT COUNT(*) FROM t WHERE a < 5")
            .run()
            .unwrap();
    }
    trace::set_trace_sink(None);
    // Every span of the statement carries the supplied trace id…
    let spans = sink.trace(trace_id);
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"relstore.query"), "spans: {names:?}");
    assert!(names.contains(&"relstore.query.parse"), "spans: {names:?}");
    assert!(
        names.contains(&"relstore.query.plan"),
        "plan span missing: {names:?}"
    );
    assert!(
        names.contains(&"relstore.query.exec"),
        "exec span missing: {names:?}"
    );
    // …including the per-operator spans mirrored from the slow profile.
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("Scan") || n.starts_with("Agg")),
        "operator spans missing: {names:?}"
    );
    // …and sys_queries reports the same id as 16-digit hex text.
    let out = db
        .query("SELECT COUNT(*) FROM sys_queries WHERE trace_id = ?")
        .bind(trace_id_text(trace_id))
        .run()
        .unwrap();
    assert_eq!(int_at(&out, 0, 0), 1);
}

struct Answers;

impl VirtualTableProvider for Answers {
    fn name(&self) -> &str {
        "sys_answers"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new("sys_answers", vec![Column::new("n", DataType::Int)])
    }

    fn rows(&self, _db: &Database) -> Vec<Vec<Value>> {
        vec![vec![Value::Int(42)]]
    }
}

struct BadName;

impl VirtualTableProvider for BadName {
    fn name(&self) -> &str {
        "answers"
    }

    fn schema(&self) -> TableSchema {
        TableSchema::new("answers", vec![Column::new("n", DataType::Int)])
    }

    fn rows(&self, _db: &Database) -> Vec<Vec<Value>> {
        Vec::new()
    }
}

#[test]
fn custom_providers_register_under_the_sys_prefix_only() {
    let db = recording_db();
    db.register_virtual_table(Box::new(Answers)).unwrap();
    let out = db.query("SELECT n FROM sys_answers").run().unwrap();
    assert_eq!(out.rows.rows(), &[vec![Value::Int(42)]]);
    assert!(db.register_virtual_table(Box::new(BadName)).is_err());
}

#[test]
fn disabled_recorder_keeps_sys_queries_empty() {
    let db = Database::in_memory_with_options(DatabaseOptions {
        flight_recorder_capacity: 0,
        ..DatabaseOptions::default()
    });
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    db.query("SELECT COUNT(*) FROM t").run().unwrap();
    let out = db.query("SELECT COUNT(*) FROM sys_queries").run().unwrap();
    assert_eq!(int_at(&out, 0, 0), 0);
}
