//! Morsel-parallel execution and the prepared-statement plan cache.
//!
//! The parallel executor is an optimization, never a semantic change: the
//! differential property test below requires the morsel-parallel, streaming
//! and reference executors to agree row for row — same rows, same order,
//! same duplicates — at 1, 2 and 4 workers, with a tiny morsel size so
//! multi-morsel paths get exercised even on small generated tables. The
//! plan cache likewise must be observable only as speed: hits return the
//! identical `Arc`'d plan, DDL invalidates it, the LRU bound evicts, and
//! bad parameter bindings fail with typed `bind` errors before execution.

use std::sync::Arc;

use proptest::prelude::*;
use xomatiq_relstore::{Database, DatabaseOptions, RelError};

/// A database whose parallel executor kicks in aggressively: 4 workers and
/// 8-row morsels, so even ~50-row proptest tables span several morsels.
fn parallel_options() -> DatabaseOptions {
    DatabaseOptions {
        workers: 4,
        morsel_size: 8,
        ..DatabaseOptions::default()
    }
}

fn build_db(t_rows: &[(i64, i64, String)], u_rows: &[(i64, String)]) -> Database {
    let db = Database::in_memory_with_options(parallel_options());
    db.query("CREATE TABLE t (a INT, b INT, s TEXT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE u (a INT, name TEXT)").run().unwrap();
    db.query("CREATE INDEX idx_t_a ON t (a)").run().unwrap();
    db.query("CREATE KEYWORD INDEX kw_t_s ON t (s)")
        .run()
        .unwrap();
    let insert_t = db.prepare("INSERT INTO t VALUES (?, ?, ?)").unwrap();
    for (a, b, s) in t_rows {
        db.query_prepared(&insert_t)
            .bind(*a)
            .bind(*b)
            .bind(s.as_str())
            .run()
            .unwrap();
    }
    let insert_u = db.prepare("INSERT INTO u VALUES (?, ?)").unwrap();
    for (a, name) in u_rows {
        db.query_prepared(&insert_u)
            .bind(*a)
            .bind(name.as_str())
            .run()
            .unwrap();
    }
    db
}

fn t_row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        0i64..12,
        0i64..6,
        prop::sample::select(vec![
            "alpha beta".to_string(),
            "beta gamma".to_string(),
            "cdc6 protein".to_string(),
            "plain".to_string(),
            "100% beta".to_string(),
            // Quote-bearing data: exercises '' escapes in literals the
            // queries below compare against.
            "o'hara beta".to_string(),
            "5'-utr region".to_string(),
        ]),
    )
}

fn u_row_strategy() -> impl Strategy<Value = (i64, String)> {
    (
        0i64..12,
        prop::sample::select(vec!["x".to_string(), "y".to_string(), "z".to_string()]),
    )
}

/// Same SQL at 1, 2 and 4 workers plus the reference interpreter:
/// identical ordered output everywhere.
fn assert_all_agree(db: &Database, sql: &str) -> Result<(), TestCaseError> {
    let sequential = db.query(sql).with_workers(1).run().unwrap().rows;
    for workers in [2usize, 4] {
        let parallel = db.query(sql).with_workers(workers).run().unwrap().rows;
        prop_assert_eq!(
            sequential.columns(),
            parallel.columns(),
            "columns diverged at {} workers on {}",
            workers,
            sql
        );
        prop_assert_eq!(
            sequential.rows(),
            parallel.rows(),
            "rows diverged at {} workers on {}",
            workers,
            sql
        );
    }
    let reference = db.query(sql).via_reference().run().unwrap().rows;
    prop_assert_eq!(
        sequential.rows(),
        reference.rows(),
        "reference diverged on {}",
        sql
    );
    Ok(())
}

/// Integers clustered around the ±2^53 exactness boundary plus extremes.
fn big_int_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        (-4i64..=4).prop_map(|d| (1i64 << 53) + d),
        (-4i64..=4).prop_map(|d| -(1i64 << 53) + d),
        Just(i64::MAX),
        Just(i64::MIN),
        any::<i64>(),
        -10i64..10,
    ]
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(32)))]

    #[test]
    fn parallel_matches_streaming_and_reference(
        t_rows in prop::collection::vec(t_row_strategy(), 0..60),
        u_rows in prop::collection::vec(u_row_strategy(), 0..20),
        point in 0i64..12,
        limit in 0u64..15,
    ) {
        let db = build_db(&t_rows, &u_rows);
        let queries = [
            // Parallel-eligible shapes: scan, filter chains, projection.
            "SELECT a, b, s FROM t".to_string(),
            format!("SELECT a, b FROM t WHERE a = {point}"),
            format!("SELECT a + b, s FROM t WHERE a >= {point} AND b < 4"),
            "SELECT a FROM t WHERE CONTAINS(s, 'beta')".to_string(),
            "SELECT DISTINCT b FROM t".to_string(),
            // Escaped-quote literal predicates through the parallel path.
            "SELECT a, b FROM t WHERE s = 'o''hara beta'".to_string(),
            "SELECT a FROM t WHERE s = '5''-utr region'".to_string(),
            // Parallel hash join (build side u, probe side t) + residual.
            "SELECT t.a, t.b, u.name FROM t, u WHERE t.a = u.a".to_string(),
            "SELECT DISTINCT t.s FROM t, u WHERE t.a = u.a".to_string(),
            "SELECT t.a, u.name FROM t, u WHERE t.a = u.a AND t.b > 2".to_string(),
            // Partial-aggregate trees, grouped and global.
            "SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a ORDER BY a".to_string(),
            "SELECT COUNT(*), MIN(a), MAX(b), AVG(b) FROM t".to_string(),
            // Order-requiring plans: the planner must fall back to the
            // sequential executor and still agree everywhere.
            format!("SELECT a, b FROM t ORDER BY b DESC, a LIMIT {limit}"),
            format!("SELECT a, b FROM t LIMIT {limit}"),
            format!("SELECT u.name, COUNT(*) FROM t, u WHERE t.a = u.a GROUP BY u.name ORDER BY u.name LIMIT {limit}"),
        ];
        for sql in &queries {
            assert_all_agree(&db, sql)?;
        }
    }

    #[test]
    fn big_int_float_compare_agrees_at_every_worker_count(
        vals in prop::collection::vec(big_int_strategy(), 1..50),
    ) {
        // The ±2^53 fix must hold identically on the morsel-parallel
        // executor (which runs the vectorized segment kernels) as on the
        // streaming and reference paths.
        let db = Database::in_memory_with_options(parallel_options());
        db.query("CREATE TABLE big (v INT)").run().unwrap();
        let insert = db.prepare("INSERT INTO big VALUES (?)").unwrap();
        for v in &vals {
            db.query_prepared(&insert).bind(*v).run().unwrap();
        }
        for sql in [
            "SELECT v FROM big WHERE v > 9007199254740992.0",
            "SELECT v FROM big WHERE v = 9007199254740992.0",
            "SELECT v FROM big WHERE v <= -9007199254740991.5",
            "SELECT COUNT(*) FROM big WHERE v < 9223372036854775808.0",
        ] {
            assert_all_agree(&db, sql)?;
        }
    }

    #[test]
    fn parallel_matches_on_errors(
        t_rows in prop::collection::vec(t_row_strategy(), 1..30),
    ) {
        // Runtime errors (e.g. SUM over text) must surface identically —
        // and deterministically — no matter how many workers raced.
        let db = build_db(&t_rows, &[]);
        for sql in ["SELECT SUM(s) FROM t", "SELECT a + s FROM t"] {
            let sequential = db.query(sql).with_workers(1).run();
            let parallel = db.query(sql).with_workers(4).run();
            prop_assert_eq!(sequential.is_err(), parallel.is_err(), "{}", sql);
            if let (Err(s), Err(p)) = (sequential, parallel) {
                prop_assert_eq!(s.to_string(), p.to_string(), "{}", sql);
            }
        }
    }
}

#[test]
fn explain_reports_parallelism() {
    let db = Database::in_memory_with_options(parallel_options());
    db.query("CREATE TABLE t (a INT, b INT)").run().unwrap();
    let explain = |sql: &str| db.query(sql).explain().unwrap().render();
    // Scan/filter/aggregate shapes fan out across the configured workers.
    let plan = explain("SELECT a FROM t WHERE b > 0");
    assert!(plan.contains("parallel=4"), "{plan}");
    let agg = explain("SELECT b, COUNT(*) FROM t GROUP BY b");
    assert!(agg.contains("parallel=4"), "{agg}");
    // Order-contract shapes must advertise the sequential fallback.
    let sorted = explain("SELECT a FROM t ORDER BY a");
    assert!(sorted.contains("parallel=1"), "{sorted}");
    let limited = explain("SELECT a FROM t LIMIT 3");
    assert!(limited.contains("parallel=1"), "{limited}");
    // The typed tree carries the worker count directly, too.
    let tree = db.query("SELECT a FROM t WHERE b > 0").explain().unwrap();
    assert_eq!(tree.workers, 4);
}

#[test]
fn parallel_execution_counts_workers() {
    let db = Database::in_memory_with_options(parallel_options());
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    let stmts: Vec<String> = (0..100)
        .map(|i| format!("INSERT INTO t VALUES ({i})"))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    let before = xomatiq_obs::global()
        .counter("relstore.exec.parallel_workers")
        .value();
    let out = db.query("SELECT COUNT(*) FROM t").run().unwrap();
    assert_eq!(out.rows.rows(), &[vec![xomatiq_relstore::Value::Int(100)]]);
    let after = xomatiq_obs::global()
        .counter("relstore.exec.parallel_workers")
        .value();
    // The registry is process-global, so concurrent tests may add more —
    // but at least this query's 4 workers must have been recorded.
    assert!(after >= before + 4, "before {before}, after {after}");
}

#[test]
fn plan_cache_hit_returns_same_plan() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT, b INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1, 2)").run().unwrap();
    let sql = "SELECT a FROM t WHERE b = 2";
    let first = db.query(sql).planned().unwrap();
    let second = db.query(sql).planned().unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "second lookup must hit the cache"
    );
    // Normalization folds case and whitespace into the same entry.
    let renormalized = db
        .query("select  a  FROM t\n WHERE b = 2")
        .planned()
        .unwrap();
    assert!(Arc::ptr_eq(&first, &renormalized));
    // Different bound values are distinct entries (the literal is planned).
    let hit = db.query("SELECT a FROM t WHERE b = ?").bind(2i64);
    let other = db.query("SELECT a FROM t WHERE b = ?").bind(3i64);
    assert!(!Arc::ptr_eq(
        &hit.planned().unwrap(),
        &other.planned().unwrap()
    ));
}

/// End-to-end regression for the quote-escape cache-key fix: queries that
/// differ only *inside* a `''`-escaped literal must not share a cached
/// plan, while case/whitespace differences *outside* literals still must.
#[test]
fn plan_cache_distinguishes_escaped_literals() {
    let db = Database::in_memory();
    db.query("CREATE TABLE people (s TEXT)").run().unwrap();
    let insert = db.prepare("INSERT INTO people VALUES (?)").unwrap();
    for name in ["O'Hara", "O'hara"] {
        db.query_prepared(&insert).bind(name).run().unwrap();
    }

    let upper = db
        .query("SELECT s FROM people WHERE s = 'O''Hara'")
        .planned()
        .unwrap();
    let lower = db
        .query("select s from people where s = 'O''hara'")
        .planned()
        .unwrap();
    assert!(
        !Arc::ptr_eq(&upper, &lower),
        "different literals must not share a plan-cache entry"
    );
    // And each query returns its own row, never the other literal's.
    let got = |sql: &str| -> Vec<String> {
        db.query(sql)
            .run()
            .unwrap()
            .rows
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect()
    };
    assert_eq!(got("SELECT s FROM people WHERE s = 'O''Hara'"), ["O'Hara"]);
    assert_eq!(got("select s from people where s = 'O''hara'"), ["O'hara"]);

    // Equal modulo case/whitespace outside the literal: one entry.
    let renorm = db
        .query("select  S  from PEOPLE\nwhere s = 'O''Hara'")
        .planned()
        .unwrap();
    assert!(
        Arc::ptr_eq(&upper, &renorm),
        "case/whitespace outside literals must still normalize together"
    );
}

#[test]
fn ddl_invalidates_plan_cache() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT, b INT)").run().unwrap();
    let sql = "SELECT a FROM t WHERE a = 5";
    let cold = db.query(sql).planned().unwrap();
    assert!(!cold.plan.uses_index());
    // CREATE INDEX must clear the cache: a stale cached plan would keep
    // full-scanning forever.
    db.query("CREATE INDEX idx_t_a ON t (a)").run().unwrap();
    let fresh = db.query(sql).planned().unwrap();
    assert!(!Arc::ptr_eq(&cold, &fresh), "DDL must invalidate the cache");
    assert!(
        fresh.plan.uses_index(),
        "replanned query must use the index"
    );
}

#[test]
fn plan_cache_evicts_lru_and_respects_capacity() {
    let db = Database::in_memory_with_options(DatabaseOptions {
        plan_cache_capacity: 2,
        ..DatabaseOptions::default()
    });
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    let q1 = "SELECT a FROM t WHERE a = 1";
    let q2 = "SELECT a FROM t WHERE a = 2";
    let q3 = "SELECT a FROM t WHERE a = 3";
    let p1 = db.query(q1).planned().unwrap();
    db.query(q2).planned().unwrap();
    // Touch q1 so q2 becomes the least recently used entry...
    assert!(Arc::ptr_eq(&p1, &db.query(q1).planned().unwrap()));
    // ...then overflow the 2-entry cache: q2 is evicted, q1 survives.
    db.query(q3).planned().unwrap();
    assert!(Arc::ptr_eq(&p1, &db.query(q1).planned().unwrap()));

    // Capacity 0 disables caching entirely.
    let off = Database::in_memory_with_options(DatabaseOptions {
        plan_cache_capacity: 0,
        ..DatabaseOptions::default()
    });
    off.query("CREATE TABLE t (a INT)").run().unwrap();
    let a = off.query(q1).planned().unwrap();
    let b = off.query(q1).planned().unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
}

#[test]
fn prepared_binds_are_typed() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT, s TEXT)").run().unwrap();
    db.query("INSERT INTO t VALUES (7, 'seven')").run().unwrap();

    let select = db.prepare("SELECT s FROM t WHERE a = ? AND s = ?").unwrap();
    assert_eq!(select.param_count(), 2);

    // Happy path: text that coerces to INT is accepted for an INT column.
    let out = db
        .query_prepared(&select)
        .bind(" 7 ")
        .bind("seven")
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 1);

    // Uncoercible bind for an INT-typed parameter fails before execution.
    let err = db
        .query_prepared(&select)
        .bind("not-a-number")
        .bind("seven")
        .run()
        .unwrap_err();
    assert_eq!(err.code(), "bind", "{err}");

    // Arity is checked both ways.
    let err = db.query_prepared(&select).bind(7i64).run().unwrap_err();
    assert!(matches!(err, RelError::Bind(_)), "{err}");
    assert!(err.to_string().contains("2 parameter(s), 1 bound"), "{err}");
    let err = db
        .query_prepared(&select)
        .bind(7i64)
        .bind("seven")
        .bind(0i64)
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("2 parameter(s), 3 bound"), "{err}");
}

#[test]
fn prepared_reuse_survives_data_changes() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    let insert = db.prepare("INSERT INTO t VALUES (?)").unwrap();
    for i in 0..10i64 {
        db.query_prepared(&insert).bind(i).run().unwrap();
    }
    let count = db.prepare("SELECT COUNT(*) FROM t WHERE a < ?").unwrap();
    let n = |bound: i64| -> i64 {
        let out = db.query_prepared(&count).bind(bound).run().unwrap();
        out.rows.rows()[0][0].as_int().unwrap()
    };
    assert_eq!(n(5), 5);
    db.query_prepared(&insert).bind(0i64).run().unwrap();
    assert_eq!(n(5), 6, "prepared SELECT must see fresh data");
    assert_eq!(n(100), 11);
}
