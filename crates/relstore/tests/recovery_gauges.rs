//! Recovery/checkpoint gauge assertions.
//!
//! Lives in its own integration-test binary on purpose: the metrics
//! registry is process-global, and other test binaries open databases
//! of their own. One test, one process, deterministic gauge values.

use std::path::PathBuf;

use xomatiq_relstore::Database;

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-gauge-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.wal", std::process::id()));
    for suffix in ["", ".old", ".ckpt", ".ckpt.tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
    path
}

#[test]
fn recovery_after_checkpoint_replays_only_the_tail() {
    let path = wal_path("tail");
    let db = Database::open(&path).unwrap();
    db.query("CREATE TABLE t (a INT)").run().unwrap(); // CSN 1
    for i in 0..100i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap(); // CSNs 2..=101
    }
    db.checkpoint().unwrap(); // K = 101
    for i in 100..105i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap(); // CSNs 102..=106
    }
    drop(db);

    let (db2, report) = Database::open_with_report(&path).unwrap();
    // Only the 5 commits after the checkpoint were replayed.
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.checkpoint_csn, 101);
    assert_eq!(report.transactions_applied, 5);
    assert_eq!(report.transactions_skipped, 0);
    assert_eq!(db2.row_count("t").unwrap(), 105);

    // The same facts are published as process gauges for dashboards.
    let metrics = xomatiq_obs::global();
    assert_eq!(
        metrics.gauge("relstore.wal.recovery.replay_tail").value(),
        5
    );
    assert_eq!(
        metrics
            .gauge("relstore.wal.recovery.transactions_skipped")
            .value(),
        0
    );
    assert_eq!(metrics.gauge("relstore.wal.checkpoint_csn").value(), 101);
    // No fsync ever failed, and the active-log gauge tracks the real file.
    assert_eq!(metrics.counter("relstore.wal.fsync_failures").value(), 0);
    let active_len = std::fs::metadata(&path).unwrap().len() as i64;
    assert_eq!(metrics.gauge("relstore.wal.bytes").value(), active_len);

    // Rotation left exactly one prior generation beside the active log.
    let mut old = path.as_os_str().to_os_string();
    old.push(".old");
    assert!(PathBuf::from(old).exists());
}
