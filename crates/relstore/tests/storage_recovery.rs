//! Segment rebuild under WAL replay.
//!
//! PR-1's fault-schedule machinery proved that recovery yields a prefix of
//! the acked statements; these tests extend that to the segmented column
//! store: the segment layout rebuilt by replay must present rows in the
//! exact document order (ascending row id) the pre-crash store had, the
//! rebuild must be deterministic (two recoveries from the same log bytes
//! agree row for row), and zone maps rebuilt from replayed data must keep
//! pruning correctly.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use proptest::prelude::*;
use xomatiq_relstore::{Database, FaultConfig, FaultyIo, Value};

/// Document-order state: (a, b) pairs WITHOUT an ORDER BY, so the scan
/// order itself — row id order across every rebuilt segment — is under
/// test, not just the multiset of rows.
fn doc_order_state(db: &Database) -> Vec<(Option<i64>, String)> {
    let out = db.query("SELECT a, b FROM t").run().unwrap();
    out.rows
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].as_int(),
                match &r[1] {
                    Value::Text(s) => s.clone(),
                    other => other.to_string(),
                },
            )
        })
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    Insert { a: i64, b: String },
    UpdateWhere { threshold: i64, b: String },
    DeleteWhere { threshold: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..100, "[a-z]{1,8}").prop_map(|(a, b)| Op::Insert { a, b }),
        1 => (0i64..100, "[a-z]{1,8}")
            .prop_map(|(threshold, b)| Op::UpdateWhere { threshold, b }),
        1 => (0i64..100).prop_map(|threshold| Op::DeleteWhere { threshold }),
    ]
}

impl Op {
    fn sql(&self) -> String {
        match self {
            Op::Insert { a, b } => format!("INSERT INTO t VALUES ({a}, '{b}')"),
            Op::UpdateWhere { threshold, b } => {
                format!("UPDATE t SET b = '{b}' WHERE a < {threshold}")
            }
            Op::DeleteWhere { threshold } => format!("DELETE FROM t WHERE a > {threshold}"),
        }
    }
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(48)))]

    /// Fault-schedule crash + recovery: the rebuilt segment store must
    /// present a document-order prefix of the acked statements, and the
    /// rebuild must be deterministic across recoveries of the same bytes.
    #[test]
    fn segment_rebuild_preserves_document_order_under_faults(
        seed in 0u64..u64::MAX,
        ops in prop::collection::vec(op_strategy(), 1..20),
        torn_write_in in 0u32..6,
        bit_flip_in in 0u32..6,
        fsync_fail_in in 0u32..6,
    ) {
        let cfg = FaultConfig {
            torn_write_in,
            bit_flip_in,
            fsync_fail_in,
            read_fail_in: 0,
        };
        // Faults off for the schema, on for the DML tail.
        let io = FaultyIo::new(seed, FaultConfig::none());
        let (db, report) = Database::open_with_io(Box::new(io.clone())).unwrap();
        prop_assert!(report.is_clean());
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        io.set_config(cfg);

        let mut acked = Vec::new();
        for op in &ops {
            if db.execute(&op.sql()).is_ok() {
                acked.push(op.clone());
            }
        }

        io.crash();
        io.set_config(FaultConfig::none());
        let (recovered, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        let got = doc_order_state(&recovered);

        // Document-order prefix states of the acked statements: the
        // rebuilt store must match one of them *in order*, which pins the
        // splice/revive logic of replay, not just row content.
        let oracle = Database::in_memory();
        oracle.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let mut prefix_states = Vec::with_capacity(acked.len() + 1);
        prefix_states.push(doc_order_state(&oracle));
        for op in &acked {
            oracle.execute(&op.sql()).unwrap();
            prefix_states.push(doc_order_state(&oracle));
        }
        prop_assert!(
            prefix_states.contains(&got),
            "rebuilt store is not a document-order prefix of acked ops: {got:?}"
        );

        // Determinism: recovering the same log again yields the same
        // rows in the same order.
        let (again, _) = Database::open_with_io(Box::new(io)).unwrap();
        prop_assert_eq!(doc_order_state(&again), got);
    }
}

#[test]
fn replay_across_segment_boundaries_keeps_order_and_zone_maps() {
    // 2 600 rows span three production-capacity segments; holes and
    // updates dirty the middle one, then a clean reopen replays the log.
    let dir = std::env::temp_dir().join("xomatiq-storage-recovery");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("segments-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let before = {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let stmts: Vec<String> = (0..2_600)
            .map(|i| format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
            .collect();
        let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
        db.execute_batch(&refs).unwrap();
        db.execute("DELETE FROM t WHERE a >= 1100 AND a < 1300")
            .unwrap();
        db.execute("UPDATE t SET b = 'patched' WHERE a >= 2048 AND a < 2060")
            .unwrap();
        doc_order_state(&db)
    };

    let recovered = Database::open(&path).unwrap();
    assert_eq!(doc_order_state(&recovered), before);

    // Zone maps are rebuilt during replay: a selective range over the
    // first segment must prune the later ones.
    let analyzed = recovered
        .explain_analyze_query("SELECT a FROM t WHERE a BETWEEN 10 AND 20")
        .unwrap();
    assert_eq!(analyzed.result.rows().len(), 11);
    assert!(
        analyzed.stats.segments_pruned >= 1,
        "expected replayed zone maps to prune segments: {:?}",
        analyzed.stats
    );
    let _ = std::fs::remove_file(&path);
}
