//! Integration tests for the statistics-driven cost-based planner:
//! `ANALYZE`, `sys_table_stats`, stats-generation plan-cache
//! invalidation, the typed `EXPLAIN`/`EXPLAIN ANALYZE` surface, and a
//! plan-quality property (the chosen join order stays within 10× of the
//! best enumerated alternative).

use std::sync::Arc;

use proptest::prelude::*;
use xomatiq_relstore::{Database, OpProfile, Value};

/// Builds the three-table star used across these tests: `small` (a few
/// dimension rows), `big` (a wide dimension), and `facts` referencing
/// both. Chosen so that joining `facts` to `small` first is far cheaper
/// than the textual FROM order (`facts ⋈ big` first).
fn star_db(facts: i64, big: i64) -> Database {
    let db = Database::in_memory();
    db.query("CREATE TABLE small (id INT, tag TEXT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE big (id INT, payload TEXT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE facts (sid INT, bid INT)")
        .run()
        .unwrap();
    let mut stmts = Vec::new();
    for i in 0..20i64 {
        stmts.push(format!("INSERT INTO small VALUES ({i}, 't{i}')"));
    }
    for i in 0..big {
        stmts.push(format!("INSERT INTO big VALUES ({}, 'p{i}')", i % 500));
    }
    for i in 0..facts {
        stmts.push(format!(
            "INSERT INTO facts VALUES ({}, {})",
            i % 20,
            i % 500
        ));
    }
    let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
    db.execute_batch(&refs).unwrap();
    db
}

const STAR_QUERY: &str = "SELECT COUNT(*) FROM facts f \
     JOIN big b ON f.bid = b.id \
     JOIN small s ON f.sid = s.id \
     WHERE s.id < 2";

/// Total rows produced across every operator of a profile — the
/// "rows processed" measure the plan-quality bound is stated in.
fn rows_processed(p: &OpProfile) -> u64 {
    p.rows_out + p.children.iter().map(rows_processed).sum::<u64>()
}

fn profiled_work(db: &Database, sql: &str) -> u64 {
    let out = db.query(sql).with_profile().run().unwrap();
    rows_processed(&out.profile.unwrap())
}

#[test]
fn analyze_reports_table_count_and_populates_sys_table_stats() {
    let db = star_db(1000, 1000);
    // Nothing analyzed yet: the stats table is empty.
    let empty = db.query("SELECT * FROM sys_table_stats").run().unwrap();
    assert!(empty.rows.rows().is_empty());

    let out = db.query("ANALYZE TABLE facts").run().unwrap();
    assert_eq!(out.rows.affected(), 1);
    let out = db.query("ANALYZE").run().unwrap();
    assert_eq!(out.rows.affected(), 3);

    let rows = db
        .query(
            "SELECT column_name, row_count, ndv, null_frac FROM sys_table_stats \
             WHERE table_name = 'facts' ORDER BY column_name",
        )
        .run()
        .unwrap();
    let rows = rows.rows.rows().to_vec();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Text("bid".into()));
    assert_eq!(rows[0][1], Value::Int(1000));
    // 1000 facts cycle through 500 bid / 20 sid values; the sketch is
    // exact-ish at these cardinalities.
    let bid_ndv = match rows[0][2] {
        Value::Int(n) => n,
        ref v => panic!("ndv should be an int, got {v:?}"),
    };
    assert!((450..=550).contains(&bid_ndv), "bid ndv={bid_ndv}");
    assert_eq!(rows[1][0], Value::Text("sid".into()));
    assert_eq!(rows[1][2], Value::Int(20));
    assert_eq!(rows[0][3], Value::Float(0.0));

    // min/max come back rendered as text.
    let minmax = db
        .query(
            "SELECT min_value, max_value FROM sys_table_stats \
             WHERE table_name = 'facts' AND column_name = 'sid'",
        )
        .run()
        .unwrap();
    assert_eq!(minmax.rows.rows()[0][0], Value::Text("0".into()));
    assert_eq!(minmax.rows.rows()[0][1], Value::Text("19".into()));
}

#[test]
fn analyze_of_missing_table_is_an_error() {
    let db = Database::in_memory();
    assert!(db.query("ANALYZE TABLE nope").run().is_err());
}

#[test]
fn analyze_bumps_generation_and_invalidates_cached_plans() {
    let db = star_db(1000, 1000);
    let sql = "SELECT COUNT(*) FROM facts WHERE sid = 3";

    // Warm the cache and prove hits share the cached Arc.
    let p1 = db.query(sql).planned().unwrap();
    let p1_again = db.query(sql).planned().unwrap();
    assert!(
        Arc::ptr_eq(&p1, &p1_again),
        "second lookup must be a cache hit"
    );

    db.query("ANALYZE").run().unwrap();

    // The regression this pins: a plan costed under the old statistics
    // generation must never be served after ANALYZE.
    let p2 = db.query(sql).planned().unwrap();
    assert!(
        !Arc::ptr_eq(&p1, &p2),
        "ANALYZE must invalidate previously cached plans"
    );
    // And the freshly planned query carries real estimates now.
    assert!(p2.estimate.rows.is_some());

    // Generation is visible through sys_table_stats and bumps per ANALYZE.
    let gen = |db: &Database| -> i64 {
        let out = db
            .query("SELECT stats_generation FROM sys_table_stats LIMIT 1")
            .run()
            .unwrap();
        match out.rows.rows()[0][0] {
            Value::Int(g) => g,
            ref v => panic!("generation should be an int, got {v:?}"),
        }
    };
    let g1 = gen(&db);
    db.query("ANALYZE").run().unwrap();
    let g2 = gen(&db);
    assert!(
        g2 > g1,
        "re-ANALYZE must bump the generation ({g1} -> {g2})"
    );
}

#[test]
fn stats_flip_join_order_and_cut_rows_processed() {
    let db = star_db(20_000, 5_000);
    let cold_plan = db.query(STAR_QUERY).explain().unwrap().render();
    let cold_work = profiled_work(&db, STAR_QUERY);
    let expected = db.query(STAR_QUERY).run().unwrap();

    db.query("ANALYZE").run().unwrap();
    let warm_plan = db.query(STAR_QUERY).explain().unwrap().render();
    let warm_work = profiled_work(&db, STAR_QUERY);
    let got = db.query(STAR_QUERY).run().unwrap();

    assert_ne!(
        cold_plan, warm_plan,
        "statistics should change the join order"
    );
    assert_eq!(
        got.rows.rows(),
        expected.rows.rows(),
        "same answer either way"
    );
    assert!(
        warm_work * 2 <= cold_work,
        "cost-based order should process ≤ half the rows: cold={cold_work} warm={warm_work}"
    );
}

#[test]
fn explain_of_unbound_placeholder_renders_instead_of_erroring() {
    let db = star_db(1000, 1000);
    db.query("ANALYZE").run().unwrap();

    // Ad-hoc SQL with an unbound `?`.
    let tree = db
        .query("SELECT COUNT(*) FROM facts WHERE sid = ?")
        .explain()
        .unwrap();
    let text = tree.render();
    assert!(text.contains("facts"), "{text}");

    // A prepared statement explained before any values are bound.
    let prepared = db
        .prepare("SELECT * FROM facts f JOIN small s ON f.sid = s.id WHERE s.id < ?")
        .unwrap();
    let tree = db.query_prepared(&prepared).explain().unwrap();
    assert!(tree.root.estimated_rows.is_some());
    // Binding the parameter still works and narrows the estimate (a
    // bound literal uses real range selectivity, an unbound `?` the
    // placeholder default).
    let bound = db.query_prepared(&prepared).bind(2i64).explain().unwrap();
    assert!(bound.root.estimated_rows.is_some());
}

#[test]
fn explain_analyze_shows_estimated_and_actual_rows() {
    let db = star_db(1000, 1000);
    db.query("ANALYZE").run().unwrap();

    // The classic string surface gains an `est=` annotation per operator.
    let text = db
        .explain_analyze("SELECT COUNT(*) FROM facts WHERE sid < 5")
        .unwrap();
    assert!(text.contains("est="), "{text}");
    assert!(text.contains("rows_out="), "{text}");

    // The typed surface carries both numbers per node.
    let tree = db
        .query("SELECT COUNT(*) FROM facts WHERE sid < 5")
        .explain_analyzed()
        .unwrap();
    assert!(tree.root.actual_rows.is_some());
    assert!(tree.root.estimated_rows.is_some());
    let scan = {
        let mut node = &tree.root;
        while let Some(child) = node.children.first() {
            node = child;
        }
        node
    };
    // The scan pushes `sid < 5` down, emitting 250 of 1000 rows; the
    // planner's scan estimate is the full analyzed row count.
    assert_eq!(scan.actual_rows, Some(250));
    assert_eq!(scan.estimated_rows, Some(1000.0));
}

#[test]
fn churn_past_threshold_rebuilds_stats_lazily() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    let stmts: Vec<String> = (0..20)
        .map(|i| format!("INSERT INTO t VALUES ({i})"))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
    db.execute_batch(&refs).unwrap();
    db.query("ANALYZE TABLE t").run().unwrap();

    let snap = |db: &Database| -> (i64, i64, i64) {
        let out = db
            .query("SELECT row_count, ndv, stats_generation FROM sys_table_stats WHERE table_name = 't'")
            .run()
            .unwrap();
        let row = &out.rows.rows()[0];
        match (&row[0], &row[1], &row[2]) {
            (Value::Int(rc), Value::Int(ndv), Value::Int(g)) => (*rc, *ndv, *g),
            other => panic!("unexpected row {other:?}"),
        }
    };
    let (rc, ndv, g1) = snap(&db);
    assert_eq!(rc, 20);
    assert_eq!(ndv, 20);

    // Churn ≥ max(analyzed_rows / 5, 16) triggers an automatic rescan:
    // after 20 more inserts the column stats catch up without ANALYZE.
    let stmts: Vec<String> = (20..40)
        .map(|i| format!("INSERT INTO t VALUES ({i})"))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
    db.execute_batch(&refs).unwrap();
    let (rc, ndv, g2) = snap(&db);
    assert_eq!(rc, 40);
    assert!(
        (36..=44).contains(&ndv),
        "ndv should track the rescan, got {ndv}"
    );
    assert!(g2 > g1, "lazy rebuild must bump the generation");
}

#[test]
fn row_counts_stay_exact_without_analyze_rebuild() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1)").run().unwrap();
    db.query("INSERT INTO t VALUES (2)").run().unwrap();
    db.query("ANALYZE TABLE t").run().unwrap();
    db.query("INSERT INTO t VALUES (3)").run().unwrap();
    db.query("DELETE FROM t WHERE a = 1").run().unwrap();
    let out = db
        .query("SELECT row_count FROM sys_table_stats WHERE table_name = 't' LIMIT 1")
        .run()
        .unwrap();
    assert_eq!(out.rows.rows()[0][0], Value::Int(2));
}

// ---------------------------------------------------------------------------
// Plan quality: the cost-based order vs. every enumerated FROM order
// ---------------------------------------------------------------------------

fn chain_db(rows: &[Vec<i64>; 3]) -> Database {
    let db = Database::in_memory();
    let mut stmts = Vec::new();
    for (t, vals) in rows.iter().enumerate() {
        db.query(&format!("CREATE TABLE r{t} (k INT)"))
            .run()
            .unwrap();
        for v in vals {
            stmts.push(format!("INSERT INTO r{t} VALUES ({v})"));
        }
    }
    let refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
    db.execute_batch(&refs).unwrap();
    db
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(12)))]

    /// The cost-based join order never processes more than 10× the rows
    /// of the *best* FROM-order alternative. Alternatives are enumerated
    /// on an unanalyzed twin database, where the planner preserves the
    /// textual order — that is exactly what the cost model replaced.
    #[test]
    fn chosen_join_order_within_10x_of_best_alternative(
        sizes in (1usize..50, 1usize..50, 1usize..50),
        moduli in (1i64..12, 1i64..12, 1i64..12),
    ) {
        let sizes = [sizes.0, sizes.1, sizes.2];
        let moduli = [moduli.0, moduli.1, moduli.2];
        let tables: [Vec<i64>; 3] = std::array::from_fn(|t| {
            (0..sizes[t] as i64).map(|i| i % moduli[t]).collect()
        });
        let analyzed = chain_db(&tables);
        analyzed.query("ANALYZE").run().unwrap();
        let textual = chain_db(&tables);

        let query_for = |order: [usize; 3]| {
            let [a, b, c] = order;
            format!(
                "SELECT COUNT(*) FROM r{a} JOIN r{b} ON r{a}.k = r{b}.k \
                 JOIN r{c} ON r{b}.k = r{c}.k"
            )
        };
        let orders = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let best = orders
            .iter()
            .map(|&o| profiled_work(&textual, &query_for(o)))
            .min()
            .unwrap()
            .max(1);
        let chosen = profiled_work(&analyzed, &query_for([0, 1, 2]));
        prop_assert!(
            chosen <= best * 10,
            "chosen order processed {chosen} rows; best alternative {best}"
        );
    }
}
