//! End-to-end SQL tests against the [`Database`] facade.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use xomatiq_relstore::{Database, Value};

fn seeded() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE enzymes (ec TEXT, description TEXT, sites INT, mass FLOAT)")
        .unwrap();
    let rows = [
        ("1.1.1.1", "Alcohol dehydrogenase", 4, 141.0),
        ("1.14.17.3", "Peptidylglycine monooxygenase", 2, 108.3),
        ("2.7.7.7", "DNA polymerase", 10, 109.5),
        ("3.1.1.1", "Carboxylesterase ketone pathway", 1, 60.0),
        ("4.2.1.1", "Carbonic anhydrase ketone group", 3, 29.0),
    ];
    for (ec, d, s, m) in rows {
        db.execute(&format!(
            "INSERT INTO enzymes VALUES ('{ec}', '{d}', {s}, {m})"
        ))
        .unwrap();
    }
    db
}

#[test]
fn select_with_predicates() {
    let db = seeded();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE sites > 2 ORDER BY ec")
        .unwrap();
    let ecs: Vec<&str> = rs.rows().iter().map(|r| r[0].as_text().unwrap()).collect();
    assert_eq!(ecs, vec!["1.1.1.1", "2.7.7.7", "4.2.1.1"]);
}

#[test]
fn projection_names_and_aliases() {
    let db = seeded();
    let rs = db
        .execute("SELECT ec AS enzyme_commission, sites * 2 AS doubled FROM enzymes LIMIT 1")
        .unwrap();
    assert_eq!(
        rs.columns(),
        &["enzyme_commission".to_string(), "doubled".to_string()]
    );
    assert_eq!(rs.rows()[0][1], Value::Int(8));
}

#[test]
fn contains_without_index_falls_back_to_scan() {
    let db = seeded();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE CONTAINS(description, 'ketone') ORDER BY ec")
        .unwrap();
    assert_eq!(rs.rows().len(), 2);
}

#[test]
fn contains_with_keyword_index_matches_scan_results() {
    let db = seeded();
    let scan = db
        .execute("SELECT ec FROM enzymes WHERE CONTAINS(description, 'ketone') ORDER BY ec")
        .unwrap();
    db.execute("CREATE KEYWORD INDEX kw_desc ON enzymes (description)")
        .unwrap();
    let indexed = db
        .execute("SELECT ec FROM enzymes WHERE CONTAINS(description, 'ketone') ORDER BY ec")
        .unwrap();
    assert_eq!(scan.rows(), indexed.rows());
    let plan = db
        .plan("SELECT ec FROM enzymes WHERE CONTAINS(description, 'ketone')")
        .unwrap();
    assert!(plan.plan.uses_index(), "{}", plan.plan.explain());
}

#[test]
fn btree_index_equality_and_range() {
    let db = seeded();
    db.execute("CREATE INDEX idx_sites ON enzymes (sites)")
        .unwrap();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE sites = 10")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Text("2.7.7.7".into()));
    let range = db
        .execute("SELECT ec FROM enzymes WHERE sites BETWEEN 2 AND 4 ORDER BY sites")
        .unwrap();
    assert_eq!(range.rows().len(), 3);
    assert!(db
        .plan("SELECT ec FROM enzymes WHERE sites = 10")
        .unwrap()
        .plan
        .uses_index());
}

#[test]
fn join_across_tables() {
    let db = seeded();
    db.execute("CREATE TABLE refs (ec TEXT, db_name TEXT, acc TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO refs VALUES ('1.14.17.3', 'SWISSPROT', 'P10731'), \
         ('1.14.17.3', 'PROSITE', 'PDOC00080'), ('2.7.7.7', 'SWISSPROT', 'P00001')",
    )
    .unwrap();
    let rs = db
        .execute(
            "SELECT e.description, r.acc FROM enzymes e JOIN refs r ON e.ec = r.ec \
             WHERE r.db_name = 'SWISSPROT' ORDER BY r.acc",
        )
        .unwrap();
    assert_eq!(rs.rows().len(), 2);
    assert_eq!(rs.rows()[0][1], Value::Text("P00001".into()));
    assert_eq!(
        rs.rows()[1][0],
        Value::Text("Peptidylglycine monooxygenase".into())
    );
}

#[test]
fn three_way_join() {
    let db = seeded();
    db.execute("CREATE TABLE a (k INT, v TEXT)").unwrap();
    db.execute("CREATE TABLE b (k INT, w TEXT)").unwrap();
    db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
        .unwrap();
    db.execute("INSERT INTO b VALUES (1, 'p'), (1, 'q'), (2, 'r')")
        .unwrap();
    let rs = db
        .execute(
            "SELECT a.v, b.w, e.ec FROM a, b, enzymes e \
             WHERE a.k = b.k AND e.sites = a.k ORDER BY b.w",
        )
        .unwrap();
    // a.k=1 joins b rows p,q; enzymes with sites=1 → 3.1.1.1. a.k=2 joins r; sites=2 → 1.14.17.3.
    assert_eq!(rs.rows().len(), 3);
}

#[test]
fn aggregates_and_group_by() {
    let db = seeded();
    let rs = db
        .execute("SELECT COUNT(*), SUM(sites), MIN(mass), MAX(mass), AVG(sites) FROM enzymes")
        .unwrap();
    let row = &rs.rows()[0];
    assert_eq!(row[0], Value::Int(5));
    assert_eq!(row[1], Value::Int(20));
    assert_eq!(row[2], Value::Float(29.0));
    assert_eq!(row[3], Value::Float(141.0));
    assert_eq!(row[4], Value::Float(4.0));

    db.execute("CREATE TABLE refs (ec TEXT, db_name TEXT)")
        .unwrap();
    db.execute("INSERT INTO refs VALUES ('a', 'SP'), ('b', 'SP'), ('c', 'PROSITE')")
        .unwrap();
    let grouped = db
        .execute("SELECT db_name, COUNT(*) AS n FROM refs GROUP BY db_name ORDER BY n DESC")
        .unwrap();
    assert_eq!(grouped.rows()[0][0], Value::Text("SP".into()));
    assert_eq!(grouped.rows()[0][1], Value::Int(2));
    assert_eq!(grouped.rows()[1][1], Value::Int(1));
}

#[test]
fn aggregate_over_empty_input() {
    let db = seeded();
    let rs = db
        .execute("SELECT COUNT(*), SUM(sites) FROM enzymes WHERE sites > 999")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Int(0));
    assert_eq!(rs.rows()[0][1], Value::Null);
}

#[test]
fn distinct_limit_offset() {
    let db = seeded();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (2), (3), (3), (3)")
        .unwrap();
    let rs = db.execute("SELECT DISTINCT x FROM t ORDER BY x").unwrap();
    assert_eq!(rs.rows().len(), 3);
    let page = db
        .execute("SELECT DISTINCT x FROM t ORDER BY x LIMIT 1 OFFSET 1")
        .unwrap();
    assert_eq!(page.rows(), &[vec![Value::Int(2)]]);
}

#[test]
fn update_and_delete() {
    let db = seeded();
    let n = db
        .execute("UPDATE enzymes SET sites = sites + 100 WHERE mass < 100")
        .unwrap()
        .affected();
    assert_eq!(n, 2);
    let rs = db
        .execute("SELECT COUNT(*) FROM enzymes WHERE sites > 100")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(2));
    let deleted = db
        .execute("DELETE FROM enzymes WHERE sites > 100")
        .unwrap()
        .affected();
    assert_eq!(deleted, 2);
    assert_eq!(db.row_count("enzymes").unwrap(), 3);
}

#[test]
fn update_maintains_indexes() {
    let db = seeded();
    db.execute("CREATE INDEX idx_sites ON enzymes (sites)")
        .unwrap();
    db.execute("UPDATE enzymes SET sites = 77 WHERE ec = '1.1.1.1'")
        .unwrap();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE sites = 77")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    let old = db
        .execute("SELECT ec FROM enzymes WHERE sites = 4")
        .unwrap();
    assert!(old.rows().is_empty());
}

#[test]
fn delete_maintains_keyword_index() {
    let db = seeded();
    db.execute("CREATE KEYWORD INDEX kw ON enzymes (description)")
        .unwrap();
    db.execute("DELETE FROM enzymes WHERE ec = '3.1.1.1'")
        .unwrap();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE CONTAINS(description, 'ketone')")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Text("4.2.1.1".into()));
}

#[test]
fn error_paths() {
    let db = seeded();
    assert!(db.execute("SELECT * FROM missing").is_err());
    assert!(db.execute("SELECT nope FROM enzymes").is_err());
    assert!(db.execute("INSERT INTO enzymes VALUES (1)").is_err());
    assert!(db.execute("CREATE TABLE enzymes (x INT)").is_err());
    assert!(db.execute("DELETE FROM enzymes WHERE nope = 1").is_err());
    assert!(db.execute("UPDATE enzymes SET nope = 1").is_err());
    assert!(db.execute("garbage statement").is_err());
}

#[test]
fn explain_shows_access_path() {
    let db = seeded();
    let before = db
        .explain("SELECT ec FROM enzymes WHERE sites = 4")
        .unwrap();
    assert!(before.contains("Scan enzymes"), "{before}");
    db.execute("CREATE INDEX idx_sites ON enzymes (sites)")
        .unwrap();
    let after = db
        .explain("SELECT ec FROM enzymes WHERE sites = 4")
        .unwrap();
    assert!(after.contains("IndexScan enzymes"), "{after}");
    assert!(after.contains("idx_sites"), "{after}");
}

#[test]
fn result_set_table_rendering() {
    let db = seeded();
    let rs = db
        .execute("SELECT ec, sites FROM enzymes WHERE sites = 10")
        .unwrap();
    let table = rs.to_table();
    assert!(table.contains("| ec "), "{table}");
    assert!(table.contains("2.7.7.7"), "{table}");
    assert!(table.contains("(1 rows)"), "{table}");
}

#[test]
fn batch_is_atomic() {
    let db = seeded();
    let before = db.row_count("enzymes").unwrap();
    // Second statement fails (arity) — the first insert must roll back.
    let err = db.execute_batch(&[
        "INSERT INTO enzymes VALUES ('9.9.9.9', 'New enzyme', 1, 1.0)",
        "INSERT INTO enzymes VALUES ('bad')",
    ]);
    assert!(err.is_err());
    assert_eq!(db.row_count("enzymes").unwrap(), before);
    // A good batch applies fully.
    let n = db
        .execute_batch(&[
            "INSERT INTO enzymes VALUES ('9.9.9.9', 'New enzyme', 1, 1.0)",
            "DELETE FROM enzymes WHERE ec = '1.1.1.1'",
        ])
        .unwrap();
    assert_eq!(n, 2);
    assert_eq!(db.row_count("enzymes").unwrap(), before);
}

#[test]
fn batch_rejects_ddl() {
    let db = seeded();
    assert!(db.execute_batch(&["CREATE TABLE z (a INT)"]).is_err());
}

#[test]
fn null_handling_in_queries() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")
        .unwrap();
    assert_eq!(
        db.execute("SELECT b FROM t WHERE a IS NULL")
            .unwrap()
            .rows()
            .len(),
        1
    );
    assert_eq!(
        db.execute("SELECT b FROM t WHERE a IS NOT NULL")
            .unwrap()
            .rows()
            .len(),
        2
    );
    // NULL never equals anything.
    assert_eq!(
        db.execute("SELECT b FROM t WHERE a = NULL")
            .unwrap()
            .rows()
            .len(),
        0
    );
    // NULLs sort first under the engine's total order.
    let rs = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Null);
}

#[test]
fn join_skips_null_keys() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE l (k INT)").unwrap();
    db.execute("CREATE TABLE r (k INT)").unwrap();
    db.execute("INSERT INTO l VALUES (1), (NULL)").unwrap();
    db.execute("INSERT INTO r VALUES (1), (NULL)").unwrap();
    let rs = db.execute("SELECT l.k FROM l JOIN r ON l.k = r.k").unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Int(1));
}

#[test]
fn like_and_in_queries() {
    let db = seeded();
    let rs = db
        .execute("SELECT ec FROM enzymes WHERE description LIKE '%anhydrase%'")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    let rs2 = db
        .execute("SELECT ec FROM enzymes WHERE ec IN ('1.1.1.1', '2.7.7.7') ORDER BY ec")
        .unwrap();
    assert_eq!(rs2.rows().len(), 2);
}

#[test]
fn count_distinct() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (1), (2), (NULL)")
        .unwrap();
    let rs = db
        .execute("SELECT COUNT(DISTINCT x), COUNT(x), COUNT(*) FROM t")
        .unwrap();
    assert_eq!(
        rs.rows()[0],
        vec![Value::Int(2), Value::Int(3), Value::Int(4)]
    );
}

#[test]
fn drop_table_and_index() {
    let db = seeded();
    db.execute("CREATE INDEX idx ON enzymes (ec)").unwrap();
    db.execute("DROP INDEX idx").unwrap();
    assert!(db.execute("DROP INDEX idx").is_err());
    db.execute("DROP TABLE enzymes").unwrap();
    assert!(db.execute("SELECT * FROM enzymes").is_err());
}

#[test]
fn matches_regular_expressions() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE seqs (acc TEXT, seq TEXT)")
        .unwrap();
    db.execute(
        "INSERT INTO seqs VALUES \
         ('P1', 'MKNVTLAGRA'), ('P2', 'MKNPTLAGRA'), ('P3', 'GGTATAAAGG')",
    )
    .unwrap();
    // N-glycosylation-style motif: N, not P, then S/T.
    let rs = db
        .execute("SELECT acc FROM seqs WHERE MATCHES(seq, 'N[^P][ST]')")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(rs.rows()[0][0], Value::Text("P1".into()));
    // TATA box.
    let tata = db
        .execute("SELECT acc FROM seqs WHERE MATCHES(seq, 'TATA[AT]A')")
        .unwrap();
    assert_eq!(tata.rows()[0][0], Value::Text("P3".into()));
    // Anchors and alternation.
    let both = db
        .execute("SELECT COUNT(*) FROM seqs WHERE MATCHES(seq, '^MK(N|G)')")
        .unwrap();
    assert_eq!(both.rows()[0][0], Value::Int(2));
    // Bad pattern surfaces as an error.
    assert!(db
        .execute("SELECT acc FROM seqs WHERE MATCHES(seq, '(')")
        .is_err());
}

#[test]
fn semi_join_matches_plain_distinct_results() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE docs (id INT, name TEXT)").unwrap();
    db.execute("CREATE TABLE words (doc INT, w TEXT)").unwrap();
    db.execute("INSERT INTO docs VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        .unwrap();
    // doc 1 has three matching words (would multiply without semi-join),
    // doc 2 has one, doc 3 has none.
    db.execute("INSERT INTO words VALUES (1, 'x'), (1, 'x'), (1, 'x'), (2, 'x'), (3, 'y')")
        .unwrap();
    let sql = "SELECT DISTINCT d.name FROM docs d, words w \
               WHERE d.id = w.doc AND w.w = 'x' ORDER BY d.name";
    let plan = db.plan(sql).unwrap();
    assert!(
        plan.plan.explain().contains("HashSemiJoin"),
        "{}",
        plan.plan.explain()
    );
    let rs = db.execute(sql).unwrap();
    let names: Vec<&str> = rs.rows().iter().map(|r| r[0].as_text().unwrap()).collect();
    assert_eq!(names, vec!["a", "b"]);
}

#[test]
fn order_by_multiple_keys_and_directions() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'z'), (1, 'a'), (2, 'm'), (2, 'b')")
        .unwrap();
    let rs = db
        .execute("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        .unwrap();
    let got: Vec<(i64, &str)> = rs
        .rows()
        .iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_text().unwrap()))
        .collect();
    assert_eq!(got, vec![(2, "b"), (2, "m"), (1, "a"), (1, "z")]);
}

#[test]
fn limit_and_offset_edges() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert!(db
        .execute("SELECT a FROM t LIMIT 0")
        .unwrap()
        .rows()
        .is_empty());
    assert_eq!(
        db.execute("SELECT a FROM t LIMIT 99").unwrap().rows().len(),
        3
    );
    assert!(db
        .execute("SELECT a FROM t ORDER BY a OFFSET 5")
        .unwrap()
        .rows()
        .is_empty());
    let page = db
        .execute("SELECT a FROM t ORDER BY a LIMIT 1 OFFSET 2")
        .unwrap();
    assert_eq!(page.rows()[0][0], Value::Int(3));
}

#[test]
fn min_max_over_text_and_avg_of_ints() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (name TEXT, n INT)").unwrap();
    db.execute("INSERT INTO t VALUES ('beta', 1), ('alpha', 2), ('gamma', 4)")
        .unwrap();
    let rs = db
        .execute("SELECT MIN(name), MAX(name), AVG(n) FROM t")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Text("alpha".into()));
    assert_eq!(rs.rows()[0][1], Value::Text("gamma".into()));
    assert_eq!(rs.rows()[0][2], Value::Float(7.0 / 3.0));
    // SUM over text errors out rather than silently coercing.
    assert!(db.execute("SELECT SUM(name) FROM t").is_err());
}

#[test]
fn group_by_with_having_like_filter_via_nested_semantics() {
    // No HAVING in the subset; the equivalent is filtering rows first.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (k TEXT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES ('a', 1), ('a', 5), ('b', 2), ('b', 3), ('c', 10)")
        .unwrap();
    let rs = db
        .execute("SELECT k, SUM(v) AS total FROM t WHERE v < 10 GROUP BY k ORDER BY k")
        .unwrap();
    assert_eq!(rs.rows().len(), 2);
    assert_eq!(rs.rows()[0], vec![Value::Text("a".into()), Value::Int(6)]);
    assert_eq!(rs.rows()[1], vec![Value::Text("b".into()), Value::Int(5)]);
}

#[test]
fn update_with_swapped_column_references() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    // Assignments all read the PRE-update row.
    db.execute("UPDATE t SET a = b, b = a").unwrap();
    let rs = db.execute("SELECT a, b FROM t").unwrap();
    assert_eq!(rs.rows()[0], vec![Value::Int(10), Value::Int(1)]);
}

#[test]
fn composite_index_prefix_and_range_consistency() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (p TEXT, o INT, v TEXT)")
        .unwrap();
    for p in ["x", "y"] {
        for o in 0..20 {
            db.execute(&format!("INSERT INTO t VALUES ('{p}', {o}, '{p}{o}')"))
                .unwrap();
        }
    }
    let baseline = db
        .execute("SELECT v FROM t WHERE p = 'x' AND o BETWEEN 5 AND 9 ORDER BY o")
        .unwrap();
    db.execute("CREATE INDEX i ON t (p, o)").unwrap();
    let indexed = db
        .execute("SELECT v FROM t WHERE p = 'x' AND o BETWEEN 5 AND 9 ORDER BY o")
        .unwrap();
    assert_eq!(baseline.rows(), indexed.rows());
    assert_eq!(indexed.rows().len(), 5);
    assert!(db
        .plan("SELECT v FROM t WHERE p = 'x' AND o BETWEEN 5 AND 9")
        .unwrap()
        .plan
        .uses_index());
}

#[test]
fn dml_uses_indexes_for_sargable_filters() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (doc INT, v TEXT)").unwrap();
    for d in 0..50 {
        for i in 0..4 {
            db.execute(&format!("INSERT INTO t VALUES ({d}, 'd{d}i{i}')"))
                .unwrap();
        }
    }
    db.execute("CREATE INDEX idx_doc ON t (doc)").unwrap();
    // Indexed DELETE removes exactly the matching rows.
    assert_eq!(
        db.execute("DELETE FROM t WHERE doc = 7")
            .unwrap()
            .affected(),
        4
    );
    assert_eq!(db.row_count("t").unwrap(), 196);
    // Indexed UPDATE touches exactly the matching rows and maintains the
    // index (a follow-up indexed SELECT sees the change).
    assert_eq!(
        db.execute("UPDATE t SET v = 'changed' WHERE doc = 9")
            .unwrap()
            .affected(),
        4
    );
    let rs = db.execute("SELECT v FROM t WHERE doc = 9").unwrap();
    assert!(rs
        .rows()
        .iter()
        .all(|r| r[0] == Value::Text("changed".into())));
    // Residual (non-sargable) parts of the filter still apply.
    assert_eq!(
        db.execute("DELETE FROM t WHERE doc = 9 AND v LIKE 'nope%'")
            .unwrap()
            .affected(),
        0
    );
    assert_eq!(
        db.execute("DELETE FROM t WHERE doc = 9 AND v = 'changed'")
            .unwrap()
            .affected(),
        4
    );
}
