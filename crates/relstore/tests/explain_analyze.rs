//! `EXPLAIN ANALYZE` behaviour: golden profile tree over a known plan,
//! per-operator row accounting, the self-time-sums-to-total invariant the
//! issue pins at ±10%, and the SQL-level `EXPLAIN [ANALYZE]` statements.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use xomatiq_relstore::{Database, Value};

fn big_db(n: i64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (a INT, b TEXT)").unwrap();
    let stmts: Vec<String> = (0..n)
        .map(|i| format!("INSERT INTO big VALUES ({i}, 'row{i}')"))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    db
}

/// Replaces the (nondeterministic) time fields so profile renders can be
/// compared against a golden string.
fn normalize(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| !l.starts_with("(total:"))
        .map(|l| match l.find(" self=") {
            Some(i) => format!("{} self=_]", &l[..i]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn golden_profile_over_three_operator_plan() {
    let db = big_db(1_000);
    let analyzed = db
        .explain_analyze_query("SELECT a FROM big WHERE a < 3")
        .unwrap();
    assert_eq!(analyzed.result.rows().len(), 3);
    let got = normalize(&analyzed.render());
    // `a < 3` is sargable, so the vectorized kernel drops non-matching
    // rows inside the scan: the Scan node emits the 3 survivors and the
    // Filter merely re-confirms them. The true scan volume (and the
    // zone-map outcome) lives in the footer counters.
    let want = "\
Project [a]  [rows_in=3 rows_out=3 self=_]
  Filter  [rows_in=3 rows_out=3 self=_]
    Scan big AS big  [rows_in=3 rows_out=3 self=_]";
    assert_eq!(got, want);
    // The footer carries the executor counters.
    assert!(
        analyzed.render().contains("rows scanned: 1000"),
        "{}",
        analyzed.render()
    );
    assert!(
        analyzed.render().contains("segments pruned: 0"),
        "{}",
        analyzed.render()
    );
}

#[test]
fn filter_join_topk_times_sum_to_total_within_ten_percent() {
    // The acceptance-criteria query shape: filter + hash join + Top-K.
    let db = Database::in_memory();
    db.execute("CREATE TABLE facts (id INT, v INT)").unwrap();
    db.execute("CREATE TABLE dims (id INT, name TEXT)").unwrap();
    let stmts: Vec<String> = (0..20_000)
        .map(|i| format!("INSERT INTO facts VALUES ({}, {i})", i % 64))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    for i in 0..64 {
        db.execute(&format!("INSERT INTO dims VALUES ({i}, 'n{i}')"))
            .unwrap();
    }
    let sql = "SELECT f.v, d.name FROM facts f, dims d \
               WHERE f.id = d.id AND f.v < 10000 \
               ORDER BY f.v DESC LIMIT 5";
    let analyzed = db.explain_analyze_query(sql).unwrap();
    assert_eq!(analyzed.result.rows().len(), 5);
    assert_eq!(analyzed.result.rows()[0][0], Value::Int(9999));

    // The profile tree contains the three interesting operators, each
    // with rows-in/rows-out accounted.
    let rendered = analyzed.render();
    assert!(rendered.contains("TopK 5 OFFSET 0"), "{rendered}");
    assert!(rendered.contains("HashJoin"), "{rendered}");
    assert!(rendered.contains("Filter"), "{rendered}");
    let mut stack = vec![&analyzed.profile];
    let mut ops = 0usize;
    while let Some(node) = stack.pop() {
        ops += 1;
        // Streaming operators can't produce more than they consume
        // (leaves report rows_in == rows_out by definition).
        assert!(
            node.rows_out <= node.rows_in.max(1),
            "{}: rows_in={} rows_out={}",
            node.op,
            node.rows_in,
            node.rows_out
        );
        assert!(node.elapsed_ns <= node.total_ns, "{}", node.op);
        stack.extend(node.children.iter());
    }
    assert!(ops >= 5, "expected a filter+join+topk tree, got {rendered}");

    // Exclusive per-operator times must sum (within ±10%) to the total
    // measured execution time.
    let sum = analyzed.profile.tree_elapsed_ns() as f64;
    let total = analyzed.total_ns as f64;
    assert!(
        (sum - total).abs() <= total * 0.10,
        "per-operator sum {sum}ns vs total {total}ns drifts more than 10%:\n{rendered}"
    );
}

#[test]
fn explain_statement_matches_database_explain() {
    let db = big_db(10);
    let rs = db.execute("EXPLAIN SELECT a FROM big LIMIT 2").unwrap();
    assert_eq!(rs.columns(), ["plan"]);
    let lines: Vec<String> = rs
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    let explain = db.explain("SELECT a FROM big LIMIT 2").unwrap();
    let want: Vec<&str> = explain.lines().collect();
    assert_eq!(lines, want);
}

#[test]
fn explain_analyze_statement_reports_rows_and_total() {
    let db = big_db(100);
    let rs = db
        .execute("EXPLAIN ANALYZE SELECT a FROM big WHERE a >= 90")
        .unwrap();
    let text: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("rows_out=10"), "{joined}");
    assert!(joined.contains("(total:"), "{joined}");
    // EXPLAIN ANALYZE of DML is rejected at parse time.
    let err = db.execute("EXPLAIN ANALYZE DELETE FROM big").unwrap_err();
    assert!(err.to_string().contains("SELECT"), "{err}");
}

#[test]
fn analyze_reports_index_and_keyword_counters() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, s TEXT)").unwrap();
    db.execute("CREATE INDEX idx_a ON t (a)").unwrap();
    db.execute("CREATE KEYWORD INDEX kw_s ON t (s)").unwrap();
    for i in 0..100 {
        let s = if i % 10 == 0 { "needle here" } else { "hay" };
        db.execute(&format!("INSERT INTO t VALUES ({i}, '{s}')"))
            .unwrap();
    }
    let analyzed = db
        .explain_analyze_query("SELECT a FROM t WHERE a = 42")
        .unwrap();
    assert_eq!(analyzed.stats.index_probes, 1);
    assert_eq!(analyzed.stats.rows_scanned, 1);
    assert!(analyzed.render().contains("index probes: 1"));

    let analyzed = db
        .explain_analyze_query("SELECT a FROM t WHERE CONTAINS(s, 'needle')")
        .unwrap();
    assert_eq!(analyzed.stats.index_probes, 1);
    assert_eq!(analyzed.stats.keyword_postings_read, 10);
}
