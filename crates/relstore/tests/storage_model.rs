//! Differential property tests for the segmented column store.
//!
//! The model is the simplest possible ordered store — a
//! `BTreeMap<RowId, Row>` — and the invariant is total: after any sequence
//! of inserts (appends and id-directed re-inserts), updates and deletes,
//! the segmented store must agree with the model on length, point lookups
//! AND the full scan *in document order* (ascending row id — the paper's
//! "order as a data value", §2.2). This exercises every structural path:
//! tail appends, in-place tombstone revives, the O(n) rebuild splice for
//! unseen below-high-water ids, and tombstone/zone-map maintenance.

use std::collections::BTreeMap;

use proptest::prelude::*;
use xomatiq_relstore::table::{Row, RowId, Table};
use xomatiq_relstore::{Column, DataType, TableSchema, Value};

#[derive(Debug, Clone)]
enum Op {
    /// Append a fresh row.
    Insert(Row),
    /// Re-insert under a chosen id (WAL-replay path: revive or splice).
    InsertAt(u64, Row),
    /// Update an id (may or may not exist).
    Update(u64, Row),
    /// Delete an id (may or may not exist).
    Delete(u64),
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            Column::new("a", DataType::Int),
            Column::new("f", DataType::Float),
            Column::new("s", DataType::Text),
        ],
    )
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop_oneof![4 => (-50i64..50).prop_map(Value::Int), 1 => Just(Value::Null)],
        prop_oneof![
            4 => (-50i32..50).prop_map(|f| Value::Float(f as f64 / 4.0)),
            1 => Just(Value::Null),
        ],
        prop_oneof![4 => "[a-z]{0,12}".prop_map(Value::Text), 1 => Just(Value::Null)],
    )
        .prop_map(|(a, f, s)| vec![a, f, s])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Ids collide on purpose: 0..48 keeps revives and splices frequent.
    prop_oneof![
        4 => row_strategy().prop_map(Op::Insert),
        2 => (0u64..48, row_strategy()).prop_map(|(id, r)| Op::InsertAt(id, r)),
        2 => (0u64..48, row_strategy()).prop_map(|(id, r)| Op::Update(id, r)),
        2 => (0u64..48).prop_map(Op::Delete),
    ]
}

/// Applies `ops` to both stores, checking agreement after every step.
fn check(ops: &[Op], seg_capacity: usize) -> Result<(), TestCaseError> {
    let mut table = Table::with_segment_capacity(schema(), seg_capacity);
    let mut model: BTreeMap<u64, Row> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(row) => {
                let id = table.insert(row.clone()).unwrap();
                prop_assert!(model.insert(id.0, row.clone()).is_none());
            }
            Op::InsertAt(id, row) => {
                table.insert_at(RowId(*id), row.clone()).unwrap();
                model.insert(*id, row.clone());
            }
            Op::Update(id, row) => {
                let expect = model.get(id).cloned();
                match table.update(RowId(*id), row.clone()) {
                    Ok(old) => {
                        prop_assert_eq!(Some(old), expect);
                        model.insert(*id, row.clone());
                    }
                    Err(_) => prop_assert!(expect.is_none()),
                }
            }
            Op::Delete(id) => {
                let expect = model.remove(id);
                match table.delete(RowId(*id)) {
                    Ok(old) => prop_assert_eq!(Some(old), expect),
                    Err(_) => prop_assert!(expect.is_none()),
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }
    // Full-scan agreement, order included.
    let got: Vec<(u64, Row)> = table.scan().map(|(id, r)| (id.0, r)).collect();
    let want: Vec<(u64, Row)> = model.iter().map(|(id, r)| (*id, r.clone())).collect();
    prop_assert_eq!(got, want);
    // Point-lookup agreement, including ids never inserted.
    for id in 0..56 {
        prop_assert_eq!(table.get(RowId(id)), model.get(&id).cloned());
    }
    Ok(())
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(96)))]

    /// Tiny segments (capacity 1..8) force many-segment layouts, so
    /// revives, splices and cross-segment document order all trigger
    /// within a few dozen ops.
    #[test]
    fn segmented_store_matches_btreemap_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seg_capacity in 1usize..8,
    ) {
        check(&ops, seg_capacity)?;
    }
}

#[test]
fn default_capacity_store_matches_model_across_segment_boundary() {
    // At the production segment capacity (1024) the same invariant must
    // hold across a real segment boundary: fill past one segment, punch
    // holes, splice a deleted id back, update across both segments.
    let mut table = Table::new(schema());
    let mut model: BTreeMap<u64, Row> = BTreeMap::new();
    let mk = |i: i64| {
        vec![
            Value::Int(i),
            Value::Float(i as f64 / 2.0),
            Value::Text(format!("r{i}")),
        ]
    };
    for i in 0..2500i64 {
        let id = table.insert(mk(i)).unwrap();
        model.insert(id.0, mk(i));
    }
    for id in (0..2500u64).step_by(7) {
        table.delete(RowId(id)).unwrap();
        model.remove(&id);
    }
    for id in (1..2500u64).step_by(13) {
        if model.contains_key(&id) {
            table.update(RowId(id), mk(-(id as i64))).unwrap();
            model.insert(id, mk(-(id as i64)));
        }
    }
    // Splice previously deleted ids back in below the high-water mark.
    for id in [0u64, 7, 700, 2499] {
        table.insert_at(RowId(id), mk(9000 + id as i64)).unwrap();
        model.insert(id, mk(9000 + id as i64));
    }
    assert_eq!(table.len(), model.len());
    let got: Vec<(u64, Row)> = table.scan().map(|(id, r)| (id.0, r)).collect();
    let want: Vec<(u64, Row)> = model.iter().map(|(id, r)| (*id, r.clone())).collect();
    assert_eq!(got, want);
}
