//! Transaction-layer tests: MVCC snapshot isolation, non-blocking
//! readers, group-commit failure semantics, checkpoint/rotation crash
//! windows, and background maintenance.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;
use xomatiq_relstore::wal::WalRecord;
use xomatiq_relstore::{
    Column, Database, FaultConfig, FaultyIo, SlowIo, TableSchema, Value, WalIo,
};

fn wal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-txn-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.wal", std::process::id()));
    for suffix in ["", ".old", ".ckpt", ".ckpt.tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(p));
    }
    path
}

fn sibling(path: &std::path::Path, suffix: &str) -> PathBuf {
    let mut p = path.as_os_str().to_os_string();
    p.push(suffix);
    PathBuf::from(p)
}

/// Frames a record exactly as the log does: `len | fnv1a(payload) | payload`.
fn frame(buf: &mut Vec<u8>, record: &WalRecord) {
    fn fnv1a(bytes: &[u8]) -> u32 {
        let mut hash: u32 = 0x811c_9dc5;
        for b in bytes {
            hash ^= u32::from(*b);
            hash = hash.wrapping_mul(0x0100_0193);
        }
        hash
    }
    let payload: Bytes = record.encode();
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    buf.extend_from_slice(&payload);
}

// ---------------------------------------------------------------------------
// MVCC snapshot isolation
// ---------------------------------------------------------------------------

#[test]
fn snapshot_query_sees_pre_update_rows_across_executors() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT, b TEXT)").run().unwrap();
    for i in 0..50i64 {
        db.query("INSERT INTO t VALUES (?, ?)")
            .bind(i)
            .bind(format!("v{i}"))
            .run()
            .unwrap();
    }
    let sql = "SELECT a, b FROM t ORDER BY a";
    // Pin three snapshots (streaming, parallel, reference) BEFORE the
    // bulk update...
    let q_stream = db.query(sql).with_workers(1);
    let q_parallel = db.query(sql).with_workers(4);
    let q_reference = db.query(sql).via_reference();
    // ...then overwrite every row.
    db.query("UPDATE t SET b = 'changed'").run().unwrap();

    let streamed = q_stream.run().unwrap().rows;
    let parallel = q_parallel.run().unwrap().rows;
    let reference = q_reference.run().unwrap().rows;
    assert_eq!(streamed.len(), 50);
    for (i, row) in streamed.rows().iter().enumerate() {
        assert_eq!(row[1], Value::Text(format!("v{i}")), "row {i} mutated");
    }
    // Byte-identical across all three executors.
    assert_eq!(streamed, parallel);
    assert_eq!(streamed, reference);

    // A query pinned AFTER the update sees the new state.
    let fresh = db.query(sql).run().unwrap().rows;
    for row in fresh.rows() {
        assert_eq!(row[1], Value::Text("changed".into()));
    }
}

#[test]
fn readers_never_block_on_inflight_writer() {
    // Every fsync takes ~300ms, so a commit is in flight for a long,
    // observable window.
    let io = FaultyIo::new(21, FaultConfig::none());
    let slow = SlowIo::new(Box::new(io), Duration::from_millis(300));
    let (db, _) = Database::open_with_io(Box::new(slow)).unwrap();
    let db = Arc::new(db);
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1)").run().unwrap();

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let start = Instant::now();
            db.query("INSERT INTO t VALUES (2)").run().unwrap();
            start.elapsed()
        })
    };
    // Give the writer time to apply its insert and enter the flush.
    std::thread::sleep(Duration::from_millis(80));
    let start = Instant::now();
    let rows = db.query("SELECT a FROM t ORDER BY a").run().unwrap().rows;
    let read_elapsed = start.elapsed();
    // The reader returned the pre-commit snapshot, fast, while the
    // writer was still waiting on its fsync.
    assert_eq!(rows.rows(), &[vec![Value::Int(1)]]);
    assert!(
        read_elapsed < Duration::from_millis(200),
        "read took {read_elapsed:?} — blocked on the in-flight writer?"
    );
    let write_elapsed = writer.join().unwrap();
    assert!(
        write_elapsed >= Duration::from_millis(250),
        "writer finished in {write_elapsed:?} — SlowIo not in the path?"
    );
    // Once the commit is durable the new row is visible.
    assert_eq!(db.row_count("t").unwrap(), 2);
}

// ---------------------------------------------------------------------------
// Group commit failure semantics
// ---------------------------------------------------------------------------

#[test]
fn group_commit_failure_poisons_every_waiter() {
    let io = FaultyIo::new(13, FaultConfig::none());
    let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (0)").run().unwrap();
    let db = Arc::new(db);

    // From here every fsync fails: whichever flush batch forms, every
    // transaction in it (and everything queued behind it) must observe
    // the failure.
    io.set_config(FaultConfig {
        fsync_fail_in: 1,
        ..FaultConfig::none()
    });
    let barrier = Arc::new(Barrier::new(4));
    let workers: Vec<_> = (1..=4i64)
        .map(|i| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                db.query("INSERT INTO t VALUES (?)").bind(i).run()
            })
        })
        .collect();
    for w in workers {
        let result = w.join().unwrap();
        let err = result.expect_err("a commit in a failed batch must error");
        assert!(err.to_string().contains("poison"), "{err}");
    }
    // Nothing from the failed batch is visible, and the database refuses
    // further commits even though the disk has recovered...
    assert_eq!(db.row_count("t").unwrap(), 1);
    io.set_config(FaultConfig::none());
    assert!(db.query("INSERT INTO t VALUES (9)").run().is_err());
    // ...until reopened.
    drop(db);
    let (db2, _) = Database::open_with_io(Box::new(io)).unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 1);
    db2.query("INSERT INTO t VALUES (9)").run().unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 2);
}

// ---------------------------------------------------------------------------
// Checkpoint / rotation crash windows
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_truncates_log_and_keeps_one_generation() {
    let path = wal_path("rotate");
    let db = Database::open(&path).unwrap();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    for i in 0..30i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap();
    }
    let before = std::fs::metadata(&path).unwrap().len();
    db.checkpoint().unwrap();
    let after = std::fs::metadata(&path).unwrap().len();
    assert!(
        after < before,
        "active log should shrink: {before} -> {after}"
    );
    assert!(sibling(&path, ".ckpt").exists());
    assert!(sibling(&path, ".old").exists());
    let first_old = std::fs::metadata(sibling(&path, ".old")).unwrap().len();

    // A second checkpoint replaces (not accumulates) the rotated
    // generation: exactly one `.old` ever exists.
    for i in 30..40i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap();
    }
    db.checkpoint().unwrap();
    let second_old = std::fs::metadata(sibling(&path, ".old")).unwrap().len();
    assert!(second_old < first_old, "old generation was not replaced");
    drop(db);

    let (db2, report) = Database::open_with_report(&path).unwrap();
    assert!(report.checkpoint_csn > 0);
    assert_eq!(report.transactions_applied, 0); // nothing after the checkpoint
    assert_eq!(db2.row_count("t").unwrap(), 40);
}

#[test]
fn stale_checkpoint_image_without_rotation_is_skipped_not_reapplied() {
    // Simulate a crash between writing the checkpoint image and rotating
    // the log: the image covers a prefix of commits that are ALL still in
    // the active log. Recovery must skip the covered prefix by CSN — not
    // apply those commits twice.
    let io = FaultyIo::new(31, FaultConfig::none());
    let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
    db.query("CREATE TABLE t (a INT, b TEXT)").run().unwrap(); // CSN 1
    for i in 0..3i64 {
        db.query("INSERT INTO t VALUES (?, ?)")
            .bind(i)
            .bind(format!("v{i}"))
            .run()
            .unwrap(); // CSNs 2, 3, 4
    }
    drop(db);

    // Hand-craft the image a checkpoint at CSN 3 would have written
    // (schema + the first two rows + the completeness footer).
    let schema = TableSchema::new(
        "t",
        vec![
            Column::new("a", xomatiq_relstore::DataType::Int),
            Column::new("b", xomatiq_relstore::DataType::Text),
        ],
    );
    let mut image = Vec::new();
    frame(&mut image, &WalRecord::CreateTable { schema });
    for i in 0..2u64 {
        frame(
            &mut image,
            &WalRecord::Insert {
                tx: 0,
                table: "t".into(),
                row_id: xomatiq_relstore::table::RowId(i),
                row: vec![Value::Int(i as i64), Value::Text(format!("v{i}"))],
            },
        );
    }
    frame(&mut image, &WalRecord::Checkpoint { csn: 3 });
    let mut side_writer = io.clone();
    side_writer.put_side(&image).unwrap();

    let (db2, report) = Database::open_with_io(Box::new(io)).unwrap();
    assert_eq!(report.checkpoint_csn, 3);
    // CSNs 1..=3 were image-covered and skipped; only CSN 4 replayed.
    assert_eq!(report.transactions_skipped, 3);
    assert_eq!(report.transactions_applied, 1);
    assert_eq!(db2.row_count("t").unwrap(), 3);
    let rows = db2
        .query("SELECT a, b FROM t ORDER BY a")
        .run()
        .unwrap()
        .rows;
    for (i, row) in rows.rows().iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64));
        assert_eq!(row[1], Value::Text(format!("v{i}")));
    }
}

#[test]
fn missing_rotation_marker_is_repaired_on_open() {
    // Simulate a crash after rotation but before the fresh log's leading
    // Checkpoint marker: a valid image beside a completely empty log.
    let io = FaultyIo::new(37, FaultConfig::none());
    let schema = TableSchema::new("t", vec![Column::new("a", xomatiq_relstore::DataType::Int)]);
    let mut image = Vec::new();
    frame(&mut image, &WalRecord::CreateTable { schema });
    for i in 0..2u64 {
        frame(
            &mut image,
            &WalRecord::Insert {
                tx: 0,
                table: "t".into(),
                row_id: xomatiq_relstore::table::RowId(i),
                row: vec![Value::Int(i as i64)],
            },
        );
    }
    frame(&mut image, &WalRecord::Checkpoint { csn: 3 });
    let mut side_writer = io.clone();
    side_writer.put_side(&image).unwrap();

    let (db, report) = Database::open_with_io(Box::new(io.clone())).unwrap();
    assert_eq!(report.checkpoint_csn, 3);
    assert_eq!(db.row_count("t").unwrap(), 2);
    // Open repaired the marker, so commits made now are counted from the
    // checkpoint's CSN — the next recovery replays them instead of
    // mistaking them for image-covered history.
    db.query("INSERT INTO t VALUES (10)").run().unwrap();
    db.query("INSERT INTO t VALUES (11)").run().unwrap();
    drop(db);
    let (db2, report2) = Database::open_with_io(Box::new(io)).unwrap();
    assert_eq!(report2.checkpoint_csn, 3);
    assert_eq!(report2.transactions_applied, 2);
    assert_eq!(report2.transactions_skipped, 0);
    assert_eq!(db2.row_count("t").unwrap(), 4);
}

#[test]
fn corrupted_checkpoint_image_fails_loudly_to_full_replay() {
    let io = FaultyIo::new(41, FaultConfig::none());
    let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    for i in 0..5i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap();
    }
    // A checkpoint image exists but the log has NOT been rotated (the
    // pre-rotation crash window), then the image rots on disk.
    let mut image = Vec::new();
    frame(&mut image, &WalRecord::Checkpoint { csn: 1 });
    let mut side_writer = io.clone();
    side_writer.put_side(&image).unwrap();
    io.corrupt_side(4, 0xff);
    drop(db);

    let (db2, report) = Database::open_with_io(Box::new(io)).unwrap();
    // The damage is reported loudly and recovery falls back to replaying
    // the full, un-rotated log — nothing is lost.
    assert!(
        report
            .replay_errors
            .iter()
            .any(|e| e.contains("checkpoint image")),
        "expected a loud image complaint, got {:?}",
        report.replay_errors
    );
    assert_eq!(report.checkpoint_csn, 0);
    assert_eq!(db2.row_count("t").unwrap(), 5);
}

// ---------------------------------------------------------------------------
// Background maintenance
// ---------------------------------------------------------------------------

#[test]
fn compact_segments_reclaims_tombstones_and_preserves_queries() {
    let db = Database::in_memory();
    db.query("CREATE TABLE t (a INT, b TEXT)").run().unwrap();
    for i in 0..200i64 {
        db.query("INSERT INTO t VALUES (?, ?)")
            .bind(i)
            .bind(format!("v{i}"))
            .run()
            .unwrap();
    }
    db.query("DELETE FROM t WHERE a < 150").run().unwrap();
    let rewritten = db.compact_segments();
    assert!(rewritten >= 1, "tombstone-heavy segment not compacted");
    // Contents, order and row identity are untouched.
    let rows = db.query("SELECT a FROM t ORDER BY a").run().unwrap().rows;
    let got: Vec<i64> = rows.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    let want: Vec<i64> = (150..200).collect();
    assert_eq!(got, want);
    // And the table keeps working for further DML.
    db.query("INSERT INTO t VALUES (999, 'after')")
        .run()
        .unwrap();
    assert_eq!(db.row_count("t").unwrap(), 51);
}

#[test]
fn background_maintenance_checkpoints_and_survives_crash() {
    let io = FaultyIo::new(47, FaultConfig::none());
    let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
    let db = Arc::new(db);
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    for i in 0..50i64 {
        db.query("INSERT INTO t VALUES (?)").bind(i).run().unwrap();
    }
    db.query("DELETE FROM t WHERE a < 40").run().unwrap();

    db.start_maintenance(Duration::from_millis(20));
    // Wait until the maintenance thread has taken at least one checkpoint.
    let deadline = Instant::now() + Duration::from_secs(5);
    while io.side_bytes().is_none() {
        assert!(Instant::now() < deadline, "maintenance never checkpointed");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Writes keep working while maintenance runs in the background.
    db.query("INSERT INTO t VALUES (100)").run().unwrap();
    db.stop_maintenance();
    drop(db);

    // Crash: whatever instant this lands on, recovery reproduces exactly
    // the acknowledged state.
    io.crash();
    let (db2, report) = Database::open_with_io(Box::new(io)).unwrap();
    assert!(report.checkpoint_csn > 0, "checkpoint not recorded");
    let rows = db2.query("SELECT a FROM t ORDER BY a").run().unwrap().rows;
    let got: Vec<i64> = rows.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    let mut want: Vec<i64> = (40..50).collect();
    want.push(100);
    assert_eq!(got, want);
}
