//! Transaction-layer property tests: interleaved concurrent commits,
//! torn checkpoints, and crashes during background maintenance.
//!
//! The oracle throughout: recovery yields a state explainable as a
//! prefix of the committed (acknowledged) sequence — never a phantom
//! row, never a half-applied batch, never a hole.

#![allow(deprecated)] // uses the terse legacy `execute` in oracles

use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use xomatiq_relstore::{Database, FaultConfig, FaultyIo};

fn recovered_keys(db: &Database) -> Vec<i64> {
    db.execute("SELECT a FROM t ORDER BY a")
        .unwrap()
        .rows()
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect()
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(48)))]

    /// Interleaved concurrent committers on a faulty disk. Each thread
    /// inserts its own keys in order; after a crash and recovery:
    ///   - the recovered keys per thread are a PREFIX of that thread's
    ///     attempts (log order respects per-thread commit order, and
    ///     corruption only ever truncates);
    ///   - no phantom keys appear;
    ///   - with only fsync faults (no torn/flipped writes), every
    ///     acknowledged commit survives — a failed group fsync must not
    ///     silently drop some waiters while acking others.
    #[test]
    fn interleaved_concurrent_commits_recover_per_thread_prefixes(
        seed in 0u64..u64::MAX,
        threads in 2usize..=4,
        per_thread in 2usize..=6,
        fsync_fail_in in 0u32..8,
        torn_write_in in 0u32..8,
    ) {
        let cfg = FaultConfig {
            torn_write_in,
            bit_flip_in: 0,
            fsync_fail_in,
            read_fail_in: 0,
        };
        let io = FaultyIo::new(seed, FaultConfig::none());
        let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        io.set_config(cfg);
        let db = Arc::new(db);

        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let mut acked = Vec::new();
                    for i in 0..per_thread {
                        let key = (t as i64) * 1000 + i as i64;
                        match db.execute(&format!("INSERT INTO t VALUES ({key})")) {
                            Ok(_) => acked.push(key),
                            // Poison is sticky; later attempts keep
                            // failing, which the prefix oracle absorbs.
                            Err(_) => break,
                        }
                    }
                    acked
                })
            })
            .collect();
        let acked_per_thread: Vec<Vec<i64>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        drop(db);

        io.crash();
        io.set_config(FaultConfig::none());
        let (recovered, report) = Database::open_with_io(Box::new(io)).unwrap();
        let keys = recovered_keys(&recovered);

        for (t, acked) in acked_per_thread.iter().enumerate() {
            let mine: Vec<i64> = keys
                .iter()
                .copied()
                .filter(|k| (k / 1000) as usize == t)
                .collect();
            // Per-thread prefix of the attempted sequence.
            let attempted: Vec<i64> =
                (0..per_thread).map(|i| (t as i64) * 1000 + i as i64).collect();
            prop_assert!(
                mine.len() <= attempted.len() && mine[..] == attempted[..mine.len()],
                "thread {t}: recovered {mine:?} is not a prefix of {attempted:?}\n\
                 report {report:?}"
            );
            // Durability: with no torn writes, an ack is a promise.
            if torn_write_in == 0 {
                prop_assert!(
                    mine.len() >= acked.len(),
                    "thread {t}: acked {acked:?} but only {mine:?} survived the \
                     crash\nreport {report:?}"
                );
            }
        }
        // No phantom keys from any source.
        for k in &keys {
            let (t, i) = ((k / 1000) as usize, (k % 1000) as usize);
            prop_assert!(t < threads && i < per_thread, "phantom key {k}");
        }
        recovered.execute("INSERT INTO t VALUES (999999)").unwrap();
    }

    /// A checkpoint whose side-file write fails is a non-event: the
    /// database stays usable and un-poisoned, and recovery falls back to
    /// replaying the full (never-rotated) log — losing nothing.
    #[test]
    fn torn_checkpoint_falls_back_to_full_replay(
        seed in 0u64..u64::MAX,
        before in 1usize..12,
        after in 1usize..12,
    ) {
        let io = FaultyIo::new(seed, FaultConfig::none());
        let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..before {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        // Every durability op fails for the duration of the checkpoint:
        // its first fsync (the side-image write) errors out.
        io.set_config(FaultConfig { fsync_fail_in: 1, ..FaultConfig::none() });
        prop_assert!(db.checkpoint().is_err());
        io.set_config(FaultConfig::none());
        // The failure did not poison the handle: commits keep working.
        for i in before..(before + after) {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        drop(db);

        io.crash();
        let (recovered, report) = Database::open_with_io(Box::new(io)).unwrap();
        prop_assert_eq!(report.checkpoint_csn, 0, "no image should exist");
        let keys = recovered_keys(&recovered);
        let want: Vec<i64> = (0..(before + after) as i64).collect();
        prop_assert_eq!(keys, want, "full replay must reproduce every commit");
    }

    /// Maintenance (checkpoints + segment compaction) interleaved at
    /// arbitrary points in a workload, then a crash: the recovered state
    /// is exactly the acknowledged state — maintenance neither loses nor
    /// resurrects data, wherever the crash lands relative to it.
    #[test]
    fn crash_after_interleaved_maintenance_recovers_acked_state(
        seed in 0u64..u64::MAX,
        plan in prop::collection::vec(
            prop_oneof![
                4 => (0i64..1000).prop_map(MaintOp::Insert),
                2 => (0i64..1000).prop_map(MaintOp::Delete),
                1 => Just(MaintOp::Checkpoint),
                1 => Just(MaintOp::Compact),
            ],
            1..30,
        ),
    ) {
        let io = FaultyIo::new(seed, FaultConfig::none());
        let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let mut model: Vec<i64> = Vec::new();
        for op in &plan {
            match op {
                MaintOp::Insert(k) => {
                    db.execute(&format!("INSERT INTO t VALUES ({k})")).unwrap();
                    model.push(*k);
                }
                MaintOp::Delete(k) => {
                    db.execute(&format!("DELETE FROM t WHERE a = {k}")).unwrap();
                    model.retain(|m| m != k);
                }
                MaintOp::Checkpoint => db.checkpoint().unwrap(),
                MaintOp::Compact => {
                    db.compact_segments();
                }
            }
        }
        drop(db);

        io.crash();
        let (recovered, report) = Database::open_with_io(Box::new(io)).unwrap();
        let keys = recovered_keys(&recovered);
        let mut want = model;
        want.sort_unstable();
        prop_assert_eq!(
            keys, want,
            "maintenance + crash changed the acked state\nreport {:?}", report
        );
        recovered.execute("INSERT INTO t VALUES (999999)").unwrap();
    }
}

/// One step of the maintenance-interleaving plan.
#[derive(Debug, Clone)]
enum MaintOp {
    Insert(i64),
    Delete(i64),
    Checkpoint,
    Compact,
}
