//! Streaming-executor behaviour: O(k) materialization bounds for
//! `LIMIT`/Top-K pushdown, plan-shape assertions, and the aggregate-layer
//! regression tests (integer SUM precision and overflow).

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use xomatiq_relstore::{Database, Value};

/// A database with one `n`-row table `big(a INT, b TEXT)`.
fn big_db(n: i64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (a INT, b TEXT)").unwrap();
    let stmts: Vec<String> = (0..n)
        .map(|i| format!("INSERT INTO big VALUES ({i}, 'row{i}')"))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    db
}

#[test]
fn limit_over_scan_stops_pulling_and_buffers_nothing() {
    let db = big_db(10_000);
    let (rs, stats) = db.query_with_stats("SELECT a FROM big LIMIT 10").unwrap();
    assert_eq!(rs.rows().len(), 10);
    // The limit satisfies itself from the first 10 rows: the scan never
    // visits the other 9 990, and no operator buffers anything.
    assert_eq!(stats.rows_scanned, 10, "{stats:?}");
    assert_eq!(stats.buffered_peak, 0, "{stats:?}");
    assert_eq!(stats.rows_emitted, 10);
    // No index exists, so the access path must not report probes.
    assert_eq!(stats.index_probes, 0, "{stats:?}");
    assert_eq!(stats.keyword_postings_read, 0, "{stats:?}");

    // OFFSET still only pulls offset + limit rows.
    let (rs, stats) = db
        .query_with_stats("SELECT a FROM big LIMIT 10 OFFSET 25")
        .unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(25));
    assert_eq!(stats.rows_scanned, 35, "{stats:?}");
    assert_eq!(stats.buffered_peak, 0, "{stats:?}");
}

#[test]
fn filtered_limit_stops_at_the_kth_match() {
    let db = big_db(10_000);
    let (rs, stats) = db
        .query_with_stats("SELECT a FROM big WHERE a >= 100 LIMIT 5")
        .unwrap();
    assert_eq!(rs.rows().len(), 5);
    // `a >= 100` is sargable, so the scan runs segment-at-a-time: the
    // kernel pre-filters the whole first segment (1 024 rows, segment
    // capacity) and the limit is satisfied before a second segment is
    // touched. Pre-columnar this was 105 (100 misses + 5 matches row by
    // row); the accounting is now segment-granular but still O(k) in
    // segments rather than O(n) in rows.
    assert_eq!(stats.rows_scanned, 1024, "{stats:?}");
    assert_eq!(stats.buffered_peak, 0, "{stats:?}");
    assert_eq!(stats.segments_pruned, 0, "{stats:?}");
}

#[test]
fn topk_buffers_only_k_rows() {
    let db = big_db(10_000);
    assert!(db
        .explain("SELECT a FROM big ORDER BY a DESC LIMIT 5")
        .unwrap()
        .contains("TopK"),);
    let (rs, stats) = db
        .query_with_stats("SELECT a FROM big ORDER BY a DESC LIMIT 5")
        .unwrap();
    let got: Vec<i64> = rs.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![9999, 9998, 9997, 9996, 9995]);
    // Top-K must read everything but retain only the k best rows.
    assert_eq!(stats.rows_scanned, 10_000, "{stats:?}");
    assert_eq!(stats.buffered_peak, 5, "{stats:?}");
    assert_eq!(stats.index_probes, 0, "{stats:?}");
}

#[test]
fn index_scan_probes_once_and_reads_only_matches() {
    // The O(k) bound for point lookups: with 10 000 rows and an index on
    // `a`, an equality query must touch one row via one probe.
    let db = big_db(10_000);
    db.execute("CREATE INDEX idx_big_a ON big (a)").unwrap();
    assert!(db
        .explain("SELECT b FROM big WHERE a = 4321")
        .unwrap()
        .contains("IndexScan"));
    let (rs, stats) = db
        .query_with_stats("SELECT b FROM big WHERE a = 4321")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(stats.index_probes, 1, "{stats:?}");
    assert_eq!(stats.rows_scanned, 1, "{stats:?}");
    assert_eq!(stats.keyword_postings_read, 0, "{stats:?}");

    // Index maintenance (inserts, an in-place update of an existing key,
    // deletes) must not change the observable counters of the same query.
    db.execute("INSERT INTO big VALUES (20000, 'churn')")
        .unwrap();
    db.execute("UPDATE big SET b = 'still row 9' WHERE a = 9")
        .unwrap();
    db.execute("DELETE FROM big WHERE a = 20000").unwrap();
    let (rs, stats2) = db
        .query_with_stats("SELECT b FROM big WHERE a = 4321")
        .unwrap();
    assert_eq!(rs.rows().len(), 1);
    assert_eq!(stats2.index_probes, stats.index_probes, "{stats2:?}");
    assert_eq!(stats2.rows_scanned, stats.rows_scanned, "{stats2:?}");
    assert_eq!(stats2.buffered_peak, stats.buffered_peak, "{stats2:?}");
}

#[test]
fn keyword_scan_counts_probe_and_postings() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE docs (id INT, body TEXT)").unwrap();
    db.execute("CREATE KEYWORD INDEX kw_body ON docs (body)")
        .unwrap();
    for i in 0..1_000 {
        let body = if i % 100 == 0 {
            "rare keyword"
        } else {
            "filler"
        };
        db.execute(&format!("INSERT INTO docs VALUES ({i}, '{body}')"))
            .unwrap();
    }
    let (rs, stats) = db
        .query_with_stats("SELECT id FROM docs WHERE CONTAINS(body, 'rare')")
        .unwrap();
    assert_eq!(rs.rows().len(), 10);
    // One inverted-index lookup; the posting list carries exactly the 10
    // matching row ids, and only those rows are fetched.
    assert_eq!(stats.index_probes, 1, "{stats:?}");
    assert_eq!(stats.keyword_postings_read, 10, "{stats:?}");
    assert_eq!(stats.rows_scanned, 10, "{stats:?}");
}

#[test]
fn topk_with_offset_buffers_offset_plus_k() {
    let db = big_db(1_000);
    let (rs, stats) = db
        .query_with_stats("SELECT a FROM big ORDER BY a LIMIT 3 OFFSET 7")
        .unwrap();
    let got: Vec<i64> = rs.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, vec![7, 8, 9]);
    assert_eq!(stats.buffered_peak, 10, "{stats:?}");
}

#[test]
fn topk_limit_zero_pulls_nothing() {
    let db = big_db(1_000);
    let (rs, stats) = db
        .query_with_stats("SELECT a FROM big ORDER BY a LIMIT 0")
        .unwrap();
    assert!(rs.rows().is_empty());
    assert_eq!(stats.rows_scanned, 0, "{stats:?}");
    assert_eq!(stats.buffered_peak, 0, "{stats:?}");
}

#[test]
fn full_sort_still_buffers_everything() {
    // Sanity check on the counter itself: an unfused ORDER BY (no LIMIT)
    // is a genuine pipeline breaker.
    let db = big_db(1_000);
    let (rs, stats) = db.query_with_stats("SELECT a FROM big ORDER BY a").unwrap();
    assert_eq!(rs.rows().len(), 1_000);
    assert_eq!(stats.buffered_peak, 1_000, "{stats:?}");
}

#[test]
fn topk_ties_keep_stable_input_order() {
    // Rows with equal sort keys must come out in insertion order, exactly
    // as a stable full sort would emit them.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (grp INT, tag TEXT)").unwrap();
    for (g, tag) in [(1, "a"), (0, "b"), (1, "c"), (0, "d"), (1, "e"), (0, "f")] {
        db.execute(&format!("INSERT INTO t VALUES ({g}, '{tag}')"))
            .unwrap();
    }
    let rs = db
        .execute("SELECT tag FROM t ORDER BY grp LIMIT 4")
        .unwrap();
    let got: Vec<&str> = rs
        .rows()
        .iter()
        .map(|r| match &r[0] {
            Value::Text(s) => s.as_str(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(got, vec!["b", "d", "f", "a"]);
}

#[test]
fn hash_join_probe_side_streams() {
    // Join a large probe side against a small build side under a limit:
    // only the build side (plus matches) may be buffered.
    let db = Database::in_memory();
    db.execute("CREATE TABLE facts (id INT, val TEXT)").unwrap();
    db.execute("CREATE TABLE dims (id INT, name TEXT)").unwrap();
    let stmts: Vec<String> = (0..5_000)
        .map(|i| format!("INSERT INTO facts VALUES ({}, 'v{i}')", i % 100))
        .collect();
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    for i in 0..100 {
        db.execute(&format!("INSERT INTO dims VALUES ({i}, 'n{i}')"))
            .unwrap();
    }
    let (rs, stats) = db
        .query_with_stats("SELECT f.val, d.name FROM facts f, dims d WHERE f.id = d.id LIMIT 10")
        .unwrap();
    assert_eq!(rs.rows().len(), 10);
    // The build side holds 100 rows; the probe (facts) must not be
    // materialized, and the limit stops the probe after ~10 rows.
    assert!(stats.buffered_peak <= 110, "{stats:?}");
    assert!(stats.rows_scanned < 200, "{stats:?}");
}

#[test]
fn sum_of_large_ints_is_exact() {
    // Seed regression: SUM accumulated all-int groups in f64 and cast
    // back, so totals beyond 2^53 silently lost precision — this exact
    // query returned 1024 instead of 806.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (9223372036854775806)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (-9223372036854775000)")
        .unwrap();
    let rs = db.execute("SELECT SUM(v) FROM t").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(806));
}

#[test]
fn sum_overflow_is_a_typed_error() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (9223372036854775807)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let err = db.execute("SELECT SUM(v) FROM t").unwrap_err();
    assert!(
        err.to_string().contains("integer overflow"),
        "unexpected error: {err}"
    );
    // AVG over the same data stays in float land and still works.
    assert!(db.execute("SELECT AVG(v) FROM t").is_ok());
}

#[test]
fn arithmetic_overflow_surfaces_through_sql() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (9223372036854775807)")
        .unwrap();
    let err = db.execute("SELECT v + 1 FROM t").unwrap_err();
    assert!(err.to_string().contains("integer overflow"), "{err}");
    // i64::MIN / -1 must error, not panic (seed aborted the process here).
    db.execute("CREATE TABLE m (v INT)").unwrap();
    db.execute("INSERT INTO m VALUES (-9223372036854775807)")
        .unwrap();
    db.execute("UPDATE m SET v = v - 1").unwrap();
    let err = db.execute("SELECT v / -1 FROM m").unwrap_err();
    assert!(err.to_string().contains("integer overflow"), "{err}");
}

#[test]
fn stats_are_sane_for_aggregates_and_distinct() {
    let db = big_db(500);
    // Aggregation buffers its groups; COUNT over one global group.
    let (rs, stats) = db.query_with_stats("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(rs.rows()[0][0], Value::Int(500));
    assert_eq!(stats.rows_scanned, 500);
    // DISTINCT over a unique column retains every row key.
    let (rs, stats) = db.query_with_stats("SELECT DISTINCT a FROM big").unwrap();
    assert_eq!(rs.rows().len(), 500);
    assert_eq!(stats.buffered_peak, 500);
}
