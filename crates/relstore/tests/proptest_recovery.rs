//! Crash-recovery property tests.
//!
//! The invariant behind the paper's "crash recovery features of an RDBMS"
//! claim (§2.2): after a crash at ANY byte position in the log, recovery
//! yields the state produced by a prefix of the committed statements —
//! never a torn write, never a half-applied transaction, and always a
//! prefix (no committed statement disappears while a later one survives).

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use proptest::prelude::*;
use xomatiq_relstore::{Database, FaultConfig, FaultyIo, Value};

/// A randomly generated DML statement against a fixed single-table schema.
#[derive(Debug, Clone)]
enum Op {
    Insert { a: i64, b: String },
    UpdateWhere { threshold: i64, b: String },
    DeleteWhere { threshold: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0i64..100, "[a-z]{1,8}").prop_map(|(a, b)| Op::Insert { a, b }),
        1 => (0i64..100, "[a-z]{1,8}")
            .prop_map(|(threshold, b)| Op::UpdateWhere { threshold, b }),
        1 => (0i64..100).prop_map(|threshold| Op::DeleteWhere { threshold }),
    ]
}

impl Op {
    fn sql(&self) -> String {
        match self {
            Op::Insert { a, b } => format!("INSERT INTO t VALUES ({a}, '{b}')"),
            Op::UpdateWhere { threshold, b } => {
                format!("UPDATE t SET b = '{b}' WHERE a < {threshold}")
            }
            Op::DeleteWhere { threshold } => format!("DELETE FROM t WHERE a > {threshold}"),
        }
    }
}

/// The observable state: sorted (a, b) pairs.
fn state_of(db: &Database) -> Vec<(i64, String)> {
    let rs = db.execute("SELECT a, b FROM t ORDER BY a, b").unwrap();
    rs.rows()
        .iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                match &r[1] {
                    Value::Text(s) => s.clone(),
                    other => other.to_string(),
                },
            )
        })
        .collect()
}

fn wal_path(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xomatiq-recovery-prop");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}-{tag}.wal", std::process::id()))
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(24)))]

    /// Crash at an arbitrary byte cut: the recovered state must equal the
    /// state after some prefix of the committed statements.
    #[test]
    fn crash_at_any_point_recovers_a_committed_prefix(
        ops in prop::collection::vec(op_strategy(), 1..25),
        cut_ratio in 0.0f64..1.0,
        tag in 0u64..u64::MAX,
    ) {
        let path = wal_path(tag);
        let _ = std::fs::remove_file(&path);
        {
            let db = Database::open(&path).unwrap();
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            for op in &ops {
                db.execute(&op.sql()).unwrap();
            }
        }
        // All possible prefix states (computed on fresh in-memory engines).
        let mut prefix_states = Vec::with_capacity(ops.len() + 1);
        {
            let oracle = Database::in_memory();
            oracle.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            prefix_states.push(state_of(&oracle));
            for op in &ops {
                oracle.execute(&op.sql()).unwrap();
                prefix_states.push(state_of(&oracle));
            }
        }
        // Crash: truncate the log at an arbitrary point AFTER the schema
        // records (cutting the CREATE TABLE would legitimately lose the
        // table; we want to exercise the DML tail).
        let bytes = std::fs::read(&path).unwrap();
        let schema_end = {
            // Find the end of the first record (CREATE TABLE): length
            // prefix + checksum + payload.
            let len = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
            8 + len
        };
        let cut = schema_end
            + ((bytes.len() - schema_end) as f64 * cut_ratio) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let recovered = Database::open(&path).unwrap();
        let got = state_of(&recovered);
        prop_assert!(
            prefix_states.contains(&got),
            "recovered state is not a committed prefix: {got:?}"
        );
        // And the database remains writable after recovery.
        recovered.execute("INSERT INTO t VALUES (999, 'post')").unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// No crash: reopening yields exactly the final state.
    #[test]
    fn clean_reopen_recovers_everything(
        ops in prop::collection::vec(op_strategy(), 1..25),
        tag in 0u64..u64::MAX,
    ) {
        let path = wal_path(tag);
        let _ = std::fs::remove_file(&path);
        let expected = {
            let db = Database::open(&path).unwrap();
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            for op in &ops {
                db.execute(&op.sql()).unwrap();
            }
            state_of(&db)
        };
        let recovered = Database::open(&path).unwrap();
        prop_assert_eq!(state_of(&recovered), expected);
        let _ = std::fs::remove_file(&path);
    }

    /// Compaction commutes with recovery: compact + reopen = reopen.
    #[test]
    fn compaction_preserves_state(
        ops in prop::collection::vec(op_strategy(), 1..25),
        tag in 0u64..u64::MAX,
    ) {
        let path = wal_path(tag);
        let _ = std::fs::remove_file(&path);
        let expected = {
            let db = Database::open(&path).unwrap();
            db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
            for op in &ops {
                db.execute(&op.sql()).unwrap();
            }
            db.compact().unwrap();
            state_of(&db)
        };
        let recovered = Database::open(&path).unwrap();
        prop_assert_eq!(state_of(&recovered), expected);
        let _ = std::fs::remove_file(&path);
    }
}

// The fault-schedule property: run an arbitrary workload against a disk
// that tears writes, flips bits and fails fsyncs on a seeded schedule,
// crash, recover — and the recovered state must be a prefix of the
// statements that were *acknowledged*, recovery must never panic, and it
// must always produce a recovery report. 120 cases so CI exercises well
// over the 100-schedule floor.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(120)))]

    #[test]
    fn any_fault_schedule_recovers_an_acked_prefix(
        seed in 0u64..u64::MAX,
        ops in prop::collection::vec(op_strategy(), 1..20),
        torn_write_in in 0u32..6,
        bit_flip_in in 0u32..6,
        fsync_fail_in in 0u32..6,
    ) {
        let cfg = FaultConfig {
            torn_write_in,
            bit_flip_in,
            fsync_fail_in,
            read_fail_in: 0,
        };
        // Faults off while the schema is set up; every DML after that
        // runs on the faulty schedule.
        let io = FaultyIo::new(seed, FaultConfig::none());
        let (db, report) = Database::open_with_io(Box::new(io.clone())).unwrap();
        prop_assert!(report.is_clean());
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        io.set_config(cfg);

        let mut acked = Vec::new();
        let mut acked_mutations = 0usize;
        let mut failed = false;
        for op in &ops {
            match db.execute(&op.sql()) {
                Ok(rs) => {
                    // A no-op DML (zero rows matched) writes nothing and
                    // may legitimately succeed on a poisoned log; any
                    // *mutation* acked after a failure is a durability
                    // lie.
                    prop_assert!(
                        !failed || rs.affected() == 0,
                        "a mutation was acked after a sync failure; the \
                         log handle should have been poisoned"
                    );
                    if rs.affected() > 0 {
                        acked_mutations += 1;
                    }
                    acked.push(op.clone());
                }
                Err(_) => failed = true,
            }
        }

        // Crash: unsynced cache is gone; recover with a healthy disk.
        io.crash();
        io.set_config(FaultConfig::none());
        let (recovered, report) = Database::open_with_io(Box::new(io)).unwrap();

        // Every state reachable by a prefix of the acked statements.
        let oracle = Database::in_memory();
        oracle.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let mut prefix_states = Vec::with_capacity(acked.len() + 1);
        prefix_states.push(state_of(&oracle));
        for op in &acked {
            oracle.execute(&op.sql()).unwrap();
            prefix_states.push(state_of(&oracle));
        }
        let got = state_of(&recovered);
        prop_assert!(
            prefix_states.contains(&got),
            "recovered state is not a prefix of the acked statements:\n\
             got      {got:?}\nreport   {report:?}"
        );
        // Never a silently-lost transaction: every acked mutation is a
        // committed transaction on the log, so (applied + dropped) must
        // account for all of them — unless corruption cut the log, which
        // the report then says explicitly.
        prop_assert!(
            report.transactions_applied + report.transactions_dropped.len() >= acked_mutations
                || report.corruption.is_some(),
            "acked transactions unaccounted for: {report:?}"
        );
        // And the recovered database is immediately writable.
        recovered.execute("INSERT INTO t VALUES (999, 'post')").unwrap();
    }
}
