//! Differential property tests for incremental materialized views.
//!
//! The oracle is brutal and simple: after ANY sequence of committed DML,
//! a view's stored contents must be identical to recomputing its
//! defining query from scratch — and that equality must hold under every
//! executor (streaming, morsel-parallel, reference). The views cover the
//! three maintenance pipelines (filter/project map, two-table equi-join
//! reconciliation, additive aggregates with MIN/MAX retraction), so one
//! generator exercises every delta path including the rescan fallback.

use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use xomatiq_relstore::{Database, Value};

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[derive(Debug, Clone)]
enum Op {
    InsertT { id: i64, grp: i64, v: i64 },
    InsertU { id: i64, w: i64 },
    UpdateT { threshold: i64, add: i64 },
    MoveT { from_grp: i64, to_grp: i64 },
    DeleteT { threshold: i64 },
    DeleteU { id: i64 },
}

impl Op {
    fn sql(&self) -> String {
        match self {
            Op::InsertT { id, grp, v } => {
                format!("INSERT INTO t VALUES ({id}, 'g{grp}', {v})")
            }
            Op::InsertU { id, w } => format!("INSERT INTO u VALUES ({id}, {w})"),
            Op::UpdateT { threshold, add } => {
                format!("UPDATE t SET v = v + {add} WHERE v > {threshold}")
            }
            Op::MoveT { from_grp, to_grp } => {
                format!("UPDATE t SET grp = 'g{to_grp}' WHERE grp = 'g{from_grp}'")
            }
            Op::DeleteT { threshold } => format!("DELETE FROM t WHERE v > {threshold}"),
            Op::DeleteU { id } => format!("DELETE FROM u WHERE id = {id}"),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..40, 0i64..4, -20i64..60).prop_map(|(id, grp, v)| Op::InsertT { id, grp, v }),
        2 => (0i64..40, 0i64..50).prop_map(|(id, w)| Op::InsertU { id, w }),
        2 => (-10i64..50, -15i64..15).prop_map(|(threshold, add)| Op::UpdateT { threshold, add }),
        1 => (0i64..4, 0i64..4).prop_map(|(from_grp, to_grp)| Op::MoveT { from_grp, to_grp }),
        2 => (-10i64..50).prop_map(|threshold| Op::DeleteT { threshold }),
        1 => (0i64..40).prop_map(|id| Op::DeleteU { id }),
    ]
}

/// The three maintenance pipelines plus a deferred twin of the aggregate.
const VIEWS: &[(&str, &str, &str)] = &[
    (
        "v_filter",
        "REFRESH ON COMMIT",
        "SELECT id, v + 1 AS vv FROM t WHERE v > 10",
    ),
    (
        "v_join",
        "REFRESH ON COMMIT",
        "SELECT t.id, t.v, u.w FROM t JOIN u ON t.id = u.id WHERE u.w > 5",
    ),
    (
        "v_agg",
        "REFRESH ON COMMIT",
        "SELECT grp, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi, \
         AVG(v) AS mean FROM t GROUP BY grp",
    ),
    (
        "v_lazy",
        "",
        "SELECT grp, COUNT(*) AS n, MAX(v) AS hi FROM t GROUP BY grp",
    ),
];

fn setup(db: &Database) {
    db.query("CREATE TABLE t (id INT, grp TEXT, v INT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE u (id INT, w INT)").run().unwrap();
    for (name, policy, def) in VIEWS {
        db.query(&format!(
            "CREATE MATERIALIZED VIEW {name} {policy} AS {def}"
        ))
        .run()
        .unwrap();
    }
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => "∅".to_string(),
        // AVG emits floats; fixed formatting makes "byte-identical"
        // well-defined across executors.
        Value::Float(f) => format!("{f:.9}"),
        other => other.to_string(),
    }
}

enum Exec {
    Streaming,
    Parallel,
    Reference,
}

fn rows_via(db: &Database, sql: &str, exec: &Exec) -> Vec<Vec<String>> {
    let q = db.query(sql);
    let q = match exec {
        Exec::Streaming => q,
        Exec::Parallel => q.with_workers(4),
        Exec::Reference => q.via_reference(),
    };
    let out = q.run().unwrap();
    let mut rows: Vec<Vec<String>> = out
        .rows
        .rows()
        .iter()
        .map(|r| r.iter().map(render).collect())
        .collect();
    rows.sort();
    rows
}

/// Asserts every view's contents equal a from-scratch recompute of its
/// definition, under all three executors.
fn check_all_views(db: &Database) -> Result<(), TestCaseError> {
    for (name, _, def) in VIEWS {
        for exec in [Exec::Streaming, Exec::Parallel, Exec::Reference] {
            let stored = rows_via(db, &format!("SELECT * FROM {name}"), &exec);
            let truth = rows_via(db, def, &exec);
            prop_assert_eq!(&stored, &truth, "view {} diverged from recompute", name);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(32)))]

    /// Sequential random DML: every committed statement flows through
    /// the on-commit pipelines; the deferred view is refreshed at
    /// checkpoints. All four views must match recompute at every
    /// checkpoint and at the end.
    #[test]
    fn random_dml_keeps_views_identical_to_recompute(
        ops in prop::collection::vec(op_strategy(), 1..40),
        checkpoint_every in 5usize..12,
    ) {
        let db = Database::in_memory();
        setup(&db);
        for (i, op) in ops.iter().enumerate() {
            db.query(&op.sql()).run().unwrap();
            if i.is_multiple_of(checkpoint_every) {
                db.query("REFRESH MATERIALIZED VIEW v_lazy").run().unwrap();
                check_all_views(&db)?;
            }
        }
        db.query("REFRESH MATERIALIZED VIEW v_lazy").run().unwrap();
        check_all_views(&db)?;
    }

    /// Concurrent committers: several threads race interleaved DML
    /// through the group-commit queue. Whatever interleaving the lock
    /// imposes, each commit maintained the views against exactly the
    /// state it committed over — so at quiescence views equal recompute.
    #[test]
    fn concurrent_committers_keep_views_identical_to_recompute(
        per_thread in prop::collection::vec(
            prop::collection::vec(op_strategy(), 1..12), 2..=4),
    ) {
        let db = Arc::new(Database::in_memory());
        setup(&db);
        let barrier = Arc::new(Barrier::new(per_thread.len()));
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|ops| {
                let db = Arc::clone(&db);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for op in ops {
                        db.query(&op.sql()).run().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        db.query("REFRESH MATERIALIZED VIEW v_lazy").run().unwrap();
        check_all_views(&db)?;
    }
}
