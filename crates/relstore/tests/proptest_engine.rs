//! Engine property tests.
//!
//! The central invariant: the planner's access-path choice is an
//! optimization, never a semantic change — indexed and unindexed executions
//! of the same query over the same data return identical row multisets.

#![allow(deprecated)] // exercises the legacy wrappers on purpose

use proptest::prelude::*;
use xomatiq_relstore::{Database, Value};

/// Builds two databases with identical data; one fully indexed.
fn twin_dbs(rows: &[(i64, i64, String)]) -> (Database, Database) {
    let plain = Database::in_memory();
    let indexed = Database::in_memory();
    for db in [&plain, &indexed] {
        db.execute("CREATE TABLE t (a INT, b INT, s TEXT)").unwrap();
    }
    indexed.execute("CREATE INDEX idx_a ON t (a)").unwrap();
    indexed.execute("CREATE INDEX idx_ab ON t (a, b)").unwrap();
    indexed
        .execute("CREATE KEYWORD INDEX kw_s ON t (s)")
        .unwrap();
    for (a, b, s) in rows {
        let sql = format!("INSERT INTO t VALUES ({a}, {b}, '{s}')");
        plain.execute(&sql).unwrap();
        indexed.execute(&sql).unwrap();
    }
    (plain, indexed)
}

fn sorted_rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut rows = db.execute(sql).unwrap().into_rows();
    rows.sort_by(|x, y| {
        for (a, b) in x.iter().zip(y.iter()) {
            let ord = a.total_cmp(b);
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn row_strategy() -> impl Strategy<Value = (i64, i64, String)> {
    (
        0i64..20,
        0i64..10,
        prop::sample::select(vec![
            "alpha beta".to_string(),
            "beta gamma".to_string(),
            "cdc6 protein".to_string(),
            "ketone group".to_string(),
            "plain".to_string(),
        ]),
    )
}

/// Cases per property: the file's default, or `PROPTEST_CASES` when set
/// (the nightly stress job raises it to 1024).
fn prop_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(64)))]

    #[test]
    fn index_never_changes_results(
        rows in prop::collection::vec(row_strategy(), 0..60),
        point in 0i64..20,
        lo in 0i64..10,
        width in 0i64..10,
    ) {
        let (plain, indexed) = twin_dbs(&rows);
        let queries = [
            format!("SELECT a, b, s FROM t WHERE a = {point}"),
            format!("SELECT a, b, s FROM t WHERE a = {point} AND b BETWEEN {lo} AND {}", lo + width),
            format!("SELECT a, b, s FROM t WHERE a >= {lo} AND a <= {}", lo + width),
            "SELECT a, b, s FROM t WHERE CONTAINS(s, 'cdc6')".to_string(),
            "SELECT a, b, s FROM t WHERE CONTAINS(s, 'beta gamma')".to_string(),
        ];
        for sql in &queries {
            prop_assert_eq!(
                sorted_rows(&plain, sql),
                sorted_rows(&indexed, sql),
                "diverged on {}", sql
            );
        }
        // And the indexed side actually used an index for the point query.
        let point_sql = format!("SELECT a FROM t WHERE a = {point}");
        let used_index = indexed.plan(&point_sql).unwrap().plan.uses_index();
        prop_assert!(used_index);
    }

    #[test]
    fn order_by_sorts_totally(rows in prop::collection::vec(row_strategy(), 0..60)) {
        let (db, _) = twin_dbs(&rows);
        let rs = db.execute("SELECT a, b FROM t ORDER BY a, b DESC").unwrap();
        let out = rs.rows();
        for w in out.windows(2) {
            let (x, y) = (&w[0], &w[1]);
            let a_cmp = x[0].total_cmp(&y[0]);
            prop_assert!(a_cmp.is_le());
            if a_cmp.is_eq() {
                prop_assert!(x[1].total_cmp(&y[1]).is_ge());
            }
        }
    }

    #[test]
    fn count_matches_row_count(rows in prop::collection::vec(row_strategy(), 0..60)) {
        let (db, _) = twin_dbs(&rows);
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(rs.rows()[0][0].clone(), Value::Int(rows.len() as i64));
    }

    #[test]
    fn distinct_is_a_set(rows in prop::collection::vec(row_strategy(), 0..60)) {
        let (db, _) = twin_dbs(&rows);
        let rs = db.execute("SELECT DISTINCT a FROM t").unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in rs.rows() {
            prop_assert!(seen.insert(row[0].clone()), "duplicate in DISTINCT output");
        }
        let expected: std::collections::HashSet<i64> = rows.iter().map(|r| r.0).collect();
        prop_assert_eq!(seen.len(), expected.len());
    }

    #[test]
    fn group_by_partitions_rows(rows in prop::collection::vec(row_strategy(), 1..60)) {
        let (db, _) = twin_dbs(&rows);
        let rs = db.execute("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
        let total: i64 = rs.rows().iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
    }

    #[test]
    fn delete_then_count_consistent(
        rows in prop::collection::vec(row_strategy(), 0..40),
        cut in 0i64..20,
    ) {
        let (_, db) = twin_dbs(&rows);
        let expect_remaining = rows.iter().filter(|r| r.0 >= cut).count();
        db.execute(&format!("DELETE FROM t WHERE a < {cut}")).unwrap();
        prop_assert_eq!(db.row_count("t").unwrap(), expect_remaining);
        // Index agrees with the table after the deletes.
        let via_index = db
            .execute(&format!("SELECT COUNT(*) FROM t WHERE a = {cut}"))
            .unwrap();
        let expected = rows.iter().filter(|r| r.0 == cut).count() as i64;
        prop_assert_eq!(via_index.rows()[0][0].clone(), Value::Int(expected));
    }
}
