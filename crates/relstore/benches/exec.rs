//! Executor microbenchmarks: scan, limit-over-scan, Top-K, hash join and
//! keyword query, each timed on the streaming executor and (where the
//! comparison is meaningful) the materializing reference interpreter.
//!
//! Besides the usual console output, results are recorded to
//! `BENCH_exec.json` at the workspace root so future PRs have a perf
//! trajectory to compare against. Set `XOMATIQ_BENCH_SMOKE=1` to run with
//! a tiny dataset — CI uses this to keep the harness from bit-rotting.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xomatiq_relstore::Database;

/// Row count: 50k normally, 500 under `XOMATIQ_BENCH_SMOKE`.
fn scale() -> usize {
    if std::env::var("XOMATIQ_BENCH_SMOKE").is_ok() {
        500
    } else {
        50_000
    }
}

/// `big(a INT, b INT, s TEXT)` with a keyword index on `s`, plus the
/// `facts`/`dims` pair for the join benchmark.
fn build_db(n: usize) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (a INT, b INT, s TEXT)")
        .unwrap();
    db.execute("CREATE KEYWORD INDEX kw_big_s ON big (s)")
        .unwrap();
    db.execute("CREATE TABLE facts (id INT, v INT)").unwrap();
    db.execute("CREATE TABLE dims (id INT, name TEXT)").unwrap();
    let mut stmts: Vec<String> = Vec::with_capacity(2 * n + 64);
    for i in 0..n {
        // ~1 row in 500 carries the needle keyword.
        let s = if i % 500 == 250 {
            "needle in the haystack"
        } else {
            "plain filler text"
        };
        stmts.push(format!("INSERT INTO big VALUES ({i}, {}, '{s}')", i % 97));
    }
    for i in 0..n {
        stmts.push(format!("INSERT INTO facts VALUES ({}, {i})", i % 64));
    }
    for i in 0..64 {
        stmts.push(format!("INSERT INTO dims VALUES ({i}, 'dim{i}')"));
    }
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    db
}

struct Recorder {
    samples: usize,
    results: Vec<(String, f64)>,
}

impl Recorder {
    /// Times `f` over `samples` iterations (after one warmup), prints the
    /// mean, and records it for the JSON report.
    fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        black_box(f()); // warmup
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
        println!("exec/{name}: {ns:.0} ns/iter");
        self.results.push((name.to_string(), ns));
    }

    fn write_json(&self, rows: usize) {
        let mut entries = String::new();
        for (i, (name, ns)) in self.results.iter().enumerate() {
            if i > 0 {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.0}}}"
            ));
        }
        let json = format!(
            "{{\n  \"bench\": \"exec\",\n  \"rows\": {rows},\n  \"results\": [\n{entries}\n  ]\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
        std::fs::write(path, json).expect("write BENCH_exec.json");
        println!("wrote {path}");
    }
}

fn bench_exec(_c: &mut Criterion) {
    let n = scale();
    let db = build_db(n);
    let mut rec = Recorder {
        samples: if n > 1_000 { 10 } else { 30 },
        results: Vec::new(),
    };

    rec.bench("scan_full", || {
        db.execute("SELECT a FROM big").unwrap().rows().len()
    });

    // The tentpole number: LIMIT k over a large scan. The streaming
    // executor pulls k rows; the reference interpreter clones the table.
    let limit_sql = "SELECT a, b FROM big LIMIT 10";
    rec.bench("limit_over_scan/streaming", || {
        db.execute(limit_sql).unwrap().rows().len()
    });
    rec.bench("limit_over_scan/reference", || {
        db.query_reference(limit_sql).unwrap().rows().len()
    });

    // Top-K: bounded heap vs full sort + slice.
    let topk_sql = "SELECT a, b FROM big ORDER BY b DESC, a LIMIT 10";
    rec.bench("topk_sort_limit/streaming", || {
        db.execute(topk_sql).unwrap().rows().len()
    });
    rec.bench("topk_sort_limit/reference", || {
        db.query_reference(topk_sql).unwrap().rows().len()
    });

    // Hash join: build on 64-row dims, probe streams over facts.
    let join_sql = "SELECT f.v, d.name FROM facts f, dims d WHERE f.id = d.id AND f.v < 100";
    rec.bench("hash_join/streaming", || {
        db.execute(join_sql).unwrap().rows().len()
    });
    rec.bench("hash_join/reference", || {
        db.query_reference(join_sql).unwrap().rows().len()
    });

    // Keyword query through the inverted index.
    let kw_sql = "SELECT a FROM big WHERE CONTAINS(s, 'needle')";
    rec.bench("keyword_query/streaming", || {
        db.execute(kw_sql).unwrap().rows().len()
    });

    // Observability overhead: the same per-row-heavy queries with the
    // metrics registry disabled vs enabled. Batches are interleaved and
    // the minimum batch mean is kept on each side, so a scheduler blip
    // during one batch cannot fake (or mask) an overhead regression.
    // With `XOMATIQ_BENCH_ENFORCE` set, instrumented time beyond
    // off-time × 1.10 (+2µs/iter of timer-jitter slack) fails the bench —
    // CI runs the smoke scale this way.
    let enforce = std::env::var("XOMATIQ_BENCH_ENFORCE").is_ok();
    for (name, sql) in [("scan_full", "SELECT a FROM big"), ("hash_join", join_sql)] {
        let run = || db.execute(sql).unwrap().rows().len();
        let (off, on) = min_batch_pair(run);
        println!("exec/overhead/{name}: off {off:.0} ns/iter, on {on:.0} ns/iter");
        rec.results
            .push((format!("overhead/{name}/metrics_off"), off));
        rec.results
            .push((format!("overhead/{name}/metrics_on"), on));
        let budget = off * 1.10 + 2_000.0;
        if enforce {
            assert!(
                on <= budget,
                "instrumented {name} exceeds the 10% overhead budget: \
                 {on:.0} ns/iter on vs {off:.0} ns/iter off"
            );
        } else if on > budget {
            println!("exec/overhead/{name}: WARNING above 10% budget (not enforced)");
        }
    }

    rec.write_json(n);
}

/// Interleaved min-of-batches measurement of `f` with metrics disabled
/// then enabled, returning `(off_ns_per_iter, on_ns_per_iter)`. The
/// registry is left enabled afterwards.
fn min_batch_pair<R>(mut f: impl FnMut() -> R) -> (f64, f64) {
    const BATCHES: usize = 5;
    const ITERS: usize = 8;
    let batch = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    black_box(f()); // warmup
    for _ in 0..BATCHES {
        xomatiq_obs::set_enabled(false);
        off = off.min(batch(&mut || {
            black_box(f());
        }));
        xomatiq_obs::set_enabled(true);
        on = on.min(batch(&mut || {
            black_box(f());
        }));
    }
    (off, on)
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
