//! Executor microbenchmarks: scan, limit-over-scan, Top-K, hash join and
//! keyword query, each timed on the streaming executor and (where the
//! comparison is meaningful) the materializing reference interpreter,
//! plus morsel-parallel scaling (1/2/4 workers) and plan-cache hit/miss
//! latency for the prepared-statement path.
//!
//! Besides the usual console output, results are recorded to
//! `BENCH_exec.json` at the workspace root so future PRs have a perf
//! trajectory to compare against. Set `XOMATIQ_BENCH_SMOKE=1` to run with
//! a tiny dataset — CI uses this to keep the harness from bit-rotting.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xomatiq_relstore::{Database, DatabaseOptions, FaultConfig, FaultyIo, SlowIo};

/// Row count: 50k normally, 500 under `XOMATIQ_BENCH_SMOKE`.
fn scale() -> usize {
    if std::env::var("XOMATIQ_BENCH_SMOKE").is_ok() {
        500
    } else {
        50_000
    }
}

/// `big(a INT, b INT, s TEXT)` with a keyword index on `s`, plus the
/// `facts`/`dims` pair for the join benchmark.
fn build_db(n: usize) -> Database {
    build_db_opts(n, DatabaseOptions::default())
}

fn build_db_opts(n: usize, options: DatabaseOptions) -> Database {
    let db = Database::in_memory_with_options(options);
    db.query("CREATE TABLE big (a INT, b INT, s TEXT)")
        .run()
        .unwrap();
    db.query("CREATE KEYWORD INDEX kw_big_s ON big (s)")
        .run()
        .unwrap();
    db.query("CREATE TABLE facts (id INT, v INT)")
        .run()
        .unwrap();
    db.query("CREATE TABLE dims (id INT, name TEXT)")
        .run()
        .unwrap();
    let mut stmts: Vec<String> = Vec::with_capacity(2 * n + 64);
    for i in 0..n {
        // ~1 row in 500 carries the needle keyword.
        let s = if i % 500 == 250 {
            "needle in the haystack"
        } else {
            "plain filler text"
        };
        stmts.push(format!("INSERT INTO big VALUES ({i}, {}, '{s}')", i % 97));
    }
    for i in 0..n {
        stmts.push(format!("INSERT INTO facts VALUES ({}, {i})", i % 64));
    }
    for i in 0..64 {
        stmts.push(format!("INSERT INTO dims VALUES ({i}, 'dim{i}')"));
    }
    let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
    db.execute_batch(&refs).unwrap();
    db
}

struct Recorder {
    samples: usize,
    results: Vec<(String, f64)>,
}

impl Recorder {
    /// Times `f` over `samples` iterations (after one warmup), prints the
    /// mean, records it for the JSON report and returns it (ns/iter).
    fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        black_box(f()); // warmup
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
        println!("exec/{name}: {ns:.0} ns/iter");
        self.results.push((name.to_string(), ns));
        ns
    }

    fn write_json(&self, rows: usize, cores: usize) {
        let mut entries = String::new();
        for (i, (name, ns)) in self.results.iter().enumerate() {
            if i > 0 {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.0}}}"
            ));
        }
        // `cores` is part of the header so a recorded run says whether
        // the multi-worker gates were live or self-skipped on this box.
        let json = format!(
            "{{\n  \"bench\": \"exec\",\n  \"rows\": {rows},\n  \"cores\": {cores},\n  \"results\": [\n{entries}\n  ]\n}}\n"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
        std::fs::write(path, json).expect("write BENCH_exec.json");
        println!("wrote {path}");
    }
}

fn bench_exec(_c: &mut Criterion) {
    let n = scale();
    let db = build_db(n);
    let enforce = std::env::var("XOMATIQ_BENCH_ENFORCE").is_ok();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rec = Recorder {
        samples: if n > 1_000 { 10 } else { 30 },
        results: Vec::new(),
    };

    rec.bench("scan_full", || {
        db.query("SELECT a FROM big").run().unwrap().rows.len()
    });

    // LIMIT k over a large scan: the streaming executor pulls k rows; the
    // reference interpreter clones the table.
    let limit_sql = "SELECT a, b FROM big LIMIT 10";
    rec.bench("limit_over_scan/streaming", || {
        db.query(limit_sql).run().unwrap().rows.len()
    });
    rec.bench("limit_over_scan/reference", || {
        db.query(limit_sql)
            .via_reference()
            .run()
            .unwrap()
            .rows
            .len()
    });

    // Top-K: bounded heap vs full sort + slice.
    let topk_sql = "SELECT a, b FROM big ORDER BY b DESC, a LIMIT 10";
    rec.bench("topk_sort_limit/streaming", || {
        db.query(topk_sql).run().unwrap().rows.len()
    });
    rec.bench("topk_sort_limit/reference", || {
        db.query(topk_sql).via_reference().run().unwrap().rows.len()
    });

    // Hash join: build on 64-row dims, probe streams over facts.
    let join_sql = "SELECT f.v, d.name FROM facts f, dims d WHERE f.id = d.id AND f.v < 100";
    rec.bench("hash_join/streaming", || {
        db.query(join_sql).run().unwrap().rows.len()
    });
    rec.bench("hash_join/reference", || {
        db.query(join_sql).via_reference().run().unwrap().rows.len()
    });

    // Keyword query through the inverted index.
    let kw_sql = "SELECT a FROM big WHERE CONTAINS(s, 'needle')";
    rec.bench("keyword_query/streaming", || {
        db.query(kw_sql).run().unwrap().rows.len()
    });

    // Zone-map pruning: a ~1% selectivity range in the middle of `big`
    // lands in one-ish segment out of ~n/1024; with pruning disabled every
    // segment still runs the vectorized kernels over its column vectors.
    // With XOMATIQ_BENCH_ENFORCE (full scale) pruning must win by >= 5x.
    let (lo, hi) = (n / 2, n / 2 + n / 100);
    let sel_sql = format!("SELECT a, b FROM big WHERE a BETWEEN {lo} AND {hi}");
    db.set_zone_map_pruning(false);
    let unpruned = rec.bench("scan_filter_selective/zone_maps_off", || {
        db.query(&sel_sql).with_workers(1).run().unwrap().rows.len()
    });
    db.set_zone_map_pruning(true);
    let pruned = rec.bench("scan_filter_selective/zone_maps_on", || {
        db.query(&sel_sql).with_workers(1).run().unwrap().rows.len()
    });
    println!(
        "exec/scan_filter_selective: zone maps {:.2}x faster",
        unpruned / pruned
    );
    if enforce && n >= 50_000 {
        assert!(
            unpruned >= pruned * 5.0,
            "zone-map pruning not effective: on {pruned:.0} ns/iter vs off \
             {unpruned:.0} ns/iter (need >= 5x)"
        );
    }

    // The tentpole number: morsel-parallel scan-aggregate scaling over the
    // segment-aligned morsels. The same GROUP BY over `big` at 1, 2 and 4
    // workers; with XOMATIQ_BENCH_ENFORCE (full scale, >= 4 cores) 4
    // workers must beat sequential by >= 1.5x — and must never be slower.
    let agg_sql = "SELECT b, COUNT(*), SUM(a) FROM big GROUP BY b";
    let mut agg_ns = [0.0f64; 3];
    for (slot, workers) in [1usize, 2, 4].into_iter().enumerate() {
        agg_ns[slot] = rec.bench(&format!("scan_aggregate/workers_{workers}"), || {
            db.query(agg_sql)
                .with_workers(workers)
                .run()
                .unwrap()
                .rows
                .len()
        });
    }
    let speedup = agg_ns[0] / agg_ns[2];
    println!("exec/scan_aggregate: 4-worker speedup {speedup:.2}x over sequential");
    if enforce && n >= 50_000 && cores < 4 {
        println!(
            "exec/scan_aggregate: gate SKIPPED — {cores} core(s) available, \
             4-worker speedup needs >= 4"
        );
    }
    if enforce && n >= 50_000 && cores >= 4 {
        assert!(
            agg_ns[2] <= agg_ns[0],
            "parallel regression: 4 workers ({:.0} ns/iter) slower than \
             sequential ({:.0} ns/iter)",
            agg_ns[2],
            agg_ns[0]
        );
        assert!(
            speedup >= 1.5,
            "parallel scan-aggregate too slow: 4 workers only {speedup:.2}x \
             over sequential (need >= 1.5x)"
        );
    }

    // Plan cache: cold parse+plan vs a warm cache hit through a prepared
    // handle (whose normalized SQL is precomputed, so the hit is one LRU
    // lookup). The statement mirrors what XQ2SQL emits for shredded-XML
    // queries — a multi-way join with a pile of predicates — which is the
    // workload plan caching exists for. A hit must skip parsing and
    // planning entirely, so with XOMATIQ_BENCH_ENFORCE it must be >= 100x
    // faster. (Plan-only on both sides: nothing below executes it.)
    let cached_sql = "SELECT b1.a, b2.b, b3.s, b4.a, f.v, f2.v, d.name, d2.name \
                      FROM big b1, big b2, big b3, big b4, \
                      facts f, facts f2, dims d, dims d2 \
                      WHERE b1.a = b2.a AND b2.a = b3.a AND b3.a = b4.a \
                      AND b4.b = f.id AND f.id = f2.id AND f2.id = d.id \
                      AND d.id = d2.id \
                      AND b1.b > 10 AND b1.a < 40000 AND f.v < 100000 \
                      AND b2.s LIKE '%filler%' AND b3.s LIKE '%plain%' \
                      AND b4.s LIKE '%text%' AND d.name LIKE 'dim%'";
    // Both sides are nanosecond-to-microsecond scale (no data touched),
    // so they need far more samples than the row-crunching benches above.
    let samples = std::mem::replace(&mut rec.samples, 3_000);
    let cold = rec.bench("plan_cache/cold_parse_plan", || {
        db.plan(cached_sql).unwrap().plan.uses_index()
    });
    let prepared = db.prepare(cached_sql).unwrap();
    db.query_prepared(&prepared).planned().unwrap(); // warm the cache entry
    let warm = rec.bench("plan_cache/warm_hit", || {
        db.query_prepared(&prepared)
            .planned()
            .unwrap()
            .plan
            .uses_index()
    });
    rec.samples = samples;
    println!(
        "exec/plan_cache: hit is {:.0}x faster than cold",
        cold / warm
    );
    if enforce {
        assert!(
            cold >= warm * 100.0,
            "plan-cache hit not cheap enough: cold {cold:.0} ns vs warm \
             {warm:.0} ns (need >= 100x)"
        );
    }

    // Cost-based join ordering: one three-way star join, planned twice
    // over identical data. Without statistics the planner keeps the
    // textual order — `facts ⋈ big` first, a huge intermediate (every
    // fact matches ~n/1000 big rows). After ANALYZE the cost model joins
    // `facts ⋈ small` first (tiny filtered build side), so the big join
    // probes a fraction of the rows. With XOMATIQ_BENCH_ENFORCE (full
    // scale) the stats-driven order must win by >= 2x, and the two plans
    // must actually differ.
    {
        let build_star = || {
            let db = Database::in_memory();
            db.query("CREATE TABLE jo_small (id INT, tag TEXT)")
                .run()
                .unwrap();
            db.query("CREATE TABLE jo_big (id INT, payload INT)")
                .run()
                .unwrap();
            db.query("CREATE TABLE jo_facts (sid INT, bid INT)")
                .run()
                .unwrap();
            let mut stmts: Vec<String> = Vec::with_capacity(2 * n + 128);
            for i in 0..100 {
                stmts.push(format!("INSERT INTO jo_small VALUES ({i}, 't{i}')"));
            }
            for i in 0..n {
                stmts.push(format!("INSERT INTO jo_big VALUES ({}, {i})", i % 1000));
            }
            for i in 0..n {
                stmts.push(format!(
                    "INSERT INTO jo_facts VALUES ({}, {})",
                    i % 100,
                    i % 1000
                ));
            }
            let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
            db.execute_batch(&refs).unwrap();
            db
        };
        let star_sql = "SELECT COUNT(*) FROM jo_facts f \
                        JOIN jo_big b ON f.bid = b.id \
                        JOIN jo_small s ON f.sid = s.id \
                        WHERE s.id < 5";
        let cold_db = build_star();
        let warm_db = build_star();
        warm_db.query("ANALYZE").run().unwrap();
        let cold_plan = cold_db.query(star_sql).explain().unwrap().render();
        let warm_plan = warm_db.query(star_sql).explain().unwrap().render();
        assert_ne!(
            cold_plan, warm_plan,
            "ANALYZE should flip the join order:\n{cold_plan}"
        );
        assert_eq!(
            cold_db.query(star_sql).run().unwrap().rows.rows(),
            warm_db.query(star_sql).run().unwrap().rows.rows(),
            "both orders must return the same answer"
        );
        let off = rec.bench("join_order/stats_off", || {
            cold_db.query(star_sql).run().unwrap().rows.len()
        });
        let on = rec.bench("join_order/stats_on", || {
            warm_db.query(star_sql).run().unwrap().rows.len()
        });
        println!(
            "exec/join_order: statistics make the join {:.2}x faster",
            off / on
        );
        if enforce && n >= 50_000 {
            assert!(
                off >= on * 2.0,
                "cost-based join order not effective: stats on {on:.0} ns/iter \
                 vs off {off:.0} ns/iter (need >= 2x)"
            );
        }
    }

    // Observability overhead: the same per-row-heavy queries with the
    // metrics registry disabled vs enabled. Batches are interleaved and
    // the minimum batch mean is kept on each side, so a scheduler blip
    // during one batch cannot fake (or mask) an overhead regression.
    // With `XOMATIQ_BENCH_ENFORCE` set, instrumented time beyond
    // off-time × 1.10 (+2µs/iter of timer-jitter slack) fails the bench —
    // CI runs the smoke scale this way.
    for (name, sql) in [("scan_full", "SELECT a FROM big"), ("hash_join", join_sql)] {
        let run = || db.query(sql).run().unwrap().rows.len();
        let (off, on) = min_batch_pair(run);
        println!("exec/overhead/{name}: off {off:.0} ns/iter, on {on:.0} ns/iter");
        rec.results
            .push((format!("overhead/{name}/metrics_off"), off));
        rec.results
            .push((format!("overhead/{name}/metrics_on"), on));
        let budget = off * 1.10 + 2_000.0;
        if enforce {
            assert!(
                on <= budget,
                "instrumented {name} exceeds the 10% overhead budget: \
                 {on:.0} ns/iter on vs {off:.0} ns/iter off"
            );
        } else if on > budget {
            println!("exec/overhead/{name}: WARNING above 10% budget (not enforced)");
        }
    }

    // Tracing overhead on the same scan-aggregate workload: flight
    // recorder off + no trace context, vs recorder on (production
    // default) + a client-style trace scope per statement with a sink
    // installed — slow-query profiling stays at the "never" default, so
    // this measures the always-on tracing cost, under the same
    // interleaved min-of-batches discipline and 10% enforced budget as
    // the metrics overhead above.
    {
        let off_db = build_db_opts(
            n,
            DatabaseOptions {
                flight_recorder_capacity: 0,
                ..DatabaseOptions::default()
            },
        );
        let sink = std::sync::Arc::new(xomatiq_obs::MemoryTraceSink::new());
        const BATCHES: usize = 5;
        const ITERS: usize = 8;
        let batch = |db: &Database, traced: bool| {
            let start = Instant::now();
            for _ in 0..ITERS {
                let _scope =
                    traced.then(|| xomatiq_obs::trace::scope(xomatiq_obs::trace::TraceCtx::root()));
                black_box(db.query(agg_sql).run().unwrap().rows.len());
            }
            start.elapsed().as_nanos() as f64 / ITERS as f64
        };
        black_box(db.query(agg_sql).run().unwrap().rows.len()); // warmup
        black_box(off_db.query(agg_sql).run().unwrap().rows.len());
        let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..BATCHES {
            off = off.min(batch(&off_db, false));
            xomatiq_obs::trace::set_trace_sink(Some(sink.clone()));
            on = on.min(batch(&db, true));
            xomatiq_obs::trace::set_trace_sink(None);
        }
        println!("exec/overhead/scan_aggregate: tracing off {off:.0} ns/iter, on {on:.0} ns/iter");
        rec.results
            .push(("overhead/scan_aggregate/tracing_off".to_string(), off));
        rec.results
            .push(("overhead/scan_aggregate/tracing_on".to_string(), on));
        let budget = off * 1.10 + 2_000.0;
        if enforce {
            assert!(
                on <= budget,
                "tracing exceeds the 10% overhead budget on scan_aggregate: \
                 {on:.0} ns/iter on vs {off:.0} ns/iter off"
            );
        } else if on > budget {
            println!("exec/overhead/scan_aggregate: WARNING above 10% budget (not enforced)");
        }
    }

    // Group-commit throughput. Durable commits pay an fsync; with the
    // fsync pinned at a known latency (SlowIo), batching becomes the
    // whole story: 8 concurrent writers sharing one leader fsync per
    // batch must beat 8x the single-writer sequential cost by >= 4x in
    // aggregate (enforced at full scale on >= 4 cores).
    let commits = if n > 1_000 { 128 } else { 16 };
    let open_slow_db = || {
        let io = SlowIo::new(
            Box::new(FaultyIo::new(1, FaultConfig::none())),
            Duration::from_millis(3),
        );
        let (db, _) = Database::open_with_io(Box::new(io)).unwrap();
        db.query("CREATE TABLE c (a INT)").run().unwrap();
        db
    };
    let single_db = open_slow_db();
    let start = Instant::now();
    for i in 0..commits {
        single_db
            .query("INSERT INTO c VALUES (?)")
            .bind(i as i64)
            .run()
            .unwrap();
    }
    let single_ns = start.elapsed().as_nanos() as f64 / commits as f64;
    println!("exec/commit/single_writer: {single_ns:.0} ns/commit");
    rec.results
        .push(("commit/single_writer".to_string(), single_ns));
    drop(single_db);

    let multi_db = std::sync::Arc::new(open_slow_db());
    let per_thread = commits / 8;
    let start = Instant::now();
    let writers: Vec<_> = (0..8)
        .map(|t| {
            let db = std::sync::Arc::clone(&multi_db);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    db.query("INSERT INTO c VALUES (?)")
                        .bind((t * 1000 + i) as i64)
                        .run()
                        .unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    let multi_ns = start.elapsed().as_nanos() as f64 / (per_thread * 8) as f64;
    println!("exec/commit/writers_8: {multi_ns:.0} ns/commit aggregate");
    rec.results.push(("commit/writers_8".to_string(), multi_ns));
    let batching = single_ns / multi_ns;
    println!("exec/commit: group commit amortizes fsyncs {batching:.2}x");
    if enforce && n >= 50_000 && cores < 4 {
        println!(
            "exec/commit: gate SKIPPED — {cores} core(s) available, \
             8 concurrent writers need >= 4"
        );
    }
    if enforce && n >= 50_000 && cores >= 4 {
        assert!(
            batching >= 4.0,
            "group commit not amortizing: 8 writers only {batching:.2}x the \
             single-writer commit rate (need >= 4x aggregate)"
        );
    }
    drop(multi_db);

    // Incremental view maintenance vs full recompute. A deferred
    // aggregate view over n base rows; each round touches ~1% of the
    // rows, then refreshes. The incremental path folds the committed
    // delta log (a few hundred events) into the accumulator state; the
    // FULL path recomputes the aggregation over all n rows. With
    // XOMATIQ_BENCH_ENFORCE (full scale) incremental must win >= 20x.
    {
        let mv_db = Database::in_memory();
        mv_db
            .query("CREATE TABLE mv_base (id INT, grp INT, v INT)")
            .run()
            .unwrap();
        let stmts: Vec<String> = (0..n)
            .map(|i| format!("INSERT INTO mv_base VALUES ({i}, {}, {i})", i % 64))
            .collect();
        let refs: Vec<&str> = stmts.iter().map(|s| s.as_str()).collect();
        mv_db.execute_batch(&refs).unwrap();
        mv_db
            .query(
                "CREATE MATERIALIZED VIEW mv_sums AS \
                 SELECT grp, COUNT(*) AS cnt, SUM(v) AS s FROM mv_base GROUP BY grp",
            )
            .run()
            .unwrap();
        let touched = (n / 100).max(1);
        let rounds = if n > 1_000 { 10 } else { 3 };
        // Touch a rotating 1% band so successive rounds hit fresh rows,
        // then time only the refresh itself (the DML cost is identical
        // on both sides and is not what this gate is about).
        let mut refresh_ns = |full: bool, name: &str| {
            let sql = if full {
                "REFRESH MATERIALIZED VIEW mv_sums FULL"
            } else {
                "REFRESH MATERIALIZED VIEW mv_sums"
            };
            mv_db.query(sql).run().unwrap(); // warmup / drain
            let mut total = 0f64;
            for round in 0..rounds {
                let start_id = (round * touched) % n;
                mv_db
                    .query(&format!(
                        "UPDATE mv_base SET v = v + 1 \
                         WHERE id >= {start_id} AND id < {}",
                        start_id + touched
                    ))
                    .run()
                    .unwrap();
                let t = Instant::now();
                mv_db.query(sql).run().unwrap();
                total += t.elapsed().as_nanos() as f64;
            }
            let ns = total / rounds as f64;
            println!("exec/{name}: {ns:.0} ns/refresh ({touched} of {n} rows touched)");
            rec.results.push((name.to_string(), ns));
            ns
        };
        let incremental = refresh_ns(false, "view_refresh/incremental");
        let full = refresh_ns(true, "view_refresh/full_recompute");
        let ratio = full / incremental;
        println!("exec/view_refresh: incremental refresh is {ratio:.1}x faster than recompute");
        if enforce && n >= 50_000 {
            assert!(
                ratio >= 20.0,
                "incremental view refresh not effective: {incremental:.0} ns vs \
                 full recompute {full:.0} ns — only {ratio:.1}x (need >= 20x)"
            );
        }
    }

    // Recovery after a checkpoint: reopen latency, with the replay length
    // asserted through the recovery report — the tail after the
    // checkpoint, and nothing more, is replayed.
    let tail = 24usize;
    let io = FaultyIo::new(2, FaultConfig::none());
    {
        let (db, _) = Database::open_with_io(Box::new(io.clone())).unwrap();
        db.query("CREATE TABLE c (a INT)").run().unwrap();
        for i in 0..200i64 {
            db.query("INSERT INTO c VALUES (?)").bind(i).run().unwrap();
        }
        db.checkpoint().unwrap();
        for i in 0..tail {
            db.query("INSERT INTO c VALUES (?)")
                .bind(i as i64)
                .run()
                .unwrap();
        }
    }
    let start = Instant::now();
    let (recovered, report) = Database::open_with_io(Box::new(io)).unwrap();
    let reopen_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(
        report.transactions_applied, tail,
        "recovery replayed {} transactions; only the {tail}-commit tail \
         after the checkpoint should replay",
        report.transactions_applied
    );
    assert_eq!(recovered.row_count("c").unwrap(), 200 + tail);
    println!(
        "exec/recovery/reopen_after_checkpoint: {reopen_ns:.0} ns \
         (replayed {tail} of {} commits)",
        200 + tail
    );
    rec.results
        .push(("recovery/reopen_after_checkpoint".to_string(), reopen_ns));

    rec.write_json(n, cores);
}

/// Interleaved min-of-batches measurement of `f` with metrics disabled
/// then enabled, returning `(off_ns_per_iter, on_ns_per_iter)`. The
/// registry is left enabled afterwards.
fn min_batch_pair<R>(mut f: impl FnMut() -> R) -> (f64, f64) {
    const BATCHES: usize = 5;
    const ITERS: usize = 8;
    let batch = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        for _ in 0..ITERS {
            f();
        }
        start.elapsed().as_nanos() as f64 / ITERS as f64
    };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    black_box(f()); // warmup
    for _ in 0..BATCHES {
        xomatiq_obs::set_enabled(false);
        off = off.min(batch(&mut || {
            black_box(f());
        }));
        xomatiq_obs::set_enabled(true);
        on = on.min(batch(&mut || {
            black_box(f());
        }));
    }
    (off, on)
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
