//! Observability-plane behaviour: snapshot determinism, histogram bucket
//! edges, concurrent counters, enable/disable gating, and span → sink
//! plumbing.

use std::sync::Arc;

use xomatiq_obs::{MemorySink, MetricValue, MetricsRegistry, Sink, SpanEvent};

/// Drives a registry through a fixed script of operations.
fn scripted(reg: &MetricsRegistry) {
    reg.counter("relstore.exec.rows_scanned").add(12_345);
    reg.counter("relstore.exec.queries").inc();
    reg.counter("relstore.exec.queries").inc();
    reg.gauge("relstore.wal.recovery.transactions_applied")
        .set(7);
    reg.gauge("datahounds.ingest.backlog").add(-3);
    let h = reg.histogram_with("xquery.xq2sql.translate", &[10, 100, 1_000]);
    for v in [5, 10, 11, 1_000, 1_001, 250] {
        h.record(v);
    }
}

#[test]
fn two_identical_runs_render_byte_identical_text() {
    let a = MetricsRegistry::new();
    let b = MetricsRegistry::new();
    scripted(&a);
    scripted(&b);
    let ta = a.snapshot().render_text();
    let tb = b.snapshot().render_text();
    assert_eq!(ta, tb);
    assert_eq!(a.snapshot().render_json(), b.snapshot().render_json());
    // Snapshotting is read-only: a second snapshot of the same registry
    // is also identical.
    assert_eq!(ta, a.snapshot().render_text());
    // Names come out sorted regardless of registration order.
    let names: Vec<&str> = ta.lines().filter_map(|l| l.split(' ').next()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
}

#[test]
fn histogram_bucket_edges_are_inclusive_upper_bounds() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram_with("test.edges", &[10, 100, 1_000]);
    h.record(0); // -> le_10
    h.record(10); // exactly on the edge -> le_10
    h.record(11); // -> le_100
    h.record(100); // -> le_100
    h.record(1_000); // -> le_1000
    h.record(1_001); // -> overflow
    h.record(u64::MAX); // -> overflow, and sum saturation is not our problem: sum wraps mod 2^64 by fetch_add; just check count
    let snap = h.snapshot();
    assert_eq!(snap.count, 7);
    assert_eq!(snap.buckets, vec![2, 2, 1, 2]);
    assert_eq!(snap.edges, vec![10, 100, 1_000]);

    // Render shows each bucket with its edge plus the +inf cell.
    let text = reg.snapshot().render_text();
    assert!(
        text.contains("test.edges histogram count=7"),
        "unexpected render: {text}"
    );
    assert!(
        text.contains("le_10=2 le_100=2 le_1000=1 le_inf=2"),
        "{text}"
    );
}

#[test]
fn concurrent_increments_from_eight_threads_are_lossless() {
    let reg = MetricsRegistry::new();
    let counter = reg.counter("test.concurrent");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..10_000 {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.value(), 80_000);
    // A fresh handle to the same name sees the same cells.
    assert_eq!(reg.counter("test.concurrent").value(), 80_000);
}

#[test]
fn disabled_registry_records_nothing_and_reenables_cleanly() {
    // A local registry so the global enable flag (shared by every other
    // test in this binary) is never touched.
    let reg = MetricsRegistry::new();
    let c = reg.counter("test.gated");
    let g = reg.gauge("test.gated_gauge");
    let h = reg.histogram("test.gated_hist");
    reg.set_enabled(false);
    c.inc();
    g.set(9);
    h.record(5);
    assert_eq!(c.value(), 0);
    assert_eq!(g.value(), 0);
    assert_eq!(h.count(), 0);
    reg.set_enabled(true);
    c.inc();
    assert_eq!(c.value(), 1);
}

#[test]
fn spans_record_into_histogram_and_sink() {
    let sink = Arc::new(MemorySink::new());
    xomatiq_obs::set_sink(Some(sink.clone()));
    {
        let _guard = xomatiq_obs::span!("test.span.unit");
        std::thread::yield_now();
    }
    xomatiq_obs::set_sink(None);

    let hist = xomatiq_obs::global().histogram("test.span.unit");
    assert_eq!(hist.count(), 1);
    let events: Vec<SpanEvent> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "test.span.unit")
        .collect();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].elapsed_ns, hist.sum());
}

#[test]
fn stderr_sink_does_not_panic() {
    let sink = xomatiq_obs::StderrJsonSink::new();
    sink.record(&SpanEvent {
        name: "test.stderr",
        elapsed_ns: 42,
    });
}

#[test]
fn global_snapshot_sees_global_metrics() {
    xomatiq_obs::global().counter("test.global.visible").add(3);
    let snap = xomatiq_obs::global().snapshot();
    let entry = snap
        .entries
        .iter()
        .find(|(name, _)| name == "test.global.visible")
        .expect("metric missing from snapshot");
    match &entry.1 {
        MetricValue::Counter(v) => assert!(*v >= 3),
        other => panic!("expected counter, got {other:?}"),
    }
    assert!(xomatiq_obs::render_stats().contains("test.global.visible"));
}

#[test]
fn histogram_quantile_interpolates_and_bounds() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram_with("test.quantile", &[10, 100, 1000]);
    assert_eq!(h.snapshot().quantile(0.5), None);
    // 10 observations in (10, 100], none elsewhere: the median sits
    // mid-bucket by linear interpolation.
    for _ in 0..10 {
        h.record(50);
    }
    let snap = h.snapshot();
    let p50 = snap.quantile(0.5).unwrap();
    assert!((10.0..=100.0).contains(&p50), "p50 = {p50}");
    assert_eq!(snap.quantile(0.0).unwrap(), 10.0);
    assert_eq!(snap.quantile(1.0).unwrap(), 100.0);
    // Overflow observations clamp to the last finite edge (lower bound).
    h.record(5000);
    assert_eq!(h.snapshot().quantile(1.0).unwrap(), 1000.0);
}
