//! Pluggable destinations for completed-span events.

use std::io::Write;
use std::sync::Mutex;

use crate::snapshot::json_escape;

/// A completed span: its (static) name and measured wall-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The span name, e.g. `relstore.exec.query`.
    pub name: &'static str,
    /// Elapsed wall-time in nanoseconds.
    pub elapsed_ns: u64,
}

/// Receives structured events from completed spans. Implementations must
/// be cheap and non-blocking-ish; they run on the instrumented thread.
pub trait Sink: Send + Sync {
    /// Called once per completed span.
    fn record(&self, event: &SpanEvent);
}

/// An in-memory sink for tests: collects every event for later assertion.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().expect("sink lock poisoned").clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &SpanEvent) {
        self.events
            .lock()
            .expect("sink lock poisoned")
            .push(event.clone());
    }
}

/// Writes one JSON object per completed span to stderr, e.g.
/// `{"span":"relstore.exec.query","elapsed_ns":12345}`.
#[derive(Default)]
pub struct StderrJsonSink;

impl StderrJsonSink {
    /// A new stderr sink.
    pub fn new() -> Self {
        StderrJsonSink
    }
}

impl Sink for StderrJsonSink {
    fn record(&self, event: &SpanEvent) {
        // A full stderr (or closed fd) must never take the pipeline down.
        let line = format!(
            "{{\"span\":\"{}\",\"elapsed_ns\":{}}}\n",
            json_escape(event.name),
            event.elapsed_ns
        );
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}
