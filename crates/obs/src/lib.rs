//! Observability plane for the XomatiQ workspace: a process-wide metrics
//! registry (counters, gauges, fixed-bucket latency histograms), a
//! lightweight span API that records wall-time into histograms and can
//! mirror structured events to a pluggable [`Sink`], and a deterministic
//! [`Snapshot`] renderer (text and line-JSON).
//!
//! The crate is deliberately `std`-only so every layer of the pipeline —
//! from the WAL up to the federation driver — can link it without new
//! dependencies. All hot-path primitives are lock-free: counters are
//! sharded cache-line-padded atomics, gauges and histogram buckets are
//! plain atomics, and the registry itself is only locked when a metric is
//! first created (callers are expected to cache handles).
//!
//! Metric names follow the `crate.subsystem.name` convention, e.g.
//! `relstore.exec.rows_scanned` or `datahounds.ingest.quarantined`.

#![warn(missing_docs)]

pub mod registry;
pub mod sink;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_NS};
pub use sink::{MemorySink, Sink, SpanEvent, StderrJsonSink};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot};
pub use span::SpanGuard;
pub use trace::{set_trace_sink, trace_sink, MemoryTraceSink, TraceCtx, TraceSink, TraceSpanEvent};

use std::sync::{Arc, OnceLock, RwLock};

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry. Created on first use; never torn down.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Enables or disables recording on the global registry (and spans, which
/// consult the same flag). Handles stay valid either way; a disabled
/// registry turns every `inc`/`record` into a single relaxed load.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global registry is currently recording.
pub fn enabled() -> bool {
    global().enabled()
}

/// Renders the global registry as deterministic text (sorted by name).
pub fn render_stats() -> String {
    global().snapshot().render_text()
}

static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide span sink. Spans
/// always record their latency histogram; the sink additionally receives a
/// structured [`SpanEvent`] per completed span.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    *SINK.write().expect("obs sink lock poisoned") = sink;
}

/// The currently installed span sink, if any.
pub fn sink() -> Option<Arc<dyn Sink>> {
    SINK.read().expect("obs sink lock poisoned").clone()
}

/// Opens a [`SpanGuard`] that, on drop, records its wall-time into the
/// global histogram named by the span and forwards a [`SpanEvent`] to the
/// installed sink (if any).
///
/// ```
/// let _guard = xomatiq_obs::span!("relstore.exec.query");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}
