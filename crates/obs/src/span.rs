//! Wall-time spans: RAII guards that record their lifetime into the
//! global latency histogram of the same name and forward a structured
//! event to the installed [`crate::Sink`]. When a [`crate::trace`]
//! context is current on the thread, the same guard also opens a child
//! trace span, so `span!` call sites link into the request's trace tree
//! with no extra code.

use std::time::Instant;

use crate::sink::SpanEvent;

/// An open span; closes (and records) when dropped. Prefer the
/// [`crate::span!`] macro over constructing this directly.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    /// `None` when the registry was disabled at entry: the span then
    /// records nothing on drop, making disabled spans two relaxed loads.
    start: Option<Instant>,
    /// Child trace span under the thread's current trace context (inert
    /// when no context is active).
    _trace: crate::trace::TraceSpanGuard,
}

impl SpanGuard {
    /// Opens a span named `name` (a `crate.subsystem.name` style label).
    pub fn enter(name: &'static str) -> SpanGuard {
        let start = crate::enabled().then(Instant::now);
        SpanGuard {
            name,
            start,
            _trace: crate::trace::span(name),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        crate::global().histogram(self.name).record(elapsed_ns);
        if let Some(sink) = crate::sink() {
            sink.record(&SpanEvent {
                name: self.name,
                elapsed_ns,
            });
        }
    }
}
