//! End-to-end request tracing: a lightweight trace context propagated
//! through thread scopes, and span events that link into one trace tree.
//!
//! A [`TraceCtx`] is two `u64`s — the trace id shared by every span of a
//! request, and the id of the span that is "current" on this thread (the
//! parent of any span opened next). Ids come from a process-local
//! splitmix64 stream, so tracing stays dependency-free and id generation
//! is one atomic fetch-add plus a few multiplies.
//!
//! Propagation is by thread scope: [`scope`] installs a context for the
//! enclosing lexical region (restoring the previous one on drop), and
//! [`span`] opens a child span under whatever context is current —
//! becoming the current parent itself until it closes. Work that finishes
//! on a *different* thread than the one that owns the request (the WAL
//! group-commit leader flushing other sessions' transactions) uses
//! [`emit`] to attach a span to a captured context explicitly.
//!
//! Completed spans go to the installed [`TraceSink`]; when none is
//! installed a span costs two thread-local accesses and a clock read.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// The identity a request's spans share: the trace id, plus the span id
/// of the innermost open span on this thread (`0` = the trace root, i.e.
/// spans opened next have no parent inside the tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the whole request across threads and processes.
    pub trace_id: u64,
    /// The span under which new child spans open (`0` at the root).
    pub span_id: u64,
}

impl TraceCtx {
    /// A fresh root context with a generated trace id and no parent span.
    pub fn root() -> TraceCtx {
        TraceCtx {
            trace_id: next_id(),
            span_id: 0,
        }
    }

    /// A root context for an externally supplied trace id (e.g. one a
    /// client sent on the wire).
    pub fn with_trace_id(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            span_id: 0,
        }
    }
}

/// One completed span of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanEvent {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the process).
    pub span_id: u64,
    /// The parent span's id, `0` for top-level spans.
    pub parent_span_id: u64,
    /// Span label, `crate.subsystem.name` style.
    pub name: String,
    /// Elapsed wall-time in nanoseconds.
    pub elapsed_ns: u64,
}

/// Receives completed trace spans. Implementations run on the
/// instrumented thread and must be cheap.
pub trait TraceSink: Send + Sync {
    /// Called once per completed span.
    fn record(&self, span: &TraceSpanEvent);
}

static TRACE_SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide trace sink.
pub fn set_trace_sink(sink: Option<Arc<dyn TraceSink>>) {
    *TRACE_SINK.write().expect("trace sink lock poisoned") = sink;
}

/// The currently installed trace sink, if any.
pub fn trace_sink() -> Option<Arc<dyn TraceSink>> {
    TRACE_SINK.read().expect("trace sink lock poisoned").clone()
}

/// An in-memory trace sink for tests and local export.
#[derive(Default)]
pub struct MemoryTraceSink {
    spans: Mutex<Vec<TraceSpanEvent>>,
}

impl MemoryTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every span recorded so far.
    pub fn spans(&self) -> Vec<TraceSpanEvent> {
        self.spans.lock().expect("trace sink lock poisoned").clone()
    }

    /// The spans of one trace, in completion order.
    pub fn trace(&self, trace_id: u64) -> Vec<TraceSpanEvent> {
        self.spans
            .lock()
            .expect("trace sink lock poisoned")
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }
}

impl TraceSink for MemoryTraceSink {
    fn record(&self, span: &TraceSpanEvent) {
        self.spans
            .lock()
            .expect("trace sink lock poisoned")
            .push(span.clone());
    }
}

// ---------------------------------------------------------------------------
// Id generation (splitmix64 over an atomic counter)
// ---------------------------------------------------------------------------

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fresh non-zero id (`0` is reserved to mean "no parent").
pub fn next_id() -> u64 {
    loop {
        let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n.wrapping_add(0x5851_f42d_4c95_7f2d));
        if id != 0 {
            return id;
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-scoped propagation
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The context current on this thread, if a scope is active.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// Restores the previously current context when dropped.
#[must_use = "dropping the guard immediately ends the scope"]
pub struct ScopeGuard {
    prev: Option<TraceCtx>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Makes `ctx` current for the guard's lifetime (nesting-safe: the prior
/// context is restored on drop).
pub fn scope(ctx: TraceCtx) -> ScopeGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    ScopeGuard { prev }
}

/// An open trace span; completes (and reports to the sink) when dropped.
/// Opened via [`span`]; a no-op when no context is current.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct TraceSpanGuard {
    /// `None` when no context was current at entry: nothing to link to.
    armed: Option<ArmedSpan>,
}

struct ArmedSpan {
    name: &'static str,
    ctx: TraceCtx,
    parent: Option<TraceCtx>,
    start: Instant,
}

impl TraceSpanGuard {
    /// The context this span established (its own id as the parent for
    /// children), if it is armed.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.armed.as_ref().map(|a| a.ctx)
    }
}

/// Opens a child span under the current context, making itself the
/// current parent until dropped. Without a current context this is a
/// no-op guard.
pub fn span(name: &'static str) -> TraceSpanGuard {
    let Some(parent) = current() else {
        return TraceSpanGuard { armed: None };
    };
    let ctx = TraceCtx {
        trace_id: parent.trace_id,
        span_id: next_id(),
    };
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    TraceSpanGuard {
        armed: Some(ArmedSpan {
            name,
            ctx,
            parent: prev,
            start: Instant::now(),
        }),
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        CURRENT.with(|c| c.set(armed.parent));
        let Some(sink) = trace_sink() else { return };
        let elapsed_ns = u64::try_from(armed.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sink.record(&TraceSpanEvent {
            trace_id: armed.ctx.trace_id,
            span_id: armed.ctx.span_id,
            parent_span_id: armed.parent.map_or(0, |p| p.span_id),
            name: armed.name.to_string(),
            elapsed_ns,
        });
    }
}

/// Attaches a completed span to a *captured* context — the cross-thread
/// escape hatch for work finished on a thread that does not own the
/// request (e.g. a group-commit flush leader covering other sessions'
/// transactions). Returns the new span's id so callers can chain
/// children under it via [`emit_with_parent`].
pub fn emit(name: impl Into<String>, ctx: TraceCtx, elapsed_ns: u64) -> u64 {
    emit_with_parent(name, ctx.trace_id, ctx.span_id, elapsed_ns)
}

/// Like [`emit`], with the parent span id given explicitly.
pub fn emit_with_parent(
    name: impl Into<String>,
    trace_id: u64,
    parent_span_id: u64,
    elapsed_ns: u64,
) -> u64 {
    let span_id = next_id();
    if let Some(sink) = trace_sink() {
        sink.record(&TraceSpanEvent {
            trace_id,
            span_id,
            parent_span_id,
            name: name.into(),
            elapsed_ns,
        });
    }
    span_id
}

/// Renders the spans of one trace as an indented tree (children under
/// their parent, siblings in completion order) — the exportable form.
pub fn render_trace_tree(spans: &[TraceSpanEvent], trace_id: u64) -> String {
    let mine: Vec<&TraceSpanEvent> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    let ids: std::collections::HashSet<u64> = mine.iter().map(|s| s.span_id).collect();
    let mut out = String::new();
    fn walk(spans: &[&TraceSpanEvent], parent: u64, depth: usize, out: &mut String) {
        for s in spans.iter().filter(|s| s.parent_span_id == parent) {
            out.push_str(&format!(
                "{:indent$}{} [{}ns]\n",
                "",
                s.name,
                s.elapsed_ns,
                indent = depth * 2
            ));
            walk(spans, s.span_id, depth + 1, out);
        }
    }
    // Roots: parent 0, or a parent that never completed into this set
    // (e.g. the request outlived the export window).
    let roots: Vec<&TraceSpanEvent> = mine
        .iter()
        .filter(|s| s.parent_span_id == 0 || !ids.contains(&s.parent_span_id))
        .copied()
        .collect();
    for root in &roots {
        out.push_str(&format!("{} [{}ns]\n", root.name, root.elapsed_ns));
        walk(&mine, root.span_id, 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn span_without_scope_is_inert() {
        let s = span("noop");
        assert!(s.ctx().is_none());
        assert!(current().is_none());
    }

    #[test]
    fn spans_nest_and_restore_scope() {
        let root = TraceCtx::root();
        let _scope = scope(root);
        let outer = span("outer");
        let outer_ctx = outer.ctx().unwrap();
        assert_eq!(current().unwrap().span_id, outer_ctx.span_id);
        {
            let inner = span("inner");
            assert_eq!(current().unwrap().span_id, inner.ctx().unwrap().span_id);
        }
        assert_eq!(current().unwrap().span_id, outer_ctx.span_id);
        drop(outer);
        assert_eq!(current().unwrap(), root);
    }

    #[test]
    fn tree_renders_children_under_parents() {
        let t = 42;
        let spans = vec![
            TraceSpanEvent {
                trace_id: t,
                span_id: 1,
                parent_span_id: 0,
                name: "request".into(),
                elapsed_ns: 100,
            },
            TraceSpanEvent {
                trace_id: t,
                span_id: 2,
                parent_span_id: 1,
                name: "plan".into(),
                elapsed_ns: 10,
            },
            TraceSpanEvent {
                trace_id: t,
                span_id: 3,
                parent_span_id: 1,
                name: "exec".into(),
                elapsed_ns: 80,
            },
            TraceSpanEvent {
                trace_id: 7,
                span_id: 4,
                parent_span_id: 0,
                name: "other".into(),
                elapsed_ns: 5,
            },
        ];
        let tree = render_trace_tree(&spans, t);
        assert_eq!(tree, "request [100ns]\n  plan [10ns]\n  exec [80ns]\n");
    }
}
