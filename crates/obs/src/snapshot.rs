//! Deterministic rendering of a registry's contents.
//!
//! Both renders are byte-stable for a given set of metric values: entries
//! are sorted by name, numbers are formatted without locale or float
//! involvement, and no timestamps are embedded. Two identical runs
//! therefore produce identical output — tested in `tests/obs.rs`.

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Finite bucket upper edges (inclusive), strictly increasing.
    pub edges: Vec<u64>,
    /// Bucket counts; `buckets.len() == edges.len() + 1`, the final cell
    /// being the overflow (+inf) bucket.
    pub buckets: Vec<u64>,
}

/// The value of one named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, name-sorted copy of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// One line per metric: `name kind value...`. Histograms render their
    /// count, sum and every bucket as `le_<edge>=<n>` with a final
    /// `le_inf` overflow cell.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name} counter {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} gauge {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name} histogram count={} sum={}", h.count, h.sum));
                    for (i, n) in h.buckets.iter().enumerate() {
                        match h.edges.get(i) {
                            Some(edge) => out.push_str(&format!(" le_{edge}={n}")),
                            None => out.push_str(&format!(" le_inf={n}")),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// A single JSON object `{"metrics": [...]}` with one entry per
    /// metric, in name order.
    pub fn render_json(&self) -> String {
        let mut items = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            let name = json_escape(name);
            items.push(match value {
                MetricValue::Counter(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}")
                }
                MetricValue::Histogram(h) => {
                    let edges: Vec<String> = h.edges.iter().map(u64::to_string).collect();
                    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                    format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"edges\":[{}],\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        edges.join(","),
                        buckets.join(",")
                    )
                }
            });
        }
        format!("{{\"metrics\":[{}]}}\n", items.join(","))
    }
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
