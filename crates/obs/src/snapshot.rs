//! Deterministic rendering of a registry's contents.
//!
//! Both renders are byte-stable for a given set of metric values: entries
//! are sorted by name, numbers are formatted without locale or float
//! involvement, and no timestamps are embedded. Two identical runs
//! therefore produce identical output — tested in `tests/obs.rs`.

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Finite bucket upper edges (inclusive), strictly increasing.
    pub edges: Vec<u64>,
    /// Bucket counts; `buckets.len() == edges.len() + 1`, the final cell
    /// being the overflow (+inf) bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` (clamped to `[0, 1]`), by linear
    /// interpolation within the bucket that contains the target rank.
    /// Observations in the overflow bucket report the last finite edge —
    /// a lower bound, which is the honest answer a bucketed histogram can
    /// give. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let next = cumulative + n;
            if (next as f64) >= target && n > 0 {
                let Some(&hi) = self.edges.get(i) else {
                    // Overflow bucket: all we know is "above the last edge".
                    return Some(*self.edges.last()? as f64);
                };
                let lo = if i == 0 { 0 } else { self.edges[i - 1] };
                let frac = (target - cumulative as f64) / n as f64;
                return Some(lo as f64 + frac.clamp(0.0, 1.0) * (hi - lo) as f64);
            }
            cumulative = next;
        }
        Some(*self.edges.last()? as f64)
    }

    /// Median — `quantile(0.5)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile — `quantile(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile — `quantile(0.999)`. Tail latency beyond p99:
    /// the figure group-commit stalls and checkpoint pauses show up in.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Observations recorded since `prev` was taken: count, sum and every
    /// bucket subtracted cell-wise. Falls back to `self` unchanged when
    /// the bucket layouts differ (the histogram was re-created with other
    /// edges between the two snapshots).
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        if self.edges != prev.edges || self.buckets.len() != prev.buckets.len() {
            return self.clone();
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            edges: self.edges.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&prev.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// The value of one named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, name-sorted copy of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// One line per metric: `name kind value...`. Histograms render their
    /// count, sum and every bucket as `le_<edge>=<n>` with a final
    /// `le_inf` overflow cell.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name} counter {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} gauge {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name} histogram count={} sum={}", h.count, h.sum));
                    for (i, n) in h.buckets.iter().enumerate() {
                        match h.edges.get(i) {
                            Some(edge) => out.push_str(&format!(" le_{edge}={n}")),
                            None => out.push_str(&format!(" le_inf={n}")),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// What changed since `prev`: counters and histograms report the
    /// increment between the two snapshots (a counter present in both
    /// renders `cur - prev`), gauges report their current reading, and
    /// metrics absent from `prev` carry over unchanged. The result is a
    /// regular [`Snapshot`] — render it, quantile it, diff it again.
    pub fn delta_since(&self, prev: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let old = prev
                    .entries
                    .binary_search_by(|(n, _)| n.as_str().cmp(name))
                    .ok()
                    .map(|i| &prev.entries[i].1);
                let value = match (value, old) {
                    (MetricValue::Counter(cur), Some(MetricValue::Counter(p))) => {
                        MetricValue::Counter(cur.saturating_sub(*p))
                    }
                    (MetricValue::Histogram(cur), Some(MetricValue::Histogram(p))) => {
                        MetricValue::Histogram(cur.delta_since(p))
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }

    /// A single JSON object `{"metrics": [...]}` with one entry per
    /// metric, in name order.
    pub fn render_json(&self) -> String {
        let mut items = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            let name = json_escape(name);
            items.push(match value {
                MetricValue::Counter(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}")
                }
                MetricValue::Histogram(h) => {
                    let edges: Vec<String> = h.edges.iter().map(u64::to_string).collect();
                    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                    format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"edges\":[{}],\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        edges.join(","),
                        buckets.join(",")
                    )
                }
            });
        }
        format!("{{\"metrics\":[{}]}}\n", items.join(","))
    }
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(edges: Vec<u64>, buckets: Vec<u64>) -> HistogramSnapshot {
        let count = buckets.iter().sum();
        let sum = 0; // irrelevant to quantiles
        HistogramSnapshot {
            count,
            sum,
            edges,
            buckets,
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = hist(vec![10, 100], vec![0, 0, 0]);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn quantile_with_a_single_occupied_bucket_interpolates_within_it() {
        // All observations land in (10, 100]: every quantile stays inside
        // that bucket, clamped to its edges.
        let h = hist(vec![10, 100], vec![0, 4, 0]);
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((10.0..=100.0).contains(&v), "q={q} gave {v}");
        }
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn quantile_of_overflow_only_histogram_reports_last_edge() {
        let h = hist(vec![10, 100], vec![0, 0, 7]);
        assert_eq!(h.quantile(0.5), Some(100.0));
        assert_eq!(h.p999(), Some(100.0));
    }

    #[test]
    fn p999_sits_at_or_above_p99() {
        let mut buckets = vec![1000, 9, 1];
        let h = hist(vec![10, 100], std::mem::take(&mut buckets));
        let (p99, p999) = (h.p99().unwrap(), h.p999().unwrap());
        assert!(p999 >= p99, "p999={p999} < p99={p99}");
    }

    #[test]
    fn histogram_delta_subtracts_cell_wise() {
        let prev = hist(vec![10, 100], vec![3, 1, 0]);
        let cur = hist(vec![10, 100], vec![5, 4, 2]);
        let d = cur.delta_since(&prev);
        assert_eq!(d.buckets, vec![2, 3, 2]);
        assert_eq!(d.count, 7);
        // Mismatched layouts fall back to the current snapshot.
        let other = hist(vec![50], vec![1, 0]);
        assert_eq!(cur.delta_since(&other), cur);
    }

    #[test]
    fn snapshot_delta_diffs_counters_and_keeps_gauges() {
        let prev = Snapshot {
            entries: vec![
                ("a.count".into(), MetricValue::Counter(10)),
                ("b.gauge".into(), MetricValue::Gauge(5)),
            ],
        };
        let cur = Snapshot {
            entries: vec![
                ("a.count".into(), MetricValue::Counter(15)),
                ("b.gauge".into(), MetricValue::Gauge(2)),
                ("c.new".into(), MetricValue::Counter(3)),
            ],
        };
        let d = cur.delta_since(&prev);
        assert_eq!(
            d.entries,
            vec![
                ("a.count".into(), MetricValue::Counter(5)),
                ("b.gauge".into(), MetricValue::Gauge(2)),
                ("c.new".into(), MetricValue::Counter(3)),
            ]
        );
    }
}
