//! Deterministic rendering of a registry's contents.
//!
//! Both renders are byte-stable for a given set of metric values: entries
//! are sorted by name, numbers are formatted without locale or float
//! involvement, and no timestamps are embedded. Two identical runs
//! therefore produce identical output — tested in `tests/obs.rs`.

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Finite bucket upper edges (inclusive), strictly increasing.
    pub edges: Vec<u64>,
    /// Bucket counts; `buckets.len() == edges.len() + 1`, the final cell
    /// being the overflow (+inf) bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` (clamped to `[0, 1]`), by linear
    /// interpolation within the bucket that contains the target rank.
    /// Observations in the overflow bucket report the last finite edge —
    /// a lower bound, which is the honest answer a bucketed histogram can
    /// give. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let next = cumulative + n;
            if (next as f64) >= target && n > 0 {
                let Some(&hi) = self.edges.get(i) else {
                    // Overflow bucket: all we know is "above the last edge".
                    return Some(*self.edges.last()? as f64);
                };
                let lo = if i == 0 { 0 } else { self.edges[i - 1] };
                let frac = (target - cumulative as f64) / n as f64;
                return Some(lo as f64 + frac.clamp(0.0, 1.0) * (hi - lo) as f64);
            }
            cumulative = next;
        }
        Some(*self.edges.last()? as f64)
    }
}

/// The value of one named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, name-sorted copy of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// One line per metric: `name kind value...`. Histograms render their
    /// count, sum and every bucket as `le_<edge>=<n>` with a final
    /// `le_inf` overflow cell.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name} counter {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} gauge {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{name} histogram count={} sum={}", h.count, h.sum));
                    for (i, n) in h.buckets.iter().enumerate() {
                        match h.edges.get(i) {
                            Some(edge) => out.push_str(&format!(" le_{edge}={n}")),
                            None => out.push_str(&format!(" le_inf={n}")),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// A single JSON object `{"metrics": [...]}` with one entry per
    /// metric, in name order.
    pub fn render_json(&self) -> String {
        let mut items = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            let name = json_escape(name);
            items.push(match value {
                MetricValue::Counter(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}")
                }
                MetricValue::Gauge(v) => {
                    format!("{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}")
                }
                MetricValue::Histogram(h) => {
                    let edges: Vec<String> = h.edges.iter().map(u64::to_string).collect();
                    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                    format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"edges\":[{}],\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        edges.join(","),
                        buckets.join(",")
                    )
                }
            });
        }
        format!("{{\"metrics\":[{}]}}\n", items.join(","))
    }
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
