//! Metric primitives and the registry that names them.
//!
//! Counters are sharded over cache-line-padded atomics so concurrent
//! per-row increments from many threads do not contend on one line;
//! gauges and histograms are single atomics per cell. Reads (snapshots)
//! are racy-but-consistent-enough: each cell is loaded with relaxed
//! ordering, which is fine for monitoring data.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};

/// Number of counter shards. A small power of two: enough to spread the
/// 8-thread concurrency we test for, cheap enough to sum on snapshot.
const SHARDS: usize = 8;

/// One cache line per shard so adjacent shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Default latency bucket upper edges, in nanoseconds: powers of four from
/// 1µs to ~4s, a span that covers everything from a per-row callback to a
/// full WAL replay.
pub const LATENCY_BUCKETS_NS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
];

/// A monotonically increasing counter. Cloning yields another handle to
/// the same underlying cells; handles are cheap to cache in `OnceLock`s.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            shards: Arc::new(Default::default()),
            enabled,
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while the owning registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (e.g. "transactions applied by the last
/// WAL recovery").
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
            enabled,
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Upper edges (inclusive) of the finite buckets, strictly increasing.
    edges: Vec<u64>,
    /// One cell per edge plus a final overflow (+inf) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram; values at or below an edge land in that
/// edge's bucket, values above every edge land in the overflow bucket.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    fn new(edges: &[u64], enabled: Arc<AtomicBool>) -> Self {
        let inner = HistogramInner {
            edges: edges.to_vec(),
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        };
        Histogram {
            inner: Arc::new(inner),
            enabled,
        }
    }

    /// Records one observation. A no-op while the registry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self.inner.edges.partition_point(|&edge| edge < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of edges and bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            edges: self.inner.edges.clone(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A named collection of metrics. Normally used through
/// [`crate::global()`], but fully functional as a local instance, which
/// keeps tests hermetic.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Turns recording on or off for every handle minted by this registry.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether handles from this registry currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Counter::new(Arc::clone(&self.enabled)))
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("poisoned").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Gauge::new(Arc::clone(&self.enabled)))
            .clone()
    }

    /// The histogram named `name` with the default latency buckets
    /// ([`LATENCY_BUCKETS_NS`]), created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, LATENCY_BUCKETS_NS)
    }

    /// The histogram named `name`, created with the given bucket edges on
    /// first use (an existing histogram keeps its original edges).
    pub fn histogram_with(&self, name: &str, edges: &[u64]) -> Histogram {
        if let Some(h) = self.histograms.read().expect("poisoned").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges, Arc::clone(&self.enabled)))
            .clone()
    }

    /// A deterministic point-in-time view of every registered metric,
    /// sorted by name (counters, then gauges, then histograms on name
    /// collisions — names should not collide across kinds).
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<(String, MetricValue)> = Vec::new();
        for (name, c) in self.counters.read().expect("poisoned").iter() {
            entries.push((name.clone(), MetricValue::Counter(c.value())));
        }
        for (name, g) in self.gauges.read().expect("poisoned").iter() {
            entries.push((name.clone(), MetricValue::Gauge(g.value())));
        }
        for (name, h) in self.histograms.read().expect("poisoned").iter() {
            entries.push((name.clone(), MetricValue::Histogram(h.snapshot())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}
