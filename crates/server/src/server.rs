//! The TCP listener, admission control and per-session request loop.
//!
//! One OS thread per admitted session, which is the right shape here:
//! the engine's own morsel-parallel executor supplies intra-query
//! parallelism, so a session thread spends its life either blocked on
//! the socket or inside one query. Admission control bounds the thread
//! count — a connection beyond [`ServerConfig::max_connections`] gets an
//! explicit `Hello { admitted: false }` frame and a closed socket, never
//! a silent hang.
//!
//! Shutdown is cooperative and draining: [`ServerHandle::shutdown`] sets
//! a flag, the accept loop stops admitting, and every session finishes
//! the request it is currently serving (including one whose frame is
//! mid-flight on the wire, up to a grace period) before its thread
//! exits. `shutdown` returns only after the accept thread has joined all
//! session threads, so when it returns no query is still running.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use xomatiq_obs::trace::{self, TraceCtx};
use xomatiq_obs::{Counter, Gauge, Histogram};
use xomatiq_relstore::{Database, Session, Value};

use crate::proto::{Request, Response, MAX_FRAME_LEN};

/// How long a session sleeps in the socket read before re-checking the
/// shutdown flag. Small enough that shutdown feels immediate, large
/// enough that idle sessions cost nothing measurable.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// After shutdown begins, how long a session waits for a client to
/// finish sending a frame it has already started.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Maximum concurrently admitted sessions; connections beyond this
    /// are rejected with a busy frame.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            max_connections: 64,
        }
    }
}

/// State shared between the accept loop, session threads and the handle.
struct Shared {
    db: Arc<Database>,
    shutdown: AtomicBool,
    active: AtomicUsize,
    rejected: AtomicU64,
    max_connections: usize,
    metrics: Metrics,
}

/// Obs handles, resolved once at startup so the per-request path never
/// touches the registry's name map.
struct Metrics {
    accepted: Counter,
    rejected_total: Counter,
    requests: Counter,
    active_sessions: Gauge,
    rejected_gauge: Gauge,
    latency_ns: Histogram,
}

impl Metrics {
    fn new() -> Metrics {
        let reg = xomatiq_obs::global();
        Metrics {
            accepted: reg.counter("server.connections.accepted"),
            rejected_total: reg.counter("server.connections.rejected"),
            requests: reg.counter("server.requests"),
            active_sessions: reg.gauge("server.sessions.active"),
            rejected_gauge: reg.gauge("server.connections.rejected_current"),
            latency_ns: reg.histogram("server.request.latency_ns"),
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

/// Starts a server over `db` and returns once the listener is bound —
/// clients may connect immediately.
pub fn start(db: Arc<Database>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        db,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        rejected: AtomicU64::new(0),
        max_connections: config.max_connections.max(1),
        metrics: Metrics::new(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("xomatiq-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound listen address (the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently admitted (connected and not yet closed).
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Connections rejected by admission control since startup.
    pub fn rejected_connections(&self) -> u64 {
        self.shared.rejected.load(Ordering::SeqCst)
    }

    /// Signals shutdown and blocks until every in-flight request has
    /// completed and every session thread has exited.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                sessions.retain(|t| !t.is_finished());
                handle_accept(stream, &shared, &mut sessions);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Listener errors (EMFILE and friends) are not fatal to
            // existing sessions; back off and keep trying.
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    for t in sessions {
        let _ = t.join();
    }
}

fn handle_accept(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    sessions: &mut Vec<thread::JoinHandle<()>>,
) {
    let _ = stream.set_nodelay(true);
    // Admission: claim a slot optimistically, back out if over the limit.
    let prev = shared.active.fetch_add(1, Ordering::SeqCst);
    if prev >= shared.max_connections {
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        shared.metrics.rejected_total.inc();
        shared.metrics.rejected_gauge.add(1);
        let _ = stream.write_all(&Response::Hello { admitted: false }.encode());
        let _ = stream.flush();
        return;
    }
    shared.metrics.accepted.inc();
    shared
        .metrics
        .active_sessions
        .set(shared.active.load(Ordering::SeqCst) as i64);
    let session_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("xomatiq-session".to_string())
        .spawn(move || {
            run_session(stream, &session_shared);
            session_shared.active.fetch_sub(1, Ordering::SeqCst);
            session_shared
                .metrics
                .active_sessions
                .set(session_shared.active.load(Ordering::SeqCst) as i64);
        });
    match spawned {
        Ok(t) => sessions.push(t),
        Err(_) => {
            // Could not spawn a thread: treat like a rejection.
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            shared.metrics.rejected_total.inc();
        }
    }
}

/// What one shutdown-aware frame read produced.
enum FrameRead {
    /// A complete frame body (opcode + payload).
    Frame(Vec<u8>),
    /// The peer closed the connection between frames.
    Eof,
    /// Shutdown was requested while the connection was idle (no frame
    /// in progress) or a mid-flight frame outlived the drain grace.
    Shutdown,
}

/// Reads one frame, polling the socket with a short timeout so the
/// shutdown flag is observed. A frame whose first byte has arrived is
/// allowed to finish even during shutdown — that is the "drain" half of
/// graceful shutdown — but only within [`DRAIN_GRACE`] of the flag.
fn read_frame_draining(stream: &mut TcpStream, shared: &Shared) -> io::Result<FrameRead> {
    let mut drain_deadline: Option<Instant> = None;
    let check = |started: bool, deadline: &mut Option<Instant>| -> Option<FrameRead> {
        if !shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        if !started {
            return Some(FrameRead::Shutdown);
        }
        let d = *deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
        (Instant::now() >= d).then_some(FrameRead::Shutdown)
    };

    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(FrameRead::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if let Some(out) = check(filled > 0, &mut drain_deadline) {
                    return Ok(out);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut body = vec![0u8; len];
    filled = 0;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if let Some(out) = check(true, &mut drain_deadline) {
                    return Ok(out);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(body))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One connection's lifetime: greet, then serve request frames until the
/// client says goodbye, disconnects, errors fatally, or shutdown drains
/// it. Session state (prepared statements, worker override) lives on the
/// stack, so every exit path — including a killed client — cleans up by
/// simply returning.
fn run_session(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    if stream
        .write_all(&Response::Hello { admitted: true }.encode())
        .and_then(|()| stream.flush())
        .is_err()
    {
        return;
    }
    let mut session = Session::new(Arc::clone(&shared.db));
    loop {
        let body = match read_frame_draining(&mut stream, shared) {
            Ok(FrameRead::Frame(body)) => body,
            Ok(FrameRead::Eof) | Ok(FrameRead::Shutdown) | Err(_) => return,
        };
        let request = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // A malformed frame means the stream is unsynchronized;
                // report and hang up rather than guessing at boundaries.
                let resp = Response::Error {
                    code: "proto".to_string(),
                    message: e.to_string(),
                };
                let _ = stream.write_all(&resp.encode());
                return;
            }
        };
        // Unwrap a trace envelope: the client-chosen id becomes this
        // request's trace root, so every span the engine opens below —
        // parse, plan, exec, even the WAL group-commit flush on another
        // session's thread — links into the client's trace.
        let (trace_id, request) = match request {
            Request::Traced { trace_id, inner } => (Some(trace_id), *inner),
            other => (None, other),
        };
        let goodbye = matches!(request, Request::Goodbye);
        shared.metrics.requests.inc();
        let started = Instant::now();
        let response = match trace_id {
            Some(id) => {
                let _trace = trace::scope(TraceCtx::with_trace_id(id));
                let inner = {
                    let _root = trace::span("server.request");
                    handle_request(&mut session, request)
                };
                Response::Traced {
                    trace_id: id,
                    inner: Box::new(inner),
                }
            }
            None => handle_request(&mut session, request),
        };
        shared
            .metrics
            .latency_ns
            .record(started.elapsed().as_nanos() as u64);
        if stream
            .write_all(&response.encode())
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
        if goodbye {
            return;
        }
    }
}

/// Pure request → response dispatch; everything fallible becomes an
/// [`Response::Error`] carrying the engine's stable error code.
fn handle_request(session: &mut Session, request: Request) -> Response {
    match request {
        Request::Query { sql, params } => run_to_response(session.run_sql(&sql, params)),
        Request::Prepare { sql } => match session.prepare(&sql) {
            Ok(handle) => Response::Prepared {
                stmt_id: handle.id,
                param_count: handle.param_count as u32,
            },
            Err(e) => error_response(&e),
        },
        Request::Execute { stmt_id, params } => run_to_response(session.execute(stmt_id, params)),
        Request::CloseStmt { stmt_id } => Response::Closed {
            existed: session.close_stmt(stmt_id),
        },
        Request::Explain { sql, analyze } => match session.explain(&sql, analyze) {
            Ok(body) => Response::Text { body },
            Err(e) => error_response(&e),
        },
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Text {
            body: xomatiq_obs::global().snapshot().render_text(),
        },
        Request::MetricsJson => Response::Text {
            body: xomatiq_obs::global().snapshot().render_json(),
        },
        Request::Set { name, value } => apply_set(session, &name, &value),
        Request::Goodbye => Response::Bye,
        // The session loop unwraps envelopes before dispatch; one that
        // reaches here (wrappers do not nest) is a protocol violation.
        Request::Traced { .. } => Response::Error {
            code: "proto".to_string(),
            message: "unexpected nested trace wrapper".to_string(),
        },
    }
}

fn run_to_response(
    outcome: Result<xomatiq_relstore::QueryOutcome, xomatiq_relstore::RelError>,
) -> Response {
    match outcome {
        Ok(out) => {
            let rs = out.rows;
            if rs.columns().is_empty() {
                Response::Affected {
                    count: rs.affected() as u64,
                }
            } else {
                let columns = rs.columns().to_vec();
                let rows: Vec<Vec<Value>> = rs.into_rows();
                Response::Rows { columns, rows }
            }
        }
        Err(e) => error_response(&e),
    }
}

fn error_response(e: &xomatiq_relstore::RelError) -> Response {
    Response::Error {
        code: e.code().to_string(),
        message: e.to_string(),
    }
}

fn apply_set(session: &mut Session, name: &str, value: &str) -> Response {
    match name.to_ascii_lowercase().as_str() {
        "workers" => {
            if value.eq_ignore_ascii_case("default") {
                session.set_workers(None);
                return Response::Text {
                    body: "workers=default".to_string(),
                };
            }
            match value.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    session.set_workers(Some(n));
                    Response::Text {
                        body: format!("workers={n}"),
                    }
                }
                _ => Response::Error {
                    code: "proto".to_string(),
                    message: format!(
                        "invalid workers value {value:?} (positive integer or 'default')"
                    ),
                },
            }
        }
        other => Response::Error {
            code: "proto".to_string(),
            message: format!("unknown setting {other:?} (supported: workers)"),
        },
    }
}
