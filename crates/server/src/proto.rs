//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[u32 LE body length][u8 opcode][payload]`; the length
//! counts the opcode byte plus the payload. Inside payloads:
//!
//! * integers are little-endian fixed width,
//! * strings are `u32 LE byte length` + UTF-8 bytes,
//! * values are a one-byte tag (`0` null, `1` int + `i64`, `2` float +
//!   `f64` bits, `3` text + string),
//! * sequences are `u32 LE count` + elements.
//!
//! The first frame on a connection always travels server→client: a
//! [`Response::Hello`] carrying either a welcome or a "server busy"
//! rejection, so an admission decision never looks like a hang. After
//! that the client speaks [`Request`] frames and receives exactly one
//! [`Response`] frame per request, in order. There is no pipelining —
//! sessions are single-statement-at-a-time, matching the shell.
//!
//! Frames are capped at [`MAX_FRAME_LEN`]; a peer announcing a larger
//! body is treated as malformed and the connection is dropped rather
//! than letting a bad length prefix drive an unbounded allocation.

use std::io::{self, Read, Write};

use xomatiq_relstore::Value;

/// Hard upper bound on a frame body (opcode + payload), 64 MiB.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Client→server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement with positional parameters.
    Query {
        /// Statement text.
        sql: String,
        /// Positional bind values, left to right.
        params: Vec<Value>,
    },
    /// Parse and type a statement for later [`Request::Execute`].
    Prepare {
        /// Statement text with `?` placeholders.
        sql: String,
    },
    /// Execute a statement prepared in this session.
    Execute {
        /// Handle from [`Response::Prepared`].
        stmt_id: u32,
        /// Positional bind values.
        params: Vec<Value>,
    },
    /// Drop a prepared statement.
    CloseStmt {
        /// Handle from [`Response::Prepared`].
        stmt_id: u32,
    },
    /// Render the plan (`analyze = false`) or run-and-profile
    /// (`analyze = true`) for a `SELECT`.
    Explain {
        /// Statement text.
        sql: String,
        /// `EXPLAIN ANALYZE` when true.
        analyze: bool,
    },
    /// Liveness probe.
    Ping,
    /// Deterministic metrics snapshot (the `obs` text rendering).
    Metrics,
    /// Session-local setting, e.g. `SET workers 4` / `SET workers default`.
    Set {
        /// Setting name.
        name: String,
        /// Setting value.
        value: String,
    },
    /// Graceful end of session; the server answers [`Response::Bye`].
    Goodbye,
    /// Metrics snapshot rendered as JSON (the `obs` JSON rendering).
    MetricsJson,
    /// Any other request, carrying a client-chosen trace id. The server
    /// adopts the id as the request's trace root and echoes it back in a
    /// [`Response::Traced`] wrapper, which is what lets a client join its
    /// own spans with the server's in one trace tree. Wrappers do not
    /// nest.
    Traced {
        /// Client-chosen trace id (any nonzero u64; 0 is legal but
        /// indistinguishable from "untraced" in most sinks).
        trace_id: u64,
        /// The request to serve under that trace.
        inner: Box<Request>,
    },
}

/// Server→client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Greeting frame sent immediately on accept.
    Hello {
        /// `true` means admitted; `false` means the connection limit is
        /// reached and the server closes the socket after this frame.
        admitted: bool,
    },
    /// A query's result rows.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Row-major values.
        rows: Vec<Vec<Value>>,
    },
    /// A DML/DDL statement's affected-row count.
    Affected {
        /// Rows inserted/updated/deleted (0 for DDL).
        count: u64,
    },
    /// A request failed; the session stays usable.
    Error {
        /// Stable machine-readable code (`RelError::code` or `proto`).
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// A statement was prepared.
    Prepared {
        /// Session-scoped handle for [`Request::Execute`].
        stmt_id: u32,
        /// Number of `?` placeholders.
        param_count: u32,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Free-form text payload (EXPLAIN output, metrics rendering, SET ack).
    Text {
        /// The text.
        body: String,
    },
    /// Answer to [`Request::CloseStmt`].
    Closed {
        /// Whether the handle existed.
        existed: bool,
    },
    /// Answer to [`Request::Goodbye`]; the server closes after sending it.
    Bye,
    /// The response to a [`Request::Traced`], echoing the trace id so the
    /// client can correlate without bookkeeping.
    Traced {
        /// The trace id from the request.
        trace_id: u64,
        /// The wrapped response. Wrappers do not nest.
        inner: Box<Response>,
    },
}

// --- payload primitives ----------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

fn put_values(buf: &mut Vec<u8>, vs: &[Value]) {
    put_u32(buf, vs.len() as u32);
    for v in vs {
        put_value(buf, v);
    }
}

/// A cursor over a frame payload with typed, bounds-checked reads.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("payload truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid UTF-8 in string"))
    }

    fn value(&mut self) -> io::Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.str()?),
            tag => return Err(malformed(&format!("unknown value tag {tag}"))),
        })
    }

    /// Everything left in the payload (used for nested frame bodies).
    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn values(&mut self) -> io::Result<Vec<Value>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.value()?);
        }
        Ok(out)
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed("trailing bytes in payload"))
        }
    }
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {what}"),
    )
}

// --- frame encode/decode ---------------------------------------------------

impl Request {
    fn opcode(&self) -> u8 {
        match self {
            Request::Query { .. } => 0x01,
            Request::Prepare { .. } => 0x02,
            Request::Execute { .. } => 0x03,
            Request::CloseStmt { .. } => 0x04,
            Request::Explain { .. } => 0x05,
            Request::Ping => 0x06,
            Request::Metrics => 0x07,
            Request::Set { .. } => 0x08,
            Request::Goodbye => 0x09,
            Request::Traced { .. } => 0x0a,
            Request::MetricsJson => 0x0b,
        }
    }

    /// Serializes this request as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Request::Query { sql, params } => {
                put_str(&mut payload, sql);
                put_values(&mut payload, params);
            }
            Request::Prepare { sql } => put_str(&mut payload, sql),
            Request::Execute { stmt_id, params } => {
                put_u32(&mut payload, *stmt_id);
                put_values(&mut payload, params);
            }
            Request::CloseStmt { stmt_id } => put_u32(&mut payload, *stmt_id),
            Request::Explain { sql, analyze } => {
                put_str(&mut payload, sql);
                payload.push(u8::from(*analyze));
            }
            Request::Ping | Request::Metrics | Request::MetricsJson | Request::Goodbye => {}
            Request::Set { name, value } => {
                put_str(&mut payload, name);
                put_str(&mut payload, value);
            }
            Request::Traced { trace_id, inner } => {
                payload.extend_from_slice(&trace_id.to_le_bytes());
                // Nested body = the inner frame minus its length prefix.
                payload.extend_from_slice(&inner.encode()[4..]);
            }
        }
        frame(self.opcode(), payload)
    }

    /// Parses a frame body (opcode + payload) into a request.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let req = match op {
            0x01 => Request::Query {
                sql: c.str()?,
                params: c.values()?,
            },
            0x02 => Request::Prepare { sql: c.str()? },
            0x03 => Request::Execute {
                stmt_id: c.u32()?,
                params: c.values()?,
            },
            0x04 => Request::CloseStmt { stmt_id: c.u32()? },
            0x05 => Request::Explain {
                sql: c.str()?,
                analyze: c.u8()? != 0,
            },
            0x06 => Request::Ping,
            0x07 => Request::Metrics,
            0x08 => Request::Set {
                name: c.str()?,
                value: c.str()?,
            },
            0x09 => Request::Goodbye,
            0x0a => {
                let trace_id = c.u64()?;
                let inner = Request::decode(c.rest())?;
                if matches!(inner, Request::Traced { .. }) {
                    return Err(malformed("nested trace wrapper"));
                }
                Request::Traced {
                    trace_id,
                    inner: Box::new(inner),
                }
            }
            0x0b => Request::MetricsJson,
            op => return Err(malformed(&format!("unknown request opcode {op:#x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    fn opcode(&self) -> u8 {
        match self {
            Response::Hello { .. } => 0x81,
            Response::Rows { .. } => 0x82,
            Response::Affected { .. } => 0x83,
            Response::Error { .. } => 0x84,
            Response::Prepared { .. } => 0x85,
            Response::Pong => 0x86,
            Response::Text { .. } => 0x87,
            Response::Closed { .. } => 0x88,
            Response::Bye => 0x89,
            Response::Traced { .. } => 0x8a,
        }
    }

    /// Serializes this response as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Response::Hello { admitted } => payload.push(u8::from(*admitted)),
            Response::Rows { columns, rows } => {
                put_u32(&mut payload, columns.len() as u32);
                for c in columns {
                    put_str(&mut payload, c);
                }
                put_u32(&mut payload, rows.len() as u32);
                for row in rows {
                    put_values(&mut payload, row);
                }
            }
            Response::Affected { count } => payload.extend_from_slice(&count.to_le_bytes()),
            Response::Error { code, message } => {
                put_str(&mut payload, code);
                put_str(&mut payload, message);
            }
            Response::Prepared {
                stmt_id,
                param_count,
            } => {
                put_u32(&mut payload, *stmt_id);
                put_u32(&mut payload, *param_count);
            }
            Response::Pong | Response::Bye => {}
            Response::Text { body } => put_str(&mut payload, body),
            Response::Closed { existed } => payload.push(u8::from(*existed)),
            Response::Traced { trace_id, inner } => {
                payload.extend_from_slice(&trace_id.to_le_bytes());
                payload.extend_from_slice(&inner.encode()[4..]);
            }
        }
        frame(self.opcode(), payload)
    }

    /// Parses a frame body (opcode + payload) into a response.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(body);
        let op = c.u8()?;
        let resp = match op {
            0x81 => Response::Hello {
                admitted: c.u8()? != 0,
            },
            0x82 => {
                let ncols = c.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                let nrows = c.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(1024));
                for _ in 0..nrows {
                    rows.push(c.values()?);
                }
                Response::Rows { columns, rows }
            }
            0x83 => Response::Affected { count: c.u64()? },
            0x84 => Response::Error {
                code: c.str()?,
                message: c.str()?,
            },
            0x85 => Response::Prepared {
                stmt_id: c.u32()?,
                param_count: c.u32()?,
            },
            0x86 => Response::Pong,
            0x87 => Response::Text { body: c.str()? },
            0x88 => Response::Closed {
                existed: c.u8()? != 0,
            },
            0x89 => Response::Bye,
            0x8a => {
                let trace_id = c.u64()?;
                let inner = Response::decode(c.rest())?;
                if matches!(inner, Response::Traced { .. }) {
                    return Err(malformed("nested trace wrapper"));
                }
                Response::Traced {
                    trace_id,
                    inner: Box::new(inner),
                }
            }
            op => return Err(malformed(&format!("unknown response opcode {op:#x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

fn frame(opcode: u8, payload: Vec<u8>) -> Vec<u8> {
    let body_len = 1 + payload.len();
    let mut out = Vec::with_capacity(4 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(&payload);
    out
}

/// Writes one already-encoded frame to `w`.
pub fn write_frame(w: &mut impl Write, encoded: &[u8]) -> io::Result<()> {
    w.write_all(encoded)?;
    w.flush()
}

/// Reads one frame body (opcode + payload) from `r`, blocking until it
/// arrives. `Ok(None)` means the peer closed cleanly before a new frame
/// began.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(malformed(&format!("frame length {len} out of range")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Query {
                sql: "SELECT 'O''Hara' FROM t WHERE a = ?".into(),
                params: vec![
                    Value::Null,
                    Value::Int(i64::MAX),
                    Value::Float(-0.0),
                    Value::Text("x''y".into()),
                ],
            },
            Request::Prepare { sql: "".into() },
            Request::Execute {
                stmt_id: 7,
                params: vec![],
            },
            Request::CloseStmt { stmt_id: u32::MAX },
            Request::Explain {
                sql: "SELECT 1".into(),
                analyze: true,
            },
            Request::Ping,
            Request::Metrics,
            Request::Set {
                name: "workers".into(),
                value: "4".into(),
            },
            Request::Goodbye,
            Request::MetricsJson,
            Request::Traced {
                trace_id: 0xdead_beef_cafe_f00d,
                inner: Box::new(Request::Query {
                    sql: "SELECT 1".into(),
                    params: vec![Value::Int(9)],
                }),
            },
        ];
        for req in reqs {
            let frame = req.encode();
            let body = read_frame(&mut &frame[..]).unwrap().unwrap();
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Hello { admitted: false },
            Response::Rows {
                columns: vec!["a".into(), "b".into()],
                rows: vec![
                    vec![Value::Int(1), Value::Text("x".into())],
                    vec![Value::Null, Value::Float(2.5)],
                ],
            },
            Response::Affected { count: 42 },
            Response::Error {
                code: "bind".into(),
                message: "oops".into(),
            },
            Response::Prepared {
                stmt_id: 3,
                param_count: 2,
            },
            Response::Pong,
            Response::Text {
                body: "plan\ntree".into(),
            },
            Response::Closed { existed: true },
            Response::Bye,
            Response::Traced {
                trace_id: 7,
                inner: Box::new(Response::Rows {
                    columns: vec!["n".into()],
                    rows: vec![vec![Value::Int(1)]],
                }),
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            let body = read_frame(&mut &frame[..]).unwrap().unwrap();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Unknown opcode.
        assert!(Request::decode(&[0x7f]).is_err());
        assert!(Response::decode(&[0x01]).is_err());
        // Truncated payload.
        assert!(Request::decode(&[0x01, 5, 0, 0, 0, b'S']).is_err());
        // Trailing garbage.
        let mut frame = Request::Ping.encode();
        frame[0] += 1; // lengthen the body
        frame.push(0xee);
        let body = read_frame(&mut &frame[..]).unwrap().unwrap();
        assert!(Request::decode(&body).is_err());
        // A trace wrapper may not nest another trace wrapper.
        let nested = Request::Traced {
            trace_id: 1,
            inner: Box::new(Request::Ping),
        };
        let mut body = vec![0x0a];
        body.extend_from_slice(&2u64.to_le_bytes());
        body.extend_from_slice(&nested.encode()[4..]);
        assert!(Request::decode(&body).is_err());
        // Oversized length prefix.
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        let mut buf = huge.to_vec();
        buf.push(0x06);
        assert!(read_frame(&mut &buf[..]).is_err());
        // Clean EOF before a frame begins.
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
        // NaN floats survive (bit-exact transport).
        let req = Request::Query {
            sql: "q".into(),
            params: vec![Value::Float(f64::NAN)],
        };
        let body = read_frame(&mut &req.encode()[..]).unwrap().unwrap();
        match Request::decode(&body).unwrap() {
            Request::Query { params, .. } => match params[0] {
                Value::Float(f) => assert!(f.is_nan()),
                ref v => panic!("expected float, got {v:?}"),
            },
            r => panic!("expected query, got {r:?}"),
        }
    }
}
