#![warn(missing_docs)]

//! # xomatiq-server
//!
//! The network front door for the XomatiQ engine: a TCP server speaking
//! a length-prefixed binary protocol, serving many concurrent sessions
//! over one shared [`Database`](xomatiq_relstore::Database).
//!
//! The paper frames XomatiQ as the query interface of gRNA serving many
//! researchers against warehoused EMBL/Swiss-Prot/ENZYME data (§3); up
//! to now the engine was embedded-only. This crate adds the missing
//! serving layer while keeping the engine in charge of everything hard:
//! each connection is a thin [`Session`](xomatiq_relstore::Session) over
//! the shared plan cache, MVCC snapshots and morsel-parallel executor.
//!
//! * [`proto`] — the frame codec ([`Request`], [`Response`]).
//! * [`server`] — listener, admission control, session threads,
//!   draining shutdown ([`start`], [`ServerConfig`], [`ServerHandle`]).
//! * [`client`] — a blocking [`Client`] used by the shell's `--connect`
//!   mode, the tests and the load generator.
//!
//! ```no_run
//! use std::sync::Arc;
//! use xomatiq_relstore::Database;
//! use xomatiq_server::{start, Client, ServerConfig};
//!
//! let db = Arc::new(Database::in_memory());
//! let server = start(db, ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() }).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.query("CREATE TABLE t (a INT)", vec![]).unwrap();
//! client.goodbye().unwrap();
//! ```

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, ClientResult, QueryReply};
pub use proto::{Request, Response, MAX_FRAME_LEN};
pub use server::{start, ServerConfig, ServerHandle};
