//! `xomatiq-server-load` — load generator for the wire protocol.
//!
//! Boots an in-process server over a seeded in-memory database, hammers
//! it from N concurrent TCP clients (a mix of prepared point lookups,
//! ad-hoc aggregates and pings), and reports client-observed p50/p99
//! latency plus throughput. Results are written to `BENCH_server.json`
//! at the workspace root so future PRs have a serving-layer perf
//! trajectory, alongside the server's own latency histogram quantiles
//! from `obs` for cross-checking.
//!
//! `XOMATIQ_BENCH_SMOKE=1` shrinks the run to a few hundred requests —
//! CI uses this to keep the harness from bit-rotting.

use std::sync::Arc;
use std::time::Instant;

use xomatiq_obs::MetricValue;
use xomatiq_relstore::{Database, Value};
use xomatiq_server::{start, Client, QueryReply, ServerConfig};

fn smoke() -> bool {
    std::env::var("XOMATIQ_BENCH_SMOKE").is_ok()
}

/// `(rows, clients, requests per client)`.
fn scale() -> (usize, usize, usize) {
    if smoke() {
        (500, 4, 50)
    } else {
        (20_000, 8, 1_000)
    }
}

fn build_db(rows: usize) -> Arc<Database> {
    let db = Database::in_memory();
    db.query("CREATE TABLE seq (id INT, family TEXT, len INT)")
        .run()
        .unwrap();
    let insert = db.prepare("INSERT INTO seq VALUES (?, ?, ?)").unwrap();
    for i in 0..rows {
        db.query_prepared(&insert)
            .bind(i as i64)
            .bind(format!("fam{}", i % 97))
            .bind((i * 37 % 1000) as i64)
            .run()
            .unwrap();
    }
    db.query("CREATE INDEX idx_seq_id ON seq (id)")
        .run()
        .unwrap();
    Arc::new(db)
}

/// One client's workload; returns per-request latencies in nanoseconds.
fn client_loop(addr: std::net::SocketAddr, id: usize, rows: usize, requests: usize) -> Vec<u64> {
    let mut client = Client::connect(addr).expect("connect");
    let (stmt, _) = client
        .prepare("SELECT family, len FROM seq WHERE id = ?")
        .expect("prepare");
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let key = ((id * 7919 + i * 104_729) % rows) as i64;
        let started = Instant::now();
        match i % 10 {
            // Mostly prepared point lookups — the serving hot path.
            0..=7 => {
                let reply = client
                    .execute(stmt, vec![Value::Int(key)])
                    .expect("execute");
                assert_eq!(reply.rows().len(), 1, "point lookup must hit");
            }
            // Occasional ad-hoc aggregate to keep the plan cache honest.
            8 => {
                let reply = client
                    .query(
                        "SELECT COUNT(*) FROM seq WHERE len < ?",
                        vec![Value::Int(500)],
                    )
                    .expect("query");
                assert!(matches!(reply, QueryReply::Rows { .. }));
            }
            // And a ping to measure the protocol floor.
            _ => client.ping().expect("ping"),
        }
        latencies.push(started.elapsed().as_nanos() as u64);
    }
    client.goodbye().expect("goodbye");
    latencies
}

/// Exact quantile over client-side samples (sorted, nearest-rank).
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The server-side latency histogram's interpolated quantile, in ns.
fn server_hist_quantile(q: f64) -> f64 {
    let snap = xomatiq_obs::global().snapshot();
    for (name, value) in &snap.entries {
        if name == "server.request.latency_ns" {
            if let MetricValue::Histogram(h) = value {
                return h.quantile(q).unwrap_or(0.0);
            }
        }
    }
    0.0
}

/// A single-row `COUNT(*)`-style integer result over the wire.
fn count(client: &mut Client, sql: &str) -> i64 {
    let reply = client.query(sql, vec![]).expect("system catalog query");
    match reply.rows()[0][0] {
        Value::Int(n) => n,
        ref v => panic!("expected Int from {sql}, got {v:?}"),
    }
}

/// After the run, the server's own telemetry must be queryable over the
/// same wire: an empty system catalog here means the observability
/// plumbing bit-rotted, so fail the bench loudly.
fn check_introspection(addr: std::net::SocketAddr) {
    let mut probe = Client::connect(addr).expect("connect introspection probe");
    probe.set_trace(Some(0x10ad));
    let metrics = count(
        &mut probe,
        "SELECT COUNT(*) FROM sys_metrics WHERE name LIKE 'server.%'",
    );
    assert!(metrics > 0, "sys_metrics has no server.* rows after load");
    let queries = count(&mut probe, "SELECT COUNT(*) FROM sys_queries");
    assert!(queries > 0, "sys_queries is empty after the load run");
    probe.goodbye().expect("goodbye");
    eprintln!("introspection: {metrics} server metric rows, {queries} recorded statements");
}

fn main() {
    let (rows, clients, requests) = scale();
    eprintln!("seeding {rows} rows...");
    let db = build_db(rows);
    let mut server = start(
        db,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: clients + 2,
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    eprintln!("server on {addr}; driving {clients} clients x {requests} requests");

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|id| std::thread::spawn(move || client_loop(addr, id, rows, requests)))
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(clients * requests);
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = started.elapsed();
    check_introspection(addr);
    server.shutdown();

    latencies.sort_unstable();
    let total = latencies.len();
    let p50_us = quantile_ns(&latencies, 0.50) as f64 / 1_000.0;
    let p99_us = quantile_ns(&latencies, 0.99) as f64 / 1_000.0;
    let throughput = total as f64 / elapsed.as_secs_f64();
    let hist_p50_us = server_hist_quantile(0.50) / 1_000.0;
    let hist_p99_us = server_hist_quantile(0.99) / 1_000.0;

    println!(
        "{total} requests over {clients} clients in {:.2}s: {throughput:.0} req/s, \
         client p50 {p50_us:.1}us p99 {p99_us:.1}us (server histogram p50 {hist_p50_us:.1}us p99 {hist_p99_us:.1}us)",
        elapsed.as_secs_f64()
    );

    let json = format!(
        "{{\"bench\":\"server\",\"smoke\":{},\"clients\":{clients},\"requests\":{total},\
         \"elapsed_ms\":{:.1},\"throughput_rps\":{throughput:.1},\
         \"p50_us\":{p50_us:.1},\"p99_us\":{p99_us:.1},\
         \"server_hist_p50_us\":{hist_p50_us:.1},\"server_hist_p99_us\":{hist_p99_us:.1}}}\n",
        smoke(),
        elapsed.as_secs_f64() * 1_000.0,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, json).expect("write BENCH_server.json");
    eprintln!("wrote {path}");
}
