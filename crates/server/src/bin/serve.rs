//! `xomatiq-server` — serve a database over TCP.
//!
//! ```text
//! xomatiq-server [--addr HOST:PORT] [--data DIR] [--max-connections N]
//! ```
//!
//! With `--data` the database is opened (or created) at that directory
//! with WAL durability; without it the server runs in-memory. The
//! process serves until stdin reaches EOF or a line reading `quit`,
//! then shuts down gracefully, draining in-flight queries.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

use xomatiq_relstore::Database;
use xomatiq_server::{start, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut data_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--data" => match args.next() {
                Some(v) => data_dir = Some(v),
                None => return usage("--data needs a directory"),
            },
            "--max-connections" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_connections = n,
                None => return usage("--max-connections needs a positive integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let db = match &data_dir {
        Some(dir) => match Database::open(std::path::Path::new(dir)) {
            Ok(db) => db,
            Err(e) => {
                eprintln!("xomatiq-server: cannot open {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Database::in_memory(),
    };

    let mut handle = match start(Arc::new(db), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("xomatiq-server: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "xomatiq-server listening on {} ({}); type 'quit' to stop",
        handle.local_addr(),
        match data_dir {
            Some(d) => format!("data dir {d}"),
            None => "in-memory".to_string(),
        }
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("xomatiq-server: draining sessions...");
    handle.shutdown();
    println!("xomatiq-server: stopped");
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("xomatiq-server: {err}");
    }
    eprintln!("usage: xomatiq-server [--addr HOST:PORT] [--data DIR] [--max-connections N]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
