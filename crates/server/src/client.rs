//! A small blocking client for the wire protocol — what the shell's
//! `--connect` mode, the integration tests and the load generator use.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use xomatiq_relstore::Value;

use crate::proto::{read_frame, Request, Response};

/// What a client-side request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(io::Error),
    /// The server rejected the connection at admission control.
    Busy,
    /// The server answered with an error response; the session survives.
    Server {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// The server sent something the protocol does not allow here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy => write!(f, "server busy: connection rejected"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A query's outcome as seen over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// A `SELECT`'s columns and rows.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Row-major values.
        rows: Vec<Vec<Value>>,
    },
    /// A DML/DDL affected-row count.
    Affected(u64),
}

impl QueryReply {
    /// The rows, or an empty slice for DML/DDL.
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            QueryReply::Rows { rows, .. } => rows,
            QueryReply::Affected(_) => &[],
        }
    }
}

/// A connected session. One request is in flight at a time; every method
/// writes a frame and blocks for its response.
///
/// With [`Client::set_trace`] armed, every request travels inside a
/// [`Request::Traced`] envelope carrying that id; the server roots its
/// spans under it, and `sys_queries.trace_id` reports it back as hex.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    trace_id: Option<u64>,
}

impl Client {
    /// Connects and waits for the greeting frame. [`ClientError::Busy`]
    /// means admission control turned the connection away.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            trace_id: None,
        };
        match client.read_response()? {
            Response::Hello { admitted: true } => Ok(client),
            Response::Hello { admitted: false } => Err(ClientError::Busy),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Arms (or clears) the trace id attached to every subsequent
    /// request on this client.
    pub fn set_trace(&mut self, trace_id: Option<u64>) {
        self.trace_id = trace_id;
    }

    /// The currently armed trace id, if any.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace_id
    }

    fn roundtrip(&mut self, request: Request) -> ClientResult<Response> {
        let request = match self.trace_id {
            Some(trace_id) => Request::Traced {
                trace_id,
                inner: Box::new(request),
            },
            None => request,
        };
        self.stream.write_all(&request.encode())?;
        self.stream.flush()?;
        let resp = match self.read_response()? {
            Response::Traced { trace_id, inner } => {
                if self.trace_id != Some(trace_id) {
                    return Err(ClientError::Protocol(format!(
                        "trace id mismatch: sent {:?}, got {trace_id}",
                        self.trace_id
                    )));
                }
                *inner
            }
            other => other,
        };
        match resp {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn read_response(&mut self) -> ClientResult<Response> {
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Response::decode(&body).map_err(ClientError::Io)
    }

    /// Runs one SQL statement with positional parameters.
    pub fn query(&mut self, sql: &str, params: Vec<Value>) -> ClientResult<QueryReply> {
        let resp = self.roundtrip(Request::Query {
            sql: sql.to_string(),
            params,
        })?;
        reply_from(resp)
    }

    /// Prepares a statement; returns `(stmt_id, param_count)`.
    pub fn prepare(&mut self, sql: &str) -> ClientResult<(u32, usize)> {
        match self.roundtrip(Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::Prepared {
                stmt_id,
                param_count,
            } => Ok((stmt_id, param_count as usize)),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Executes a prepared statement by handle.
    pub fn execute(&mut self, stmt_id: u32, params: Vec<Value>) -> ClientResult<QueryReply> {
        let resp = self.roundtrip(Request::Execute { stmt_id, params })?;
        reply_from(resp)
    }

    /// Closes a prepared statement; `true` if the handle existed.
    pub fn close_stmt(&mut self, stmt_id: u32) -> ClientResult<bool> {
        match self.roundtrip(Request::CloseStmt { stmt_id })? {
            Response::Closed { existed } => Ok(existed),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// `EXPLAIN` (or `EXPLAIN ANALYZE`) rendering for a `SELECT`.
    pub fn explain(&mut self, sql: &str, analyze: bool) -> ClientResult<String> {
        match self.roundtrip(Request::Explain {
            sql: sql.to_string(),
            analyze,
        })? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.roundtrip(Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The server's deterministic metrics snapshot (text rendering).
    pub fn metrics(&mut self) -> ClientResult<String> {
        match self.roundtrip(Request::Metrics)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// The server's metrics snapshot as a JSON document.
    pub fn metrics_json(&mut self) -> ClientResult<String> {
        match self.roundtrip(Request::MetricsJson)? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Applies a session-local setting, e.g. `set("workers", "4")`.
    pub fn set(&mut self, name: &str, value: &str) -> ClientResult<String> {
        match self.roundtrip(Request::Set {
            name: name.to_string(),
            value: value.to_string(),
        })? {
            Response::Text { body } => Ok(body),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Ends the session gracefully, waiting for the server's `Bye`.
    pub fn goodbye(mut self) -> ClientResult<()> {
        match self.roundtrip(Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(unexpected("Bye", &other)),
        }
    }
}

fn reply_from(resp: Response) -> ClientResult<QueryReply> {
    match resp {
        Response::Rows { columns, rows } => Ok(QueryReply::Rows { columns, rows }),
        Response::Affected { count } => Ok(QueryReply::Affected(count)),
        other => Err(unexpected("Rows or Affected", &other)),
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
