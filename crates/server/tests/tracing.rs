//! End-to-end request tracing over real TCP sockets: a client-supplied
//! trace id must show up on every span of the request's trace tree —
//! including the WAL group-commit span emitted by a flush leader running
//! on a *different* session's thread — and round-trip through the
//! `sys_queries` virtual table.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, ThreadId};
use std::time::{Duration, Instant};

use xomatiq_obs::trace::{self, TraceSink, TraceSpanEvent};
use xomatiq_relstore::vtab::trace_id_text;
use xomatiq_relstore::{Database, Value, WalIo};
use xomatiq_server::{start, Client, QueryReply, ServerConfig};

/// The trace sink is process-global; tests that install one take this
/// lock so they never observe each other's spans.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn serve(db: Arc<Database>) -> xomatiq_server::ServerHandle {
    start(
        db,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 8,
        },
    )
    .expect("start server")
}

/// A sink that remembers which OS thread recorded each span — the fact
/// the cross-thread group-commit assertion is about.
#[derive(Default)]
struct ThreadSink {
    spans: Mutex<Vec<(TraceSpanEvent, ThreadId)>>,
}

impl ThreadSink {
    fn spans(&self) -> Vec<(TraceSpanEvent, ThreadId)> {
        self.spans.lock().unwrap().clone()
    }

    /// The thread that recorded the first span named `name` in `trace`.
    fn thread_of(&self, trace_id: u64, name: &str) -> Option<ThreadId> {
        self.spans()
            .into_iter()
            .find(|(s, _)| s.trace_id == trace_id && s.name == name)
            .map(|(_, t)| t)
    }
}

impl TraceSink for ThreadSink {
    fn record(&self, span: &TraceSpanEvent) {
        self.spans
            .lock()
            .unwrap()
            .push((span.clone(), thread::current().id()));
    }
}

#[test]
fn client_trace_id_reaches_every_span_and_sys_queries() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A durable database, so commits exercise the WAL spans too (the
    // gate stays open throughout this test).
    let (db, _) = Database::open_with_io(Box::<GateIo>::default()).unwrap();
    let db = Arc::new(db);
    let server = serve(Arc::clone(&db));
    let sink = Arc::new(ThreadSink::default());
    trace::set_trace_sink(Some(sink.clone()));

    let trace_id = 0x00c0_ffee_0000_beef_u64;
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_trace(Some(trace_id));
    client.query("CREATE TABLE t (a INT)", vec![]).unwrap();
    client
        .query("INSERT INTO t VALUES (?)", vec![Value::Int(7)])
        .unwrap();
    let reply = client.query("SELECT COUNT(*) FROM t", vec![]).unwrap();
    assert_eq!(reply.rows()[0][0], Value::Int(1));

    // The engine's spans all carry the id the client chose, rooted under
    // the server's per-request span.
    let spans: Vec<TraceSpanEvent> = sink
        .spans()
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| s.trace_id == trace_id)
        .collect();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "server.request",
        "relstore.query",
        "relstore.query.parse",
        "relstore.query.plan",
        "relstore.query.exec",
        "relstore.wal.commit_wait",
        "relstore.wal.group_commit",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // No span of these requests escaped to another trace: every
    // server.request span recorded carries the client's id.
    assert!(sink
        .spans()
        .iter()
        .filter(|(s, _)| s.name == "server.request")
        .all(|(s, _)| s.trace_id == trace_id));
    // The tree renders with the request as a root.
    let tree = trace::render_trace_tree(&spans, trace_id);
    assert!(tree.starts_with("server.request"), "tree:\n{tree}");

    // And the flight recorder reports the same id, queryable over the
    // same wire connection.
    let reply = client
        .query(
            "SELECT COUNT(*) FROM sys_queries WHERE trace_id = ?",
            vec![Value::Text(trace_id_text(trace_id))],
        )
        .unwrap();
    match reply.rows()[0][0] {
        Value::Int(n) => assert!(n >= 3, "expected at least 3 recorded statements, got {n}"),
        ref v => panic!("expected Int, got {v:?}"),
    }

    trace::set_trace_sink(None);
}

/// A WAL backend whose fsync can be held shut, so a group-commit flush
/// leader stays stuck mid-flush while other sessions enqueue commits.
#[derive(Debug, Default)]
struct GateIo {
    log: Vec<u8>,
    gate: Arc<Gate>,
}

#[derive(Debug, Default)]
struct Gate {
    closed: Mutex<bool>,
    opened: Condvar,
    stuck: AtomicBool,
}

impl Gate {
    fn engage(&self) {
        *self.closed.lock().unwrap() = true;
    }

    fn release(&self) {
        *self.closed.lock().unwrap() = false;
        self.opened.notify_all();
    }

    fn pass(&self) {
        let mut closed = self.closed.lock().unwrap();
        if *closed {
            self.stuck.store(true, Ordering::SeqCst);
        }
        while *closed {
            closed = self.opened.wait(closed).unwrap();
        }
    }
}

impl WalIo for GateIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log.extend_from_slice(bytes);
        Ok(())
    }

    fn fsync(&mut self) -> io::Result<()> {
        self.gate.pass();
        Ok(())
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.log.clone())
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.log.truncate(len as usize);
        Ok(())
    }
}

/// Three sessions commit concurrently while the first flush is held shut:
/// the first committer becomes the flush leader and sticks in fsync; the
/// other two enqueue behind it and are flushed together by ONE leader
/// thread once the gate opens. That leader belongs to one session, so at
/// least one of the two traces must receive its `group_commit` span from
/// a thread other than the one that served its query — the cross-session
/// linkage the trace model promises.
#[test]
fn group_commit_leader_span_links_other_sessions_traces() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let gate = Arc::new(Gate::default());
    let io = GateIo {
        log: Vec::new(),
        gate: Arc::clone(&gate),
    };
    let (db, _report) = Database::open_with_io(Box::new(io)).unwrap();
    let db = Arc::new(db);
    let server = serve(Arc::clone(&db));
    let sink = Arc::new(ThreadSink::default());
    trace::set_trace_sink(Some(sink.clone()));

    let mut setup = Client::connect(server.local_addr()).unwrap();
    setup.query("CREATE TABLE t (a INT)", vec![]).unwrap();

    // Hold the WAL shut, then let session A commit: it becomes the flush
    // leader and blocks inside fsync with only its own frame taken.
    gate.engage();
    let addr = server.local_addr();
    let commit = |trace_id: u64| {
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.set_trace(Some(trace_id));
            let reply = c
                .query(
                    "INSERT INTO t VALUES (?)",
                    vec![Value::Int(trace_id as i64)],
                )
                .unwrap();
            assert_eq!(reply, QueryReply::Affected(1));
        })
    };
    let a = commit(0xaaaa);
    let deadline = Instant::now() + Duration::from_secs(10);
    while !gate.stuck.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "leader never reached fsync");
        thread::sleep(Duration::from_millis(10));
    }

    // Sessions B and C commit while the leader is stuck: they enqueue
    // behind the in-flight flush and wait.
    let b = commit(0xbbbb);
    let c = commit(0xcccc);
    thread::sleep(Duration::from_millis(500));
    gate.release();
    for t in [a, b, c] {
        t.join().unwrap();
    }

    // Every trace got its group-commit span…
    for trace_id in [0xaaaa_u64, 0xbbbb, 0xcccc] {
        assert!(
            sink.thread_of(trace_id, "relstore.wal.group_commit")
                .is_some(),
            "trace {trace_id:#x} has no group_commit span"
        );
    }
    // …and B and C were flushed by one leader thread, which can belong
    // to at most one of their sessions: the other trace's group_commit
    // span was emitted by a thread that never served its query.
    let gc_b = sink.thread_of(0xbbbb, "relstore.wal.group_commit").unwrap();
    let gc_c = sink.thread_of(0xcccc, "relstore.wal.group_commit").unwrap();
    assert_eq!(gc_b, gc_c, "B and C were not flushed by the same leader");
    let q_b = sink.thread_of(0xbbbb, "relstore.query").unwrap();
    let q_c = sink.thread_of(0xcccc, "relstore.query").unwrap();
    assert_ne!(q_b, q_c, "B and C should run on distinct session threads");
    assert!(
        gc_b != q_b || gc_c != q_c,
        "one of B/C must get its group_commit span from another session's thread"
    );

    trace::set_trace_sink(None);
}

#[test]
fn metrics_json_travels_over_the_wire() {
    let db = Arc::new(Database::in_memory());
    let server = serve(Arc::clone(&db));
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    let body = client.metrics_json().unwrap();
    assert!(body.starts_with("{\"metrics\":["), "not JSON: {body}");
    assert!(body.contains("\"name\":\"server.requests\""));
}
