//! End-to-end serving-layer behaviour over real TCP sockets: snapshot
//! isolation across concurrent sessions, session-scoped prepared
//! statements, admission-control rejection, draining shutdown, and
//! cleanup after an abruptly killed client.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use xomatiq_relstore::{Database, Value};
use xomatiq_server::{proto, start, Client, ClientError, QueryReply, ServerConfig};

fn serve(db: Arc<Database>, max_connections: usize) -> xomatiq_server::ServerHandle {
    start(
        db,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections,
        },
    )
    .expect("start server")
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// ≥ 8 concurrent TCP clients each repeatedly read `MIN(v)` and `MAX(v)`
/// while a ninth session keeps running a whole-table `UPDATE ... v + 1`.
/// Under MVCC snapshot pinning every read sees one committed state, so
/// the two aggregates must always agree — a torn read would surface as
/// `min != max`.
#[test]
fn concurrent_sessions_see_snapshot_consistent_results() {
    let db = Arc::new(Database::in_memory());
    db.query("CREATE TABLE counters (id INT, v INT)")
        .run()
        .unwrap();
    for i in 0..200i64 {
        db.query("INSERT INTO counters VALUES (?, 0)")
            .bind(i)
            .run()
            .unwrap();
    }
    let server = serve(db, 16);
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let writer_stop = Arc::clone(&stop);
    let writer = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let mut updates = 0u64;
        while !writer_stop.load(Ordering::Relaxed) {
            match c.query("UPDATE counters SET v = v + 1", vec![]).unwrap() {
                QueryReply::Affected(n) => assert_eq!(n, 200),
                other => panic!("expected affected count, got {other:?}"),
            }
            updates += 1;
        }
        c.goodbye().unwrap();
        updates
    });

    let readers: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..25 {
                    let reply = c
                        .query("SELECT MIN(v), MAX(v) FROM counters", vec![])
                        .unwrap();
                    let rows = reply.rows();
                    assert_eq!(rows.len(), 1);
                    assert_eq!(
                        rows[0][0], rows[0][1],
                        "snapshot torn: min and max diverged under a concurrent writer"
                    );
                }
                c.goodbye().unwrap();
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader");
    }
    stop.store(true, Ordering::Relaxed);
    let updates = writer.join().expect("writer");
    assert!(
        updates > 0,
        "writer never committed during the readers' run"
    );
}

#[test]
fn prepared_statements_are_session_scoped() {
    let db = Arc::new(Database::in_memory());
    db.query("CREATE TABLE t (a INT, s TEXT)").run().unwrap();
    db.query("INSERT INTO t VALUES (1, 'one')").run().unwrap();
    let server = serve(db, 8);

    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    let (stmt, param_count) = a.prepare("SELECT s FROM t WHERE a = ?").unwrap();
    assert_eq!(param_count, 1);

    // The owning session executes its handle fine.
    let reply = a.execute(stmt, vec![Value::Int(1)]).unwrap();
    assert_eq!(reply.rows()[0][0], Value::Text("one".into()));

    // The same id from another session is rejected, not cross-served.
    match b.execute(stmt, vec![Value::Int(1)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "bind"),
        other => panic!("expected a server bind error, got {other:?}"),
    }
    // And the rejection did not poison B's session.
    b.ping().unwrap();

    // Closing is also session-scoped: A can, then the handle is gone.
    assert!(a.close_stmt(stmt).unwrap());
    assert!(matches!(
        a.execute(stmt, vec![Value::Int(1)]),
        Err(ClientError::Server { .. })
    ));

    a.goodbye().unwrap();
    b.goodbye().unwrap();
}

#[test]
fn over_limit_connections_are_rejected_cleanly() {
    let db = Arc::new(Database::in_memory());
    let server = serve(db, 2);
    let addr = server.local_addr();

    let mut c1 = Client::connect(addr).unwrap();
    let c2 = Client::connect(addr).unwrap();
    // Third connection: explicit busy frame, not a hang or a reset.
    match Client::connect(addr) {
        Err(ClientError::Busy) => {}
        other => panic!("expected busy rejection, got {other:?}"),
    }
    assert_eq!(server.rejected_connections(), 1);
    assert_eq!(server.active_sessions(), 2);
    // The admitted sessions were unaffected by the rejection.
    c1.ping().unwrap();

    // A slot frees on goodbye and a new connection is admitted.
    c2.goodbye().unwrap();
    wait_for("slot to free", || server.active_sessions() < 2);
    let c3 = Client::connect(addr).unwrap();
    c3.goodbye().unwrap();
    c1.goodbye().unwrap();
}

/// Shutdown must drain: a query in flight when `shutdown` is called
/// completes and its response reaches the client.
#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let db = Arc::new(Database::in_memory());
    db.query("CREATE TABLE n (i INT)").run().unwrap();
    for i in 0..1200i64 {
        db.query("INSERT INTO n VALUES (?)").bind(i).run().unwrap();
    }
    let mut server = serve(db, 8);
    let addr = server.local_addr();

    let started = Arc::new(AtomicBool::new(false));
    let started_flag = Arc::clone(&started);
    let worker = thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        started_flag.store(true, Ordering::SeqCst);
        // A cross join big enough to still be running when shutdown hits.
        c.query(
            "SELECT COUNT(*) FROM n a, n b WHERE a.i + b.i = 1199",
            vec![],
        )
    });

    wait_for("query to start", || started.load(Ordering::SeqCst));
    thread::sleep(Duration::from_millis(30));
    server.shutdown();
    // shutdown() returning means all session threads exited — and the
    // in-flight query's answer must have been delivered first.
    let reply = worker
        .join()
        .expect("client thread")
        .expect("drained query");
    assert_eq!(reply.rows()[0][0], Value::Int(1200));

    // After shutdown the listener is gone.
    assert!(Client::connect(addr).is_err());
}

/// A client that vanishes mid-session (and even mid-request) must leave
/// no session state behind: the slot frees, and new sessions still work.
#[test]
fn killed_client_leaks_no_session_state() {
    let db = Arc::new(Database::in_memory());
    db.query("CREATE TABLE t (a INT)").run().unwrap();
    db.query("INSERT INTO t VALUES (7)").run().unwrap();
    let server = serve(db, 3);
    let addr = server.local_addr();

    // Kill one client between requests, holding prepared statements.
    let mut idle = Client::connect(addr).unwrap();
    idle.prepare("SELECT a FROM t WHERE a = ?").unwrap();
    wait_for("both sessions up", || server.active_sessions() >= 1);
    drop(idle); // socket closes with no goodbye

    // Kill another one mid-request: write a query frame, then vanish
    // before reading the response.
    let mut raw = TcpStream::connect(addr).unwrap();
    let hello = proto::read_frame(&mut &raw).unwrap().expect("hello frame");
    assert!(matches!(
        proto::Response::decode(&hello).unwrap(),
        proto::Response::Hello { admitted: true }
    ));
    let req = proto::Request::Query {
        sql: "SELECT COUNT(*) FROM t a, t b".to_string(),
        params: vec![],
    };
    raw.write_all(&req.encode()).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // Both slots must come back without any explicit cleanup call.
    wait_for("killed sessions to be reaped", || {
        server.active_sessions() == 0
    });

    // The server is fully usable afterwards, up to its connection limit.
    let mut fresh: Vec<Client> = (0..3).map(|_| Client::connect(addr).unwrap()).collect();
    let reply = fresh[0].query("SELECT a FROM t", vec![]).unwrap();
    assert_eq!(reply.rows()[0][0], Value::Int(7));
    for c in fresh.drain(..) {
        c.goodbye().unwrap();
    }
}

/// The `METRICS` command returns the deterministic obs rendering and the
/// serving-layer instruments show up in it.
#[test]
fn metrics_command_reports_server_instruments() {
    let db = Arc::new(Database::in_memory());
    let server = serve(db, 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    let text = c.metrics().unwrap();
    assert!(text.contains("server.connections.accepted counter"));
    assert!(text.contains("server.requests counter"));
    assert!(text.contains("server.request.latency_ns histogram"));
    assert!(text.contains("server.sessions.active gauge"));
    // EXPLAIN travels as text too.
    c.query("CREATE TABLE e (x INT)", vec![]).unwrap();
    let plan = c.explain("SELECT x FROM e WHERE x = 1", false).unwrap();
    assert!(!plan.is_empty());
    // Session-local worker setting round-trips.
    assert_eq!(c.set("workers", "2").unwrap(), "workers=2");
    assert_eq!(c.set("workers", "default").unwrap(), "workers=default");
    assert!(matches!(
        c.set("workers", "zero"),
        Err(ClientError::Server { .. })
    ));
    c.goodbye().unwrap();
}
