//! P4 — the shredding-strategy ablation (paper §2.2 design choices).
//!
//! The paper's generic schema is proprietary; DESIGN.md brackets it with
//! the Edge and Interval encodings its citations describe. This bench
//! measures (a) bulk-load throughput and (b) a containment-flavoured query
//! under each strategy. Expected shape: Edge loads slightly faster (no
//! region bookkeeping); Interval answers descendant-scoped queries with
//! pure integer predicates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xomatiq_bench::{build_enzyme_warehouse, corpus};
use xomatiq_core::ShreddingStrategy;

fn bench_shredding(c: &mut Criterion) {
    let mut load_group = c.benchmark_group("shred_load");
    load_group.sample_size(10);
    for scale in [500usize, 2_000] {
        let data = corpus(scale);
        load_group.throughput(Throughput::Elements(scale as u64));
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            load_group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        let xq = build_enzyme_warehouse(&data, strategy, true);
                        std::hint::black_box(xq.doc_count("hlx_enzyme.DEFAULT").unwrap())
                    });
                },
            );
        }
    }
    load_group.finish();

    let mut query_group = c.benchmark_group("shred_containment_query");
    query_group.sample_size(10);
    // A sub-tree search is the containment-heavy shape: the witness must
    // lie inside the bound entry's region.
    let subtree = r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
                     WHERE contains($a//db_entry, "Copper")
                     RETURN $a//enzyme_id"#;
    for scale in [2_000usize] {
        let data = corpus(scale);
        for strategy in [ShreddingStrategy::Edge, ShreddingStrategy::Interval] {
            let xq = build_enzyme_warehouse(&data, strategy, true);
            query_group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        let outcome = xq.query(subtree).expect("runs");
                        std::hint::black_box(outcome.rows.len())
                    });
                },
            );
        }
    }
    query_group.finish();
}

criterion_group!(benches, bench_shredding);
criterion_main!(benches);
