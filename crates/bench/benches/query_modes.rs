//! P1 — "majority of XomatiQ queries … can be evaluated efficiently over
//! relational database systems" (paper §3.2).
//!
//! Measures the latency of the paper's three published query modes
//! (Figure 8 keyword search, Figure 9 sub-tree search, Figure 11 join) on
//! fully indexed warehouses of growing size. Expected shape: latency grows
//! far slower than corpus size for the index-served modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bench::{build_warehouse, corpus, FIGURE11, FIGURE8, FIGURE9};
use xomatiq_core::ShreddingStrategy;

fn bench_query_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_modes");
    group.sample_size(10);
    for scale in [500usize, 2_000, 8_000] {
        let data = corpus(scale);
        let xq = build_warehouse(&data, ShreddingStrategy::Interval, true);
        for (mode, query) in [
            ("keyword_fig8", FIGURE8),
            ("subtree_fig9", FIGURE9),
            ("join_fig11", FIGURE11),
        ] {
            // Figure 8's result is the cross product of two independent
            // binding sets — its OUTPUT grows quadratically with corpus
            // size, so it is only meaningful at the smaller scales.
            if mode == "keyword_fig8" && scale > 2_000 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(mode, scale), &scale, |b, _| {
                b.iter(|| {
                    let outcome = xq.query(query).expect("query runs");
                    std::hint::black_box(outcome.rows.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_modes);
criterion_main!(benches);
