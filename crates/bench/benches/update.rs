//! P6 — incremental updates (paper §2 requirement 2 and §2.2 end).
//!
//! Measures re-synchronization cost against a new source snapshot as a
//! function of the fraction of entries that actually changed. Expected
//! shape: cost scales with the change fraction, NOT with warehouse size —
//! that is the point of entry-level diffing ("without any information
//! being left out or added twice") versus a full reload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bench::{build_enzyme_warehouse, corpus};
use xomatiq_core::ShreddingStrategy;

const SCALE: usize = 2_000;

fn bench_update(c: &mut Criterion) {
    let data = corpus(SCALE);
    let mut group = c.benchmark_group("incremental_update");
    group.sample_size(10);

    for changed_percent in [1usize, 10, 50] {
        let changed = SCALE * changed_percent / 100;
        // The new snapshot: the first `changed` entries get new text.
        let mut v2 = data.enzymes.clone();
        for entry in v2.iter_mut().take(changed) {
            entry.descriptions = vec![format!("Revised: {}", entry.descriptions[0])];
        }
        let flat_v2: String = v2.iter().map(|e| e.to_flat()).collect();
        group.bench_with_input(
            BenchmarkId::new("resync", format!("{changed_percent}pct")),
            &changed_percent,
            |b, _| {
                b.iter_batched(
                    || build_enzyme_warehouse(&data, ShreddingStrategy::Interval, true),
                    |xq| {
                        let events = xq
                            .update_source("hlx_enzyme.DEFAULT", &flat_v2)
                            .expect("update");
                        assert_eq!(events.len(), changed);
                        std::hint::black_box(events.len())
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }

    // Baseline: what a full reload would cost instead.
    group.bench_function("full_reload_baseline", |b| {
        b.iter(|| {
            let xq = build_enzyme_warehouse(&data, ShreddingStrategy::Interval, true);
            std::hint::black_box(xq.doc_count("hlx_enzyme.DEFAULT").unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
