//! P3 — "reconstruction of entire large XML document from the tuples is
//! expensive compared to the query processing time in the RDBMS"
//! (paper §3.3).
//!
//! Compares, for documents of growing size, (a) the SQL query that fetches
//! one value out of a document against (b) full Relation2XML
//! reconstruction of that document plus serialization. Expected shape:
//! reconstruction dominates and grows linearly with document size, while
//! the point query stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bioflat::EnzymeEntry;
use xomatiq_core::{ShreddingStrategy, SourceKind, Xomatiq};
use xomatiq_datahounds::source::LoadOptions;

/// A single enzyme entry with `n` comments — a document of ~2n nodes.
fn big_entry(n: usize) -> EnzymeEntry {
    EnzymeEntry {
        id: "1.1.1.1".into(),
        descriptions: vec!["Synthetic large-document enzyme.".into()],
        comments: (0..n)
            .map(|i| format!("Observation number {i} about the catalytic mechanism."))
            .collect(),
        ..EnzymeEntry::default()
    }
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruction");
    group.sample_size(10);
    for doc_nodes in [100usize, 1_000, 5_000] {
        let entry = big_entry(doc_nodes / 2);
        let xq = Xomatiq::in_memory();
        xq.load_source_with(
            "c",
            SourceKind::Enzyme,
            &entry.to_flat(),
            LoadOptions {
                strategy: ShreddingStrategy::Interval,
                with_indexes: true,
                validate: false,
            },
        )
        .expect("load");

        let point_query = r#"FOR $a IN document("c")/hlx_enzyme
                             WHERE $a//enzyme_id = "1.1.1.1"
                             RETURN $a//enzyme_description"#;
        group.bench_with_input(
            BenchmarkId::new("point_query", doc_nodes),
            &doc_nodes,
            |b, _| {
                b.iter(|| {
                    let outcome = xq.query(point_query).expect("runs");
                    std::hint::black_box(outcome.rows.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reconstruct_and_serialize", doc_nodes),
            &doc_nodes,
            |b, _| {
                b.iter(|| {
                    let doc = xq.reconstruct("c", "1.1.1.1").expect("reconstructs");
                    std::hint::black_box(xomatiq_xml::to_string(&doc).len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reconstruction);
criterion_main!(benches);
