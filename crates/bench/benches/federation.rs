//! P10 — distributed-warehouse querying (§3: "one or more distributed or
//! local warehouses").
//!
//! Measures the Figure 11 join executed (a) on a single warehouse holding
//! both collections and (b) across a two-node federation (split into
//! per-node sub-queries and recombined). Expected shape: the federated
//! path pays a modest constant overhead — the per-node sub-queries
//! dominate, and the client-side hash recombination is cheap relative to
//! them.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bench::{corpus, FIGURE11};
use xomatiq_core::{Federation, ShreddingStrategy, SourceKind, Xomatiq};
use xomatiq_datahounds::source::LoadOptions;

fn bench_federation(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation");
    group.sample_size(10);
    let options = LoadOptions {
        strategy: ShreddingStrategy::Interval,
        with_indexes: true,
        validate: false,
    };
    for scale in [500usize, 2_000] {
        let data = corpus(scale);

        let single = Xomatiq::in_memory();
        single
            .load_source_with("hlx_embl.inv", SourceKind::Embl, &data.embl_flat(), options)
            .expect("load");
        single
            .load_source_with(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &data.enzyme_flat(),
                options,
            )
            .expect("load");

        let mut federation = Federation::new();
        let node_a = Arc::new(Xomatiq::in_memory());
        node_a
            .load_source_with("hlx_embl.inv", SourceKind::Embl, &data.embl_flat(), options)
            .expect("load");
        federation.add_warehouse("node-a", node_a);
        let node_b = Arc::new(Xomatiq::in_memory());
        node_b
            .load_source_with(
                "hlx_enzyme.DEFAULT",
                SourceKind::Enzyme,
                &data.enzyme_flat(),
                options,
            )
            .expect("load");
        federation.add_warehouse("node-b", node_b);

        group.bench_with_input(
            BenchmarkId::new("single_warehouse_fig11", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let outcome = single.query(FIGURE11).expect("runs");
                    std::hint::black_box(outcome.rows.len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("federated_fig11", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let outcome = federation.query(FIGURE11).expect("runs");
                    std::hint::black_box(outcome.rows.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_federation);
criterion_main!(benches);
