//! P7 — "our design supports efficient keyword-based searches in the
//! relational database system" (paper §2.2).
//!
//! Measures the Figure 8-style whole-document keyword search served by the
//! inverted keyword index versus the same predicate evaluated by scan
//! (tokenizing every stored value). Expected shape: the index wins by
//! orders of magnitude and its advantage grows with corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bench::{build_enzyme_warehouse, corpus};
use xomatiq_core::ShreddingStrategy;

fn bench_keyword(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyword_search");
    group.sample_size(10);
    let query = r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
                   WHERE contains($a, "ketone", any)
                   RETURN $a//enzyme_id"#;
    for scale in [500usize, 2_000, 8_000] {
        let data = corpus(scale);
        for (label, with_indexes) in [("indexed", true), ("scan", false)] {
            let xq = build_enzyme_warehouse(&data, ShreddingStrategy::Interval, with_indexes);
            let outcome = xq.query(query).expect("runs");
            let uses = xq.db().plan(&outcome.sql).expect("plans").plan.uses_index();
            assert_eq!(uses, with_indexes, "access path mismatch for {label}");
            group.bench_with_input(BenchmarkId::new(label, scale), &scale, |b, _| {
                b.iter(|| {
                    let outcome = xq.query(query).expect("query runs");
                    std::hint::black_box(outcome.rows.len())
                });
            });
            // The isolated primitive: raw CONTAINS selection on the node
            // table, with no FLWR join machinery around it.
            let raw = "SELECT doc_id FROM hlx_enzyme_default_nodes WHERE CONTAINS(val, 'ketone')";
            group.bench_with_input(
                BenchmarkId::new(format!("raw_{label}"), scale),
                &scale,
                |b, _| {
                    b.iter(|| {
                        let out = xq.db().query(raw).run().expect("raw query runs");
                        std::hint::black_box(out.rows.rows().len())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_keyword);
criterion_main!(benches);
