//! P9 — "we can exploit the concurrency access … features of an RDBMS"
//! (paper §2.2).
//!
//! Measures aggregate query throughput as reader threads are added, and
//! the same with a concurrent updater thread in the background. Expected
//! shape: near-linear read scaling (readers share the RwLock), with a
//! modest dip when a writer competes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xomatiq_bench::{corpus, FIGURE9};
use xomatiq_core::{ShreddingStrategy, SourceKind, Xomatiq};
use xomatiq_datahounds::source::LoadOptions;

const SCALE: usize = 2_000;
const QUERIES_PER_THREAD: usize = 8;

fn build() -> Arc<Xomatiq> {
    let data = corpus(SCALE);
    let xq = Xomatiq::in_memory();
    xq.load_source_with(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &data.enzyme_flat(),
        LoadOptions {
            strategy: ShreddingStrategy::Interval,
            with_indexes: true,
            validate: false,
        },
    )
    .expect("load");
    Arc::new(xq)
}

fn run_readers(xq: &Arc<Xomatiq>, threads: usize) -> usize {
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let xq = Arc::clone(xq);
            std::thread::spawn(move || {
                let mut rows = 0;
                for _ in 0..QUERIES_PER_THREAD {
                    rows += xq.query(FIGURE9).expect("query runs").rows.len();
                }
                rows
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .sum()
}

fn bench_concurrency(c: &mut Criterion) {
    let xq = build();
    let mut group = c.benchmark_group("concurrent_readers");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::new("readers", threads), &threads, |b, t| {
            b.iter(|| std::hint::black_box(run_readers(&xq, *t)));
        });
    }
    // Readers with a background updater continuously modifying one entry.
    let data = corpus(SCALE);
    for threads in [2usize, 4] {
        group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("readers_with_writer", threads),
            &threads,
            |b, t| {
                b.iter(|| {
                    let stop = Arc::new(AtomicBool::new(false));
                    let writer = {
                        let xq = Arc::clone(&xq);
                        let stop = Arc::clone(&stop);
                        let mut snapshot = data.enzymes.clone();
                        std::thread::spawn(move || {
                            let mut round = 0usize;
                            while !stop.load(Ordering::Relaxed) {
                                snapshot[0].descriptions = vec![format!("Writer round {round}.")];
                                let flat: String = snapshot.iter().map(|e| e.to_flat()).collect();
                                xq.update_source("hlx_enzyme.DEFAULT", &flat)
                                    .expect("update applies");
                                round += 1;
                            }
                        })
                    };
                    let rows = run_readers(&xq, *t);
                    stop.store(true, Ordering::Relaxed);
                    writer.join().expect("writer exits");
                    std::hint::black_box(rows)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
