//! P5 — the flat → XML conversion pipeline (paper §2.1).
//!
//! Measures XML-Transformer throughput (entries/second) for each of the
//! three source formats: flat-file parse, document construction, and DTD
//! validation, separately and combined.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xomatiq_bench::corpus;
use xomatiq_bioflat::embl::parse_embl_file;
use xomatiq_bioflat::enzyme::parse_enzyme_file;
use xomatiq_bioflat::swissprot::parse_swissprot_file;
use xomatiq_datahounds::transform::{
    embl_dtd, embl_to_xml, enzyme_dtd, enzyme_to_xml, swissprot_dtd, swissprot_to_xml,
};
use xomatiq_xml::dtd::validate;

const SCALE: usize = 1_000;

fn bench_transform(c: &mut Criterion) {
    let data = corpus(SCALE);
    let enzyme_flat = data.enzyme_flat();
    let embl_flat = data.embl_flat();
    let swissprot_flat = data.swissprot_flat();

    let mut group = c.benchmark_group("xml_transform");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SCALE as u64));

    group.bench_function(BenchmarkId::new("parse_flat", "enzyme"), |b| {
        b.iter(|| std::hint::black_box(parse_enzyme_file(&enzyme_flat).unwrap().len()));
    });
    group.bench_function(BenchmarkId::new("parse_flat", "embl"), |b| {
        b.iter(|| std::hint::black_box(parse_embl_file(&embl_flat).unwrap().len()));
    });
    group.bench_function(BenchmarkId::new("parse_flat", "swissprot"), |b| {
        b.iter(|| std::hint::black_box(parse_swissprot_file(&swissprot_flat).unwrap().len()));
    });

    group.bench_function(BenchmarkId::new("to_xml", "enzyme"), |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for e in &data.enzymes {
                nodes += enzyme_to_xml(e).unwrap().len();
            }
            std::hint::black_box(nodes)
        });
    });
    group.bench_function(BenchmarkId::new("to_xml", "embl"), |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for e in &data.embl {
                nodes += embl_to_xml(e).unwrap().len();
            }
            std::hint::black_box(nodes)
        });
    });
    group.bench_function(BenchmarkId::new("to_xml", "swissprot"), |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for e in &data.swissprot {
                nodes += swissprot_to_xml(e).unwrap().len();
            }
            std::hint::black_box(nodes)
        });
    });

    // The full §2.1 path: parse + transform + validate.
    group.bench_function(BenchmarkId::new("full_pipeline", "enzyme"), |b| {
        let dtd = enzyme_dtd();
        b.iter(|| {
            let entries = parse_enzyme_file(&enzyme_flat).unwrap();
            for e in &entries {
                let doc = enzyme_to_xml(e).unwrap();
                validate(&doc, &dtd).unwrap();
            }
            std::hint::black_box(entries.len())
        });
    });
    group.bench_function(BenchmarkId::new("full_pipeline", "embl"), |b| {
        let dtd = embl_dtd();
        b.iter(|| {
            let entries = parse_embl_file(&embl_flat).unwrap();
            for e in &entries {
                let doc = embl_to_xml(e).unwrap();
                validate(&doc, &dtd).unwrap();
            }
            std::hint::black_box(entries.len())
        });
    });
    group.bench_function(BenchmarkId::new("full_pipeline", "swissprot"), |b| {
        let dtd = swissprot_dtd();
        b.iter(|| {
            let entries = parse_swissprot_file(&swissprot_flat).unwrap();
            for e in &entries {
                let doc = swissprot_to_xml(e).unwrap();
                validate(&doc, &dtd).unwrap();
            }
            std::hint::black_box(entries.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
