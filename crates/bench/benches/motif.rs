//! P8 — regular-expression motif matching (paper §4's claimed advantage
//! over SQL-only systems; sequence data handling from §2.2).
//!
//! Measures `matches()` motif scans over warehoused protein sequences,
//! varying corpus size and pattern complexity. The NFA engine is
//! linear-time, so latency should scale with total sequence volume and
//! stay insensitive to pattern pathology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xomatiq_bench::{build_warehouse, corpus};
use xomatiq_core::ShreddingStrategy;

fn bench_motif(c: &mut Criterion) {
    let mut group = c.benchmark_group("motif_scan");
    group.sample_size(10);
    let patterns = [
        ("literal", "MKNV"),
        ("glyco_site", "N[^P][ST][^P]"),
        ("counted", "[LIV]{3}.{2,5}[DE]"),
        ("alternation", "(AG|GA){2}[KR]$"),
    ];
    for scale in [500usize, 2_000] {
        let data = corpus(scale);
        let xq = build_warehouse(&data, ShreddingStrategy::Interval, true);
        for (name, pattern) in patterns {
            let query = format!(
                r#"FOR $b IN document("hlx_sprot.all")/hlx_p_sequence
                   WHERE matches($b//sequence, "{pattern}")
                   RETURN $b//sprot_accession_number"#
            );
            group.bench_with_input(BenchmarkId::new(name, scale), &scale, |b, _| {
                b.iter(|| {
                    let outcome = xq.query(&query).expect("motif scan runs");
                    std::hint::black_box(outcome.rows.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_motif);
criterion_main!(benches);
