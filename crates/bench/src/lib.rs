//! Shared workload builders for the XomatiQ benchmark suite and the
//! figure-regeneration binary.
//!
//! DESIGN.md §4 maps every figure and prose performance claim of the paper
//! to a bench target in this crate; EXPERIMENTS.md records the measured
//! outcomes.

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{ShreddingStrategy, SourceKind, Xomatiq};
use xomatiq_datahounds::source::LoadOptions;

/// The paper's Figure 8 query (keyword search over two databases).
pub const FIGURE8: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
    $b IN document("hlx_sprot.all")/hlx_p_sequence
WHERE contains($a, "cdc6", any)
  AND contains($b, "cdc6", any)
RETURN $b//sprot_accession_number, $a//embl_accession_number
"#;

/// The paper's Figure 9 query (sub-tree search).
pub const FIGURE9: &str = r#"
FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
WHERE contains($a//catalytic_activity, "ketone")
RETURN $a//enzyme_id, $a//enzyme_description
"#;

/// The paper's Figure 11 query (cross-database join on EC number).
pub const FIGURE11: &str = r#"
FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
    $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
RETURN $Accession_Number = $a//embl_accession_number,
       $Accession_Description = $a//description
"#;

/// The standard benchmark corpus at `scale` entries per database.
pub fn corpus(scale: usize) -> Corpus {
    Corpus::generate(&CorpusSpec {
        enzymes: scale,
        embl: scale,
        swissprot: scale,
        keyword_rate: 0.05,
        link_rate: 0.3,
        ketone_rate: 0.1,
        seed: 42,
    })
}

/// Builds a fully loaded three-collection warehouse.
pub fn build_warehouse(
    corpus: &Corpus,
    strategy: ShreddingStrategy,
    with_indexes: bool,
) -> Xomatiq {
    let xq = Xomatiq::in_memory();
    let options = LoadOptions {
        strategy,
        with_indexes,
        validate: false,
    };
    xq.load_source_with(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
        options,
    )
    .expect("load enzyme");
    xq.load_source_with(
        "hlx_embl.inv",
        SourceKind::Embl,
        &corpus.embl_flat(),
        options,
    )
    .expect("load embl");
    xq.load_source_with(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
        options,
    )
    .expect("load swissprot");
    xq
}

/// Builds a warehouse holding only the ENZYME collection (for benches that
/// do not need the other two databases).
pub fn build_enzyme_warehouse(
    corpus: &Corpus,
    strategy: ShreddingStrategy,
    with_indexes: bool,
) -> Xomatiq {
    let xq = Xomatiq::in_memory();
    let options = LoadOptions {
        strategy,
        with_indexes,
        validate: false,
    };
    xq.load_source_with(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
        options,
    )
    .expect("load enzyme");
    xq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouse_builders_work() {
        let c = corpus(10);
        let xq = build_warehouse(&c, ShreddingStrategy::Interval, true);
        assert_eq!(xq.collections().len(), 3);
        let outcome = xq.query(FIGURE9).unwrap();
        assert_eq!(outcome.columns.len(), 2);
        let xq2 = build_enzyme_warehouse(&c, ShreddingStrategy::Edge, false);
        assert_eq!(xq2.collections().len(), 1);
    }
}
