//! Regenerates every figure of the paper as a textual artifact.
//!
//! Run all: `cargo run --release -p xomatiq-bench --bin figures`
//! Run one: `cargo run --release -p xomatiq-bench --bin figures -- fig6`
//!
//! Figure map (see DESIGN.md §4):
//!   fig2  — the sample ENZYME entry (flat form)
//!   fig4  — line types and codes, derived from the parser
//!   fig5  — the generated ENZYME DTD
//!   fig6  — the XML version of the fig2 entry
//!   fig7  — sub-tree search "ketone" with both result panels
//!   fig8  — keyword search "cdc6" over EMBL + Swiss-Prot
//!   fig9  — the textual form of the fig7 query
//!   fig11 — the textual form of the join query
//!   fig12 — join results, table + XML panels

use xomatiq_bench::{build_warehouse, corpus};
use xomatiq_bioflat::enzyme::{parse_enzyme_file, FIGURE2_SAMPLE};
use xomatiq_core::render::{render_table, render_tree};
use xomatiq_core::tagger::tag_results;
use xomatiq_core::{QueryBuilder, ShreddingStrategy, Xomatiq};
use xomatiq_datahounds::transform::{enzyme_dtd, enzyme_to_xml};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    let want = |name: &str| all || which == name;

    if want("fig2") {
        banner("Figure 2 — sample ENZYME entry");
        print!("{FIGURE2_SAMPLE}");
    }
    if want("fig4") {
        banner("Figure 4 — line types and their codes");
        for (code, description, cardinality) in [
            ("ID", "Identification", "begins each entry, 1 per entry"),
            ("DE", "Description", ">=1 per entry"),
            ("AN", "Alternate name(s)", ">=0 per entry"),
            ("CA", "Catalytic activity", ">=0 per entry"),
            ("CF", "Cofactor(s)", ">=0 per entry"),
            ("CC", "Comments", ">=0 per entry"),
            ("DI", "Diseases", ">=0 per entry"),
            ("PR", "Cross-references to PROSITE", ">=0 per entry"),
            ("DR", "Cross-references to SWISS-PROT", ">=0 per entry"),
            ("//", "Termination line", "ends each entry"),
        ] {
            println!("{code:<4} {description:<32} {cardinality}");
        }
    }
    if want("fig5") {
        banner("Figure 5 — DTD of the ENZYME database");
        print!("{}", enzyme_dtd());
    }
    if want("fig6") {
        banner("Figure 6 — XML data of Figure 2");
        let entry = parse_enzyme_file(FIGURE2_SAMPLE)
            .expect("fixture parses")
            .remove(0);
        let doc = enzyme_to_xml(&entry).expect("transforms");
        print!("{}", xomatiq_xml::to_string_pretty(&doc));
    }

    // The query figures run against a standard synthetic warehouse.
    let needs_warehouse = ["fig7", "fig8", "fig9", "fig11", "fig12"]
        .iter()
        .any(|f| want(f));
    if !needs_warehouse {
        return;
    }
    let scale = 500;
    eprintln!("(building a {scale}-entry warehouse for the query figures...)");
    let data = corpus(scale);
    let xq: Xomatiq = build_warehouse(&data, ShreddingStrategy::Interval, true);

    let fig9_query = QueryBuilder::subtree_search(
        "a",
        "hlx_enzyme.DEFAULT",
        "/hlx_enzyme",
        "$a//catalytic_activity",
        "ketone",
        &["$a//enzyme_id", "$a//enzyme_description"],
    )
    .expect("figure 9 builds");

    if want("fig9") {
        banner("Figure 9 — sub-tree query (text form)");
        println!("{fig9_query}");
    }
    if want("fig7") {
        banner("Figure 7 — querying the ENZYME database");
        println!("-- (a) the formulated query --\n{fig9_query}\n");
        let outcome = xq.run_query(&fig9_query).expect("runs");
        println!("-- (b) results: left panel (table) --");
        print_preview(&outcome, 8);
        if let Some(first) = outcome.rows.first() {
            let key = first[0].to_string();
            let doc = xq
                .reconstruct("hlx_enzyme.DEFAULT", &key)
                .expect("reconstructs");
            println!("-- (b) results: right panel (document {key}) --");
            println!("{}", render_tree(&doc));
        }
    }
    if want("fig8") {
        banner("Figure 8 — keyword-based query (text form + results)");
        let query = QueryBuilder::keyword_search(
            &[
                ("a", "hlx_embl.inv", "/hlx_n_sequence"),
                ("b", "hlx_sprot.all", "/hlx_p_sequence"),
            ],
            "cdc6",
            &["$b//sprot_accession_number", "$a//embl_accession_number"],
        )
        .expect("figure 8 builds");
        println!("{query}\n");
        let outcome = xq.run_query(&query).expect("runs");
        print_preview(&outcome, 8);
    }

    let join_query = QueryBuilder::join(
        ("a", "hlx_embl.inv", "/hlx_n_sequence/db_entry"),
        ("b", "hlx_enzyme.DEFAULT", "/hlx_enzyme/db_entry"),
        "$a//qualifier[@qualifier_type = \"EC number\"]",
        "$b/enzyme_id",
        &[
            ("Accession_Number", "$a//embl_accession_number"),
            ("Accession_Description", "$a//description"),
        ],
    )
    .expect("figure 11 builds");

    if want("fig11") {
        banner("Figure 11 — text version of the join query");
        println!("{join_query}");
    }
    if want("fig12") {
        banner("Figure 12 — results of the join query");
        let outcome = xq.run_query(&join_query).expect("runs");
        println!("-- left panel (table) --");
        print_preview(&outcome, 8);
        println!("-- left panel (XML structure format, truncated) --");
        let tagged = tag_results(&outcome).expect("taggable");
        let xml = xomatiq_xml::to_string_pretty(&tagged);
        for line in xml.lines().take(12) {
            println!("{line}");
        }
        println!("...");
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn print_preview(outcome: &xomatiq_core::QueryOutcome, n: usize) {
    let preview = xomatiq_core::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(n).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));
    if outcome.rows.len() > n {
        println!("... {} rows total\n", outcome.rows.len());
    }
}
