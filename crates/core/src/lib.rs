#![warn(missing_docs)]

//! # xomatiq-core
//!
//! The XomatiQ system facade — the paper's primary contribution, assembled
//! from the substrate crates into the API a gRNA application would use.
//!
//! ```
//! use xomatiq_core::{Xomatiq, SourceKind};
//! use xomatiq_bioflat::enzyme::FIGURE2_SAMPLE;
//!
//! let xq = Xomatiq::in_memory();
//! xq.load_source("hlx_enzyme.DEFAULT", SourceKind::Enzyme, FIGURE2_SAMPLE).unwrap();
//! let outcome = xq
//!     .query(
//!         r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
//!            WHERE contains($a//cofactor, "copper")
//!            RETURN $a//enzyme_id"#,
//!     )
//!     .unwrap();
//! assert_eq!(outcome.rows[0][0].to_string(), "1.14.17.3");
//! ```
//!
//! * [`warehouse`] — [`Xomatiq`]: warehouse loading/updating via Data
//!   Hounds, FLWR querying via XQ2SQL on the embedded relational engine,
//!   DTD inspection (what the GUI's left panel shows), and document
//!   reconstruction.
//! * [`builder`] — [`builder::QueryBuilder`]: the programmatic equivalent
//!   of the visual interface's three modes (keyword search, sub-tree
//!   search, join — paper §3.1); `build()` yields the same textual query
//!   the GUI's "Translate Query" button produces.
//! * [`tagger`] — the **Relation2XML-Transformer** (§3.3): result tuples
//!   re-tagged as an XML document, or full source-document
//!   reconstruction.
//! * [`render`] — the two result views of Figures 7(b) and 12: a flat
//!   table panel and an XML tree panel.

pub mod builder;
pub mod federation;
pub mod render;
pub mod tagger;
pub mod warehouse;

pub use builder::QueryBuilder;
pub use federation::{
    DegradedReport, FaultHook, FederatedOutcome, Federation, MemberFailure, MemberFault,
};
pub use warehouse::{QueryOutcome, Xomatiq, XomatiqError};

// The pieces applications typically need alongside the facade.
pub use xomatiq_datahounds::{ChangeEvent, ChangeKind, ShreddingStrategy, SourceKind};
pub use xomatiq_relstore::Value;
