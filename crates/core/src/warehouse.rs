//! The [`Xomatiq`] facade.

use std::path::Path;
use std::sync::Arc;

use xomatiq_datahounds::source::LoadOptions;
use xomatiq_datahounds::{
    ChangeEvent, DataHounds, HoundError, HoundResult, ShredStats, ShreddingStrategy, SourceKind,
};
use xomatiq_relstore::{Database, Value};
use xomatiq_xml::dtd::Dtd;
use xomatiq_xml::Document;
use xomatiq_xquery::catalog::{CatalogProvider, CollectionCatalog};
use xomatiq_xquery::{parse_query, translate, FlwrQuery, QueryError};

/// The result of running a XomatiQ query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// The SQL the XQ2SQL transformer generated (for inspection; the paper
    /// hides it from users, §3).
    pub sql: String,
}

/// The XomatiQ system: warehouse + query engine behind one handle.
pub struct Xomatiq {
    db: Arc<Database>,
    hounds: DataHounds,
}

impl Xomatiq {
    /// A volatile instance (no durability) — for tests and exploration.
    pub fn in_memory() -> Xomatiq {
        let db = Arc::new(Database::in_memory());
        let hounds = DataHounds::new(Arc::clone(&db)).expect("fresh database");
        Xomatiq { db, hounds }
    }

    /// A durable instance whose write-ahead log lives at `path`; existing
    /// warehouse state (collections included) is recovered.
    pub fn open(path: &Path) -> HoundResult<Xomatiq> {
        let db = Arc::new(Database::open(path)?);
        let hounds = DataHounds::new(Arc::clone(&db))?;
        Ok(Xomatiq { db, hounds })
    }

    /// The underlying relational engine (exposed for benchmarking and
    /// diagnostics; applications use [`Xomatiq::query`]).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The Data Hounds component.
    pub fn hounds(&self) -> &DataHounds {
        &self.hounds
    }

    /// Loads a source with default options (Interval shredding, full
    /// index set, DTD validation).
    pub fn load_source(
        &self,
        collection: &str,
        kind: SourceKind,
        flat: &str,
    ) -> HoundResult<ShredStats> {
        self.hounds
            .load_source(collection, kind, flat, LoadOptions::default())
    }

    /// Loads a source with explicit options.
    pub fn load_source_with(
        &self,
        collection: &str,
        kind: SourceKind,
        flat: &str,
        options: LoadOptions,
    ) -> HoundResult<ShredStats> {
        self.hounds.load_source(collection, kind, flat, options)
    }

    /// Integrates a fresh snapshot of a loaded source (paper §2,
    /// consideration 2), returning the change set.
    pub fn update_source(&self, collection: &str, flat: &str) -> HoundResult<Vec<ChangeEvent>> {
        self.hounds.update_source(collection, flat)
    }

    /// Loads a pre-existing XML source — an INTERPRO-style XML databank
    /// (§2.1) or a wrapped relational table (Figure 1) — with default
    /// options.
    pub fn load_xml_source(
        &self,
        collection: &str,
        dtd_text: &str,
        docs: Vec<(String, Document)>,
    ) -> HoundResult<ShredStats> {
        self.hounds
            .load_xml_source(collection, dtd_text, docs, LoadOptions::default())
    }

    /// Integrates a fresh snapshot of an XML source.
    pub fn update_xml_source(
        &self,
        collection: &str,
        docs: Vec<(String, Document)>,
    ) -> HoundResult<Vec<ChangeEvent>> {
        self.hounds.update_xml_source(collection, docs)
    }

    /// Wraps a table of a remote relational database as XML documents and
    /// warehouses them (Figure 1's RDBMS input path). `key_column` must
    /// hold unique values.
    pub fn load_relational_source(
        &self,
        collection: &str,
        remote: &Database,
        table: &str,
        key_column: &str,
    ) -> HoundResult<ShredStats> {
        let (dtd_text, docs) =
            xomatiq_datahounds::transform::wrap_relational_table(remote, table, key_column)?;
        self.load_xml_source(collection, &dtd_text, docs)
    }

    /// Creates an incrementally maintained keyword summary of a
    /// collection: a `REFRESH ON COMMIT` materialized view over the
    /// shredded node table (per-path node counts, keyword-searchable
    /// text volume, document-id range). After this, a re-harvest via
    /// [`Xomatiq::update_source`] keeps the summary fresh by folding
    /// only the changed documents' deltas — O(changes), not a rescan.
    /// Returns the view name; query it like any table.
    pub fn create_keyword_summary(&self, collection: &str) -> HoundResult<String> {
        self.hounds.create_keyword_summary(collection)
    }

    /// Drops a summary created by [`Xomatiq::create_keyword_summary`].
    pub fn drop_keyword_summary(&self, collection: &str) -> HoundResult<()> {
        self.hounds.drop_keyword_summary(collection)
    }

    /// Subscribes to warehouse change triggers (§2.2 end).
    pub fn subscribe(&self) -> crossbeam::channel::Receiver<ChangeEvent> {
        self.hounds.subscribe()
    }

    /// Names of loaded collections.
    pub fn collections(&self) -> Vec<String> {
        self.hounds.collections()
    }

    /// The DTD of a collection — what the visual interface's left panel
    /// displays for query formulation (§3.1).
    pub fn dtd(&self, collection: &str) -> HoundResult<Dtd> {
        self.hounds.dtd(collection)
    }

    /// Parses and runs a textual FLWR query.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, XomatiqError> {
        let parsed = parse_query(text)?;
        self.run_query(&parsed)
    }

    /// Runs a pre-built [`FlwrQuery`] (what [`crate::QueryBuilder`]
    /// produces).
    pub fn run_query(&self, query: &FlwrQuery) -> Result<QueryOutcome, XomatiqError> {
        let translated = translate(query, self)?;
        let rs = self
            .db
            .query(&translated.sql)
            .run()
            .map_err(|e| XomatiqError::Execution(format!("{e} (SQL: {})", translated.sql)))?
            .rows;
        Ok(QueryOutcome {
            columns: translated.columns,
            rows: rs.into_rows(),
            sql: translated.sql,
        })
    }

    /// Runs a textual FLWR query and returns the results re-tagged as an
    /// XML document (§3.3: "the results are formatted as XML documents (if
    /// necessary) and returned back to the user or passed to another
    /// application"). A `RETURN <tag> ... </tag>` element constructor
    /// names the per-row element; the document root is `<tag>_list`.
    pub fn query_xml(&self, text: &str) -> Result<Document, XomatiqError> {
        let parsed = parse_query(text)?;
        let outcome = self.run_query(&parsed)?;
        let (root, row) = match &parsed.wrapper {
            Some(tag) => (format!("{tag}_list"), tag.clone()),
            None => ("results".to_string(), "result".to_string()),
        };
        crate::tagger::tag_rows(&root, &row, &outcome.columns, &outcome.rows)
            .map_err(|e| XomatiqError::Execution(e.to_string()))
    }

    /// Shows the SQL a query would run, without running it — the moral
    /// equivalent of watching the Oracle plans in §3.2.
    pub fn explain_query(&self, text: &str) -> Result<String, XomatiqError> {
        let parsed = parse_query(text)?;
        let translated = translate(&parsed, self)?;
        let plan = self
            .db
            .query(&translated.sql)
            .explain()
            .map(|tree| tree.render())
            .map_err(|e| XomatiqError::Execution(e.to_string()))?;
        Ok(format!("-- SQL\n{}\n-- Plan\n{}", translated.sql, plan))
    }

    /// Reconstructs the warehoused XML document for one entry — the
    /// Relation2XML direction, used by the XML result view.
    pub fn reconstruct(&self, collection: &str, entry_key: &str) -> HoundResult<Document> {
        self.hounds.reconstruct(collection, entry_key)
    }

    /// Per-collection document count.
    pub fn doc_count(&self, collection: &str) -> HoundResult<usize> {
        self.hounds.doc_count(collection)
    }

    /// Warehouse statistics: (collection, documents, node rows) triples.
    pub fn statistics(&self) -> HoundResult<Vec<(String, usize, usize)>> {
        let mut out = Vec::new();
        for name in self.hounds.collections() {
            let prefix = self.hounds.prefix(&name)?;
            let docs = self.db.row_count(&format!("{prefix}_docs"))?;
            let nodes = self.db.row_count(&format!("{prefix}_nodes"))?;
            out.push((name, docs, nodes));
        }
        Ok(out)
    }
}

impl CatalogProvider for Xomatiq {
    fn collection(&self, name: &str) -> Result<CollectionCatalog, QueryError> {
        let prefix = self
            .hounds
            .prefix(name)
            .map_err(|_| QueryError::UnknownCollection(name.to_string()))?;
        let strategy: ShreddingStrategy = self
            .hounds
            .strategy(name)
            .map_err(|_| QueryError::UnknownCollection(name.to_string()))?;
        CollectionCatalog::from_warehouse(&self.db, name, &prefix, strategy)
    }
}

/// Errors surfaced by the facade.
#[derive(Debug, Clone, PartialEq)]
pub enum XomatiqError {
    /// The query text or structure was invalid.
    Query(QueryError),
    /// The warehouse pipeline failed.
    Warehouse(HoundError),
    /// SQL execution failed.
    Execution(String),
    /// A federated query failed at the federation layer (member death,
    /// deadline, or strict-mode refusal of a degraded result).
    Federation(String),
}

impl std::fmt::Display for XomatiqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XomatiqError::Query(e) => write!(f, "{e}"),
            XomatiqError::Warehouse(e) => write!(f, "{e}"),
            XomatiqError::Execution(m) => write!(f, "query execution failed: {m}"),
            XomatiqError::Federation(m) => write!(f, "federation error: {m}"),
        }
    }
}

impl std::error::Error for XomatiqError {}

impl From<QueryError> for XomatiqError {
    fn from(e: QueryError) -> Self {
        XomatiqError::Query(e)
    }
}

impl From<HoundError> for XomatiqError {
    fn from(e: HoundError) -> Self {
        XomatiqError::Warehouse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_bioflat::enzyme::FIGURE2_SAMPLE;
    use xomatiq_bioflat::{Corpus, CorpusSpec};

    #[test]
    fn load_and_query_figure2_sample() {
        let xq = Xomatiq::in_memory();
        xq.load_source("hlx_enzyme.DEFAULT", SourceKind::Enzyme, FIGURE2_SAMPLE)
            .unwrap();
        let outcome = xq
            .query(
                r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
                   WHERE contains($a//cofactor, "Copper")
                   RETURN $a//enzyme_id, $a//enzyme_description"#,
            )
            .unwrap();
        assert_eq!(outcome.columns, vec!["enzyme_id", "enzyme_description"]);
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.rows[0][0].to_string(), "1.14.17.3");
        assert!(outcome.sql.contains("SELECT DISTINCT"));
    }

    #[test]
    fn statistics_and_dtd() {
        let xq = Xomatiq::in_memory();
        let corpus = Corpus::generate(&CorpusSpec::sized(5));
        xq.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .unwrap();
        let stats = xq.statistics().unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1, 5);
        assert!(stats[0].2 > 5);
        let dtd = xq.dtd("hlx_enzyme.DEFAULT").unwrap();
        assert_eq!(dtd.root(), Some("hlx_enzyme"));
    }

    #[test]
    fn reconstruct_returns_original_document() {
        let xq = Xomatiq::in_memory();
        xq.load_source("c", SourceKind::Enzyme, FIGURE2_SAMPLE)
            .unwrap();
        let doc = xq.reconstruct("c", "1.14.17.3").unwrap();
        let xml = xomatiq_xml::to_string(&doc);
        assert!(xml.contains("<enzyme_id>1.14.17.3</enzyme_id>"));
    }

    #[test]
    fn explain_query_shows_sql_and_plan() {
        let xq = Xomatiq::in_memory();
        xq.load_source("c", SourceKind::Enzyme, FIGURE2_SAMPLE)
            .unwrap();
        let text = xq
            .explain_query(r#"FOR $a IN document("c")/hlx_enzyme WHERE $a//enzyme_id = "1.14.17.3" RETURN $a//enzyme_id"#)
            .unwrap();
        assert!(text.contains("-- SQL"), "{text}");
        assert!(text.contains("IndexScan"), "{text}");
    }

    #[test]
    fn update_and_triggers_flow_through_facade() {
        let xq = Xomatiq::in_memory();
        let corpus = Corpus::generate(&CorpusSpec::sized(4));
        xq.load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
            .unwrap();
        let rx = xq.subscribe();
        let mut entries = corpus.enzymes.clone();
        entries[0].descriptions = vec!["Changed.".into()];
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();
        let events = xq.update_source("c", &flat).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(rx.try_recv().unwrap().kind, ChangeKind::Modified);
        // The change is queryable.
        let outcome = xq
            .query(&format!(
                r#"FOR $a IN document("c")/hlx_enzyme WHERE $a//enzyme_id = "{}" RETURN $a//enzyme_description"#,
                entries[0].id
            ))
            .unwrap();
        assert_eq!(outcome.rows[0][0].to_string(), "Changed.");
        let _ = xq.collections();
        let _ = xq.doc_count("c").unwrap();
    }

    use xomatiq_datahounds::ChangeKind;

    #[test]
    fn keyword_summary_is_maintained_through_a_reharvest() {
        let xq = Xomatiq::in_memory();
        let corpus = Corpus::generate(&CorpusSpec::sized(6));
        xq.load_source("c", SourceKind::Enzyme, &corpus.enzyme_flat())
            .unwrap();
        let view = xq.create_keyword_summary("c").unwrap();

        let summary_sql = |xq: &Xomatiq, from: &str| {
            let out = xq
                .db()
                .query(&format!(
                    "SELECT path, COUNT(*) AS nodes, COUNT(val) AS text_nodes, \
                     MIN(doc_id) AS first_doc, MAX(doc_id) AS last_doc \
                     FROM {from} GROUP BY path ORDER BY path"
                ))
                .run()
                .unwrap();
            out.rows.into_rows()
        };
        let stored = |xq: &Xomatiq| {
            let out = xq
                .db()
                .query(&format!("SELECT * FROM {view} ORDER BY path"))
                .run()
                .unwrap();
            out.rows.into_rows()
        };
        let prefix = xq.hounds().prefix("c").unwrap();
        assert_eq!(stored(&xq), summary_sql(&xq, &format!("{prefix}_nodes")));

        // Re-harvest a refreshed release: one modified entry, one gone.
        let mut entries = corpus.enzymes.clone();
        entries[0].descriptions = vec!["A very different description.".into()];
        entries.pop();
        let flat: String = entries.iter().map(|e| e.to_flat()).collect();
        let events = xq.update_source("c", &flat).unwrap();
        assert_eq!(events.len(), 2);

        // The summary tracked the changed documents' deltas and agrees
        // with a from-scratch recompute...
        assert_eq!(stored(&xq), summary_sql(&xq, &format!("{prefix}_nodes")));
        // ...incrementally, not by rebuild.
        let out = xq
            .db()
            .query("SELECT incremental_refreshes, fallback_refreshes FROM sys_views WHERE view_name = ?")
            .bind(view.as_str())
            .run()
            .unwrap();
        let row = &out.rows.rows()[0];
        assert!(row[0].as_int().unwrap() > 0, "no incremental refreshes ran");
        assert_eq!(row[1].as_int().unwrap(), 0, "summary fell back to rebuild");

        xq.drop_keyword_summary("c").unwrap();
        assert!(xq
            .db()
            .query(&format!("SELECT * FROM {view}"))
            .run()
            .is_err());
    }

    #[test]
    fn query_xml_honours_the_element_constructor() {
        let xq = Xomatiq::in_memory();
        xq.load_source("c", SourceKind::Enzyme, FIGURE2_SAMPLE)
            .unwrap();
        let doc = xq
            .query_xml(
                r#"FOR $a IN document("c")/hlx_enzyme
                   RETURN <hit> $a//enzyme_id </hit>"#,
            )
            .unwrap();
        let xml = xomatiq_xml::to_string(&doc);
        assert!(xml.contains("<hit_list count=\"1\">"), "{xml}");
        assert!(
            xml.contains("<hit><enzyme_id>1.14.17.3</enzyme_id></hit>"),
            "{xml}"
        );
        // Without a wrapper the default names apply.
        let plain = xq
            .query_xml(r#"FOR $a IN document("c")/hlx_enzyme RETURN $a//enzyme_id"#)
            .unwrap();
        assert!(xomatiq_xml::to_string(&plain).contains("<results count=\"1\">"));
    }

    #[test]
    fn query_errors_are_typed() {
        let xq = Xomatiq::in_memory();
        assert!(matches!(
            xq.query("garbage").unwrap_err(),
            XomatiqError::Query(QueryError::Parse(_))
        ));
        assert!(matches!(
            xq.query(r#"FOR $a IN document("missing")/r RETURN $a//x"#)
                .unwrap_err(),
            XomatiqError::Query(QueryError::UnknownCollection(_))
        ));
    }
}
