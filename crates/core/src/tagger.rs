//! The Relation2XML-Transformer (paper §3.3).
//!
//! "Upon successful execution of the SQL queries … the resultant tuples
//! are either displayed in a simple table format or treated by a tagger
//! module, that structure them into the desired XML format of the result."
//! [`tag_results`] is that tagger (inspired, as the paper says, by the
//! XML-publishing work of Shanmugasundaram et al.); full source-document
//! reconstruction is provided by [`crate::Xomatiq::reconstruct`].

use xomatiq_relstore::{ResultSet, Value};
use xomatiq_xml::{Document, XmlResult};

use crate::warehouse::QueryOutcome;

/// Tags a query outcome as an XML document:
///
/// ```xml
/// <results count="2">
///   <result>
///     <enzyme_id>1.14.17.3</enzyme_id>
///     <enzyme_description>...</enzyme_description>
///   </result>
///   ...
/// </results>
/// ```
///
/// NULL cells become empty elements with `null="true"` so the distinction
/// between absent and empty survives tagging.
pub fn tag_results(outcome: &QueryOutcome) -> XmlResult<Document> {
    tag_rows("results", "result", &outcome.columns, &outcome.rows)
}

/// Tags a raw SQL [`ResultSet`] (as produced by the relstore `Query`
/// builder) as an XML document, reusing the result set's own column
/// names — the path the shell's direct-SQL mode renders through.
pub fn tag_result_set(rs: &ResultSet) -> XmlResult<Document> {
    tag_rows("results", "result", rs.columns(), rs.rows())
}

/// Tags arbitrary rows under configurable element names.
pub fn tag_rows(
    root_name: &str,
    row_name: &str,
    columns: &[String],
    rows: &[Vec<Value>],
) -> XmlResult<Document> {
    let (mut doc, root) = Document::with_root(root_name)?;
    doc.set_attribute(root, "count", &rows.len().to_string())?;
    for row in rows {
        let row_el = doc.append_element(root, row_name)?;
        for (col, value) in columns.iter().zip(row) {
            let name = xomatiq_xml::name::sanitize_name(col);
            let cell = doc.append_element(row_el, &name)?;
            match value {
                Value::Null => doc.set_attribute(cell, "null", "true")?,
                other => {
                    doc.append_text(cell, &other.to_string());
                }
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_xml::to_string_pretty;

    fn outcome() -> QueryOutcome {
        QueryOutcome {
            columns: vec!["enzyme_id".into(), "Accession Number".into()],
            rows: vec![
                vec![
                    Value::Text("1.14.17.3".into()),
                    Value::Text("AB000001".into()),
                ],
                vec![Value::Text("2.7.7.7".into()), Value::Null],
            ],
            sql: String::new(),
        }
    }

    #[test]
    fn tags_rows_as_xml() {
        let doc = tag_results(&outcome()).unwrap();
        let xml = to_string_pretty(&doc);
        assert!(xml.contains("<results count=\"2\">"), "{xml}");
        assert!(xml.contains("<enzyme_id>1.14.17.3</enzyme_id>"), "{xml}");
        // Column names are sanitized into valid element names.
        assert!(
            xml.contains("<accession_number>AB000001</accession_number>"),
            "{xml}"
        );
        // NULLs are flagged, not silently emptied.
        assert!(xml.contains("<accession_number null=\"true\"/>"), "{xml}");
    }

    #[test]
    fn tagged_output_reparses() {
        let doc = tag_results(&outcome()).unwrap();
        let xml = xomatiq_xml::to_string(&doc);
        let reparsed = xomatiq_xml::parse(&xml).unwrap();
        assert!(doc.structurally_equal(&reparsed));
    }

    #[test]
    fn empty_result_set() {
        let doc = tag_rows("results", "result", &[], &[]).unwrap();
        let xml = xomatiq_xml::to_string(&doc);
        assert!(xml.contains("<results count=\"0\"/>"), "{xml}");
    }

    #[test]
    fn custom_element_names() {
        let doc = tag_rows("hits", "hit", &["ec".to_string()], &[vec![Value::Int(7)]]).unwrap();
        let xml = xomatiq_xml::to_string(&doc);
        assert!(
            xml.contains("<hits count=\"1\"><hit><ec>7</ec></hit></hits>"),
            "{xml}"
        );
    }
}
