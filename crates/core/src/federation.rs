//! Federated queries across distributed warehouses.
//!
//! The paper's query language serves "the querying of one or more
//! distributed or local warehouses managed within the gRNA" (§3). A
//! [`Federation`] holds several [`Xomatiq`] warehouses (in a real gRNA
//! deployment these would be remote nodes; here they are in-process
//! instances, which exercises the same split-translate-combine path).
//!
//! Execution strategy for a query whose FOR bindings span warehouses:
//!
//! 1. the WHERE tree is split into top-level conjuncts;
//! 2. each warehouse gets a sub-query containing its bindings, the
//!    conjuncts touching only its variables, the RETURN items rooted at
//!    its variables, and — as hidden extra columns — the path expressions
//!    its variables contribute to cross-warehouse comparisons;
//! 3. sub-queries run on their warehouses through the ordinary XQ2SQL
//!    path;
//! 4. the federation layer combines the partial results: hash joins on
//!    cross-warehouse equality comparisons, filters for the other
//!    operators, then a projection back to the user's RETURN order.
//!
//! Cross-warehouse disjunctions (an `OR` mixing variables of different
//! warehouses) are rejected as unsupported, mirroring the conjunctive
//! split; everything the paper's figures need is conjunctive.

use std::collections::HashMap;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use xomatiq_obs::{Counter, Histogram};

use xomatiq_relstore::Value;
use xomatiq_xquery::ast::{
    CompOp, Comparison, Condition, FlwrQuery, Operand, PathExpr, ReturnItem,
};
use xomatiq_xquery::{parse_query, QueryError};

use crate::warehouse::{QueryOutcome, Xomatiq, XomatiqError};

/// Cached federation-metric handles (`core.federation.*`), resolved once.
struct FedMetrics {
    /// `core.federation.queries` — federated queries attempted.
    queries: Counter,
    /// `core.federation.degraded_queries` — queries that lost at least one
    /// member but still produced a (partial) answer path.
    degraded_queries: Counter,
    /// `core.federation.member_failures` — member sub-queries that failed
    /// (execution error, injected fault, missed deadline).
    member_failures: Counter,
    /// `core.federation.member_wait` — wall-time spent waiting on each
    /// member's answer, successful or not.
    member_wait_ns: Histogram,
}

fn fed_metrics() -> &'static FedMetrics {
    static CELL: OnceLock<FedMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = xomatiq_obs::global();
        FedMetrics {
            queries: reg.counter("core.federation.queries"),
            degraded_queries: reg.counter("core.federation.degraded_queries"),
            member_failures: reg.counter("core.federation.member_failures"),
            member_wait_ns: reg.histogram("core.federation.member_wait"),
        }
    })
}

/// An injected fault for one member, returned by a [`FaultHook`]. Tests
/// use this to simulate a member dying mid-query or hanging past its
/// deadline without needing a real remote node to kill.
#[derive(Debug, Clone)]
pub enum MemberFault {
    /// The member fails immediately with this message.
    Fail(String),
    /// The member stalls for this long before answering (exceeding the
    /// federation deadline makes it count as failed).
    Hang(Duration),
}

/// Decides, per member name, whether to inject a [`MemberFault`] for the
/// current query. Runs on the member's worker thread.
pub type FaultHook = Arc<dyn Fn(&str) -> Option<MemberFault> + Send + Sync>;

/// One member that did not contribute to a federated result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberFailure {
    /// The federation name of the member.
    pub member: String,
    /// Why it failed (execution error, injected fault, or deadline).
    pub reason: String,
}

/// Which members failed during a federated query. Empty on a clean run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// The members whose sub-queries did not complete.
    pub failed: Vec<MemberFailure>,
}

impl DegradedReport {
    /// Whether any member failed (the result is partial).
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }
}

/// A federated query result together with its degradation report.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// The (possibly partial) combined result.
    pub outcome: QueryOutcome,
    /// Which members failed; empty when every member answered.
    pub degraded: DegradedReport,
}

/// A set of named warehouses queried as one system.
#[derive(Default)]
pub struct Federation {
    members: Vec<(String, Arc<Xomatiq>)>,
    member_deadline: Option<Duration>,
    strict: bool,
    fault_hook: Option<FaultHook>,
}

impl Federation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Adds a warehouse under `name`.
    pub fn add_warehouse(&mut self, name: &str, warehouse: Arc<Xomatiq>) {
        self.members.push((name.to_string(), warehouse));
    }

    /// Member warehouse names.
    pub fn members(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Sets the per-member execution deadline. A member that has not
    /// answered its sub-query within the deadline counts as failed; its
    /// worker is abandoned (never joined), so a hung member cannot stall
    /// the federation. `None` (the default) waits indefinitely.
    pub fn set_member_deadline(&mut self, deadline: Option<Duration>) {
        self.member_deadline = deadline;
    }

    /// Opts into strict all-or-nothing semantics: any member failure fails
    /// the whole query instead of returning a degraded partial result.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Installs (or clears) the fault-injection hook consulted before each
    /// member sub-query. Production federations leave this `None`.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.fault_hook = hook;
    }

    /// The member warehouse holding `collection`, if any.
    pub fn locate(&self, collection: &str) -> Option<&Arc<Xomatiq>> {
        self.members
            .iter()
            .map(|(_, w)| w)
            .find(|w| w.collections().iter().any(|c| c == collection))
    }

    /// Parses and runs a FLWR query that may span member warehouses.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, XomatiqError> {
        self.query_with_report(text).map(|f| f.outcome)
    }

    /// Parses and runs a FLWR query, also reporting which members (if any)
    /// failed to contribute.
    pub fn query_with_report(&self, text: &str) -> Result<FederatedOutcome, XomatiqError> {
        let parsed = parse_query(text)?;
        self.run_query_with_report(&parsed)
    }

    /// Starts `sub` on member `member`'s own worker thread and returns the
    /// channel its result will arrive on. The worker is detached: if it
    /// outlives the deadline it finishes (or hangs) in the background
    /// without holding the federation hostage.
    fn spawn_member(
        &self,
        member: usize,
        sub: FlwrQuery,
    ) -> mpsc::Receiver<Result<QueryOutcome, XomatiqError>> {
        let (tx, rx) = mpsc::channel();
        let name = self.members[member].0.clone();
        let warehouse = Arc::clone(&self.members[member].1);
        let hook = self.fault_hook.clone();
        std::thread::spawn(move || {
            let result = (|| {
                if let Some(hook) = &hook {
                    match hook(&name) {
                        Some(MemberFault::Fail(msg)) => {
                            return Err(XomatiqError::Federation(format!(
                                "member {name:?} died: {msg}"
                            )))
                        }
                        Some(MemberFault::Hang(d)) => std::thread::sleep(d),
                        None => {}
                    }
                }
                warehouse.run_query(&sub)
            })();
            // A receiver that timed out and went away is fine.
            let _ = tx.send(result);
        });
        rx
    }

    /// Waits for one member's answer, applying the federation deadline.
    fn await_member(
        &self,
        rx: &mpsc::Receiver<Result<QueryOutcome, XomatiqError>>,
    ) -> Result<QueryOutcome, String> {
        let m = fed_metrics();
        let wait_start = Instant::now();
        let answer = match self.member_deadline {
            Some(deadline) => rx.recv_timeout(deadline).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    format!("deadline of {deadline:?} exceeded")
                }
                mpsc::RecvTimeoutError::Disconnected => "member worker vanished".to_string(),
            }),
            None => rx.recv().map_err(|_| "member worker vanished".to_string()),
        };
        let elapsed = u64::try_from(wait_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        m.member_wait_ns.record(elapsed);
        let result = match answer {
            Ok(a) => a.map_err(|e| e.to_string()),
            Err(e) => Err(e),
        };
        if result.is_err() {
            m.member_failures.inc();
        }
        result
    }

    /// Runs a parsed query across the federation.
    pub fn run_query(&self, query: &FlwrQuery) -> Result<QueryOutcome, XomatiqError> {
        self.run_query_with_report(query).map(|f| f.outcome)
    }

    /// Runs a parsed query across the federation, reporting degradation.
    ///
    /// By default a member that fails (execution error, injected fault, or
    /// missed deadline) is dropped from the result: surviving members'
    /// rows are combined, the failed member's RETURN columns come back as
    /// NULL, cross-warehouse conditions involving it are skipped, and the
    /// [`DegradedReport`] names it. With [`Federation::set_strict`] any
    /// member failure fails the whole query. A query whose *every*
    /// contributing member failed always errors — there is nothing left to
    /// return.
    pub fn run_query_with_report(
        &self,
        query: &FlwrQuery,
    ) -> Result<FederatedOutcome, XomatiqError> {
        fed_metrics().queries.inc();
        // Assign each binding variable to the member that holds its
        // collection.
        let mut var_home: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (member idx, binding idxs)
        for (bi, binding) in query.bindings.iter().enumerate() {
            let member = self
                .members
                .iter()
                .position(|(_, w)| w.collections().iter().any(|c| c == &binding.collection))
                .ok_or_else(|| {
                    XomatiqError::Query(QueryError::UnknownCollection(binding.collection.clone()))
                })?;
            var_home.insert(binding.var.clone(), member);
            match groups.iter_mut().find(|(m, _)| *m == member) {
                Some((_, list)) => list.push(bi),
                None => groups.push((member, vec![bi])),
            }
        }
        // LET variables inherit the home of their base variable chain.
        let mut let_home = var_home.clone();
        for l in &query.lets {
            let home = let_home.get(&l.target.var).copied().ok_or_else(|| {
                XomatiqError::Query(QueryError::UnboundVariable(l.target.var.clone()))
            })?;
            let_home.insert(l.var.clone(), home);
        }

        // Single warehouse: delegate wholesale (still under the deadline
        // and fault hook — a lone member failing has no survivors to
        // degrade to, so it is always an error).
        if groups.len() <= 1 {
            let (member, _) = groups.first().ok_or_else(|| {
                XomatiqError::Query(QueryError::Parse("query has no bindings".into()))
            })?;
            let rx = self.spawn_member(*member, query.clone());
            let outcome = self.await_member(&rx).map_err(|reason| {
                XomatiqError::Federation(format!(
                    "member {:?} failed: {reason}",
                    self.members[*member].0
                ))
            })?;
            return Ok(FederatedOutcome {
                outcome,
                degraded: DegradedReport::default(),
            });
        }

        // Split the WHERE into conjuncts and classify by home set.
        let mut local: Vec<Vec<Condition>> = vec![Vec::new(); groups.len()];
        let mut cross: Vec<Condition> = Vec::new();
        if let Some(cond) = &query.where_clause {
            for conjunct in split_and(cond) {
                let vars = condition_vars(&conjunct);
                let homes: std::collections::BTreeSet<usize> = vars
                    .iter()
                    .map(|v| {
                        let_home.get(v).copied().ok_or_else(|| {
                            XomatiqError::Query(QueryError::UnboundVariable(v.clone()))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if homes.len() <= 1 {
                    let home = homes.into_iter().next().unwrap_or(groups[0].0);
                    let slot = groups.iter().position(|(m, _)| *m == home).ok_or_else(|| {
                        XomatiqError::Query(QueryError::Parse(
                            "condition references no bound warehouse".into(),
                        ))
                    })?;
                    local[slot].push(conjunct);
                } else {
                    // Cross-warehouse conjuncts must be plain comparisons.
                    match &conjunct {
                        Condition::Compare(c) if matches!(c.right, Operand::Path(_)) => {
                            cross.push(conjunct);
                        }
                        _ => {
                            return Err(XomatiqError::Query(QueryError::Unsupported(
                                "only comparisons between path expressions may span \
                                 warehouses"
                                    .into(),
                            )))
                        }
                    }
                }
            }
        }

        // Build per-member sub-queries.
        let mut subs: Vec<FlwrQuery> = Vec::new();
        // For every member: the visible return items it owns (with their
        // global position) and the cross-join key columns it contributes.
        let mut visible_map: Vec<Vec<(usize, usize)>> = Vec::new(); // member slot → [(global pos, local col)]
        let mut key_cols: Vec<HashMap<String, usize>> = Vec::new(); // member slot → path string → local col

        for (slot, (member, binding_idxs)) in groups.iter().enumerate() {
            let bindings: Vec<_> = binding_idxs
                .iter()
                .map(|i| query.bindings[*i].clone())
                .collect();
            let lets: Vec<_> = query
                .lets
                .iter()
                .filter(|l| let_home.get(&l.var) == Some(member))
                .cloned()
                .collect();
            let mut items: Vec<ReturnItem> = Vec::new();
            let mut visible = Vec::new();
            for (global_pos, item) in query.return_items.iter().enumerate() {
                if let_home.get(&item.path.var) == Some(member) {
                    visible.push((global_pos, items.len()));
                    items.push(item.clone());
                }
            }
            let mut keys = HashMap::new();
            for conjunct in &cross {
                let Condition::Compare(c) = conjunct else {
                    continue;
                };
                let Operand::Path(right) = &c.right else {
                    continue;
                };
                for side in [&c.left, right] {
                    if let_home.get(&side.var) == Some(member) {
                        let key = side.to_string();
                        if !keys.contains_key(&key) {
                            keys.insert(key.clone(), items.len());
                            items.push(ReturnItem {
                                alias: Some(format!("__fed_key_{}", items.len())),
                                path: side.clone(),
                            });
                        }
                    }
                }
            }
            if items.is_empty() {
                // A warehouse contributing nothing visible still needs one
                // column so its row count (existence) participates.
                items.push(ReturnItem {
                    alias: Some("__fed_probe".into()),
                    path: PathExpr::bare(&bindings[0].var),
                });
            }
            let where_clause = and_all(local[slot].clone());
            subs.push(FlwrQuery {
                bindings,
                lets,
                where_clause,
                return_items: items,
                wrapper: None,
            });
            visible_map.push(visible);
            key_cols.push(keys);
        }

        // Launch every member's sub-query on its own worker, then gather
        // under the per-member deadline. A failed member yields `None`.
        let receivers: Vec<_> = groups
            .iter()
            .zip(&subs)
            .map(|((member, _), sub)| self.spawn_member(*member, sub.clone()))
            .collect();
        let mut sub_outcomes: Vec<Option<QueryOutcome>> = Vec::new();
        let mut degraded = DegradedReport::default();
        for (slot, rx) in receivers.iter().enumerate() {
            match self.await_member(rx) {
                Ok(outcome) => sub_outcomes.push(Some(outcome)),
                Err(reason) => {
                    degraded.failed.push(MemberFailure {
                        member: self.members[groups[slot].0].0.clone(),
                        reason,
                    });
                    sub_outcomes.push(None);
                }
            }
        }
        if degraded.is_degraded() {
            fed_metrics().degraded_queries.inc();
            if self.strict {
                let detail: Vec<String> = degraded
                    .failed
                    .iter()
                    .map(|f| format!("{} ({})", f.member, f.reason))
                    .collect();
                return Err(XomatiqError::Federation(format!(
                    "strict mode: member failure(s): {}",
                    detail.join("; ")
                )));
            }
            if sub_outcomes.iter().all(Option::is_none) {
                return Err(XomatiqError::Federation(
                    "every federation member failed".into(),
                ));
            }
        }

        // Combine: start with the first surviving member's rows, join each
        // further surviving member. Row representation: Vec<Value> =
        // concatenation of member rows, with per-member column offsets
        // (failed members occupy zero columns). Cross-warehouse conjuncts
        // touching a failed member are unevaluable and skipped — the
        // surviving side comes back unfiltered, which is the documented
        // partial-result semantics.
        let mut offsets = vec![0usize];
        for outcome in &sub_outcomes {
            let width = outcome.as_ref().map_or(0, |o| o.columns.len());
            offsets.push(offsets.last().expect("non-empty") + width);
        }
        let surviving: Vec<usize> = sub_outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|_| i))
            .collect();
        let seed = surviving[0];
        let mut combined: Vec<Vec<Value>> = sub_outcomes[seed]
            .as_ref()
            .map(|o| o.rows.to_vec())
            .unwrap_or_default();
        let mut joined_slots = vec![seed];
        for &next_slot in surviving.iter().skip(1) {
            // Equality keys between the joined slots and next_slot.
            let mut probe_cols: Vec<usize> = Vec::new(); // absolute cols in combined
            let mut build_cols: Vec<usize> = Vec::new(); // cols in next outcome
            let mut residual: Vec<(usize, CompOp, usize)> = Vec::new(); // (abs col, op, next col)
            for conjunct in &cross {
                let Condition::Compare(c) = conjunct else {
                    continue;
                };
                let Operand::Path(right) = &c.right else {
                    continue;
                };
                let lh = let_home[&c.left.var];
                let rh = let_home[&right.var];
                let left_slot = groups.iter().position(|(m, _)| *m == lh).expect("grouped");
                let right_slot = groups.iter().position(|(m, _)| *m == rh).expect("grouped");
                let (joined_side, new_side, joined_slot, op) =
                    if right_slot == next_slot && joined_slots.contains(&left_slot) {
                        (&c.left, right, left_slot, c.op)
                    } else if left_slot == next_slot && joined_slots.contains(&right_slot) {
                        (right, &c.left, right_slot, flip(c.op))
                    } else {
                        continue;
                    };
                let joined_col =
                    offsets[joined_slot] + key_cols[joined_slot][&joined_side.to_string()];
                let new_col = key_cols[next_slot][&new_side.to_string()];
                if op == CompOp::Eq {
                    probe_cols.push(joined_col);
                    build_cols.push(new_col);
                } else {
                    residual.push((joined_col, op, new_col));
                }
            }
            let next_rows = &sub_outcomes[next_slot]
                .as_ref()
                .expect("surviving slot")
                .rows;
            let mut out = Vec::new();
            if probe_cols.is_empty() {
                // Cross join (plus residual filters).
                for left in &combined {
                    for right in next_rows {
                        if residual_ok(left, right, &residual) {
                            let mut row = left.clone();
                            row.extend(right.iter().cloned());
                            out.push(row);
                        }
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, row) in next_rows.iter().enumerate() {
                    let key: Vec<Value> = build_cols.iter().map(|c| row[*c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    table.entry(key).or_default().push(i);
                }
                for left in &combined {
                    let key: Vec<Value> = probe_cols.iter().map(|c| left[*c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            if residual_ok(left, &next_rows[i], &residual) {
                                let mut row = left.clone();
                                row.extend(next_rows[i].iter().cloned());
                                out.push(row);
                            }
                        }
                    }
                }
            }
            combined = out;
            joined_slots.push(next_slot);
        }

        // Project back to the user's RETURN order and de-duplicate (each
        // sub-query was already DISTINCT, but the combination can repeat).
        // Columns owned by a failed member project as NULL.
        let mut projection: Vec<(usize, Option<usize>)> = Vec::new(); // (global pos, abs col)
        for (slot, visible) in visible_map.iter().enumerate() {
            let alive = sub_outcomes[slot].is_some();
            for (global_pos, local_col) in visible {
                projection.push((*global_pos, alive.then_some(offsets[slot] + local_col)));
            }
        }
        projection.sort_by_key(|(global, _)| *global);
        let columns: Vec<String> = query
            .return_items
            .iter()
            .map(|item| item.output_name())
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for row in combined {
            let projected: Vec<Value> = projection
                .iter()
                .map(|(_, col)| match col {
                    Some(c) => row[*c].clone(),
                    None => Value::Null,
                })
                .collect();
            if seen.insert(projected.clone()) {
                rows.push(projected);
            }
        }
        // Deterministic order, matching single-warehouse translation.
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(FederatedOutcome {
            outcome: QueryOutcome {
                columns,
                rows,
                sql: "(federated: executed as per-warehouse sub-queries)".into(),
            },
            degraded,
        })
    }
}

fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
        other => other,
    }
}

fn residual_ok(left: &[Value], right: &[Value], residual: &[(usize, CompOp, usize)]) -> bool {
    residual.iter().all(
        |(lcol, op, rcol)| match left[*lcol].compare(&right[*rcol]) {
            None => false,
            Some(ord) => match op {
                CompOp::Eq => ord.is_eq(),
                CompOp::Ne => ord.is_ne(),
                CompOp::Lt => ord.is_lt(),
                CompOp::Le => ord.is_le(),
                CompOp::Gt => ord.is_gt(),
                CompOp::Ge => ord.is_ge(),
            },
        },
    )
}

/// Splits a condition tree into top-level conjuncts.
fn split_and(cond: &Condition) -> Vec<Condition> {
    match cond {
        Condition::And(a, b) => {
            let mut out = split_and(a);
            out.extend(split_and(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn and_all(mut conds: Vec<Condition>) -> Option<Condition> {
    let mut acc = conds.pop()?;
    while let Some(c) = conds.pop() {
        acc = Condition::And(Box::new(c), Box::new(acc));
    }
    Some(acc)
}

/// All variables referenced by a condition.
fn condition_vars(cond: &Condition) -> Vec<String> {
    fn path_vars(p: &PathExpr, out: &mut Vec<String>) {
        if !out.contains(&p.var) {
            out.push(p.var.clone());
        }
    }
    fn walk(cond: &Condition, out: &mut Vec<String>) {
        match cond {
            Condition::And(a, b) | Condition::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Condition::Not(c) => walk(c, out),
            Condition::Compare(Comparison { left, right, .. }) => {
                path_vars(left, out);
                if let Operand::Path(p) = right {
                    path_vars(p, out);
                }
            }
            Condition::Contains { target, .. } | Condition::Matches { target, .. } => {
                path_vars(target, out);
            }
            Condition::Order { left, right, .. } => {
                path_vars(left, out);
                path_vars(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(cond, &mut out);
    out
}
