//! Federated queries across distributed warehouses.
//!
//! The paper's query language serves "the querying of one or more
//! distributed or local warehouses managed within the gRNA" (§3). A
//! [`Federation`] holds several [`Xomatiq`] warehouses (in a real gRNA
//! deployment these would be remote nodes; here they are in-process
//! instances, which exercises the same split-translate-combine path).
//!
//! Execution strategy for a query whose FOR bindings span warehouses:
//!
//! 1. the WHERE tree is split into top-level conjuncts;
//! 2. each warehouse gets a sub-query containing its bindings, the
//!    conjuncts touching only its variables, the RETURN items rooted at
//!    its variables, and — as hidden extra columns — the path expressions
//!    its variables contribute to cross-warehouse comparisons;
//! 3. sub-queries run on their warehouses through the ordinary XQ2SQL
//!    path;
//! 4. the federation layer combines the partial results: hash joins on
//!    cross-warehouse equality comparisons, filters for the other
//!    operators, then a projection back to the user's RETURN order.
//!
//! Cross-warehouse disjunctions (an `OR` mixing variables of different
//! warehouses) are rejected as unsupported, mirroring the conjunctive
//! split; everything the paper's figures need is conjunctive.

use std::collections::HashMap;
use std::sync::Arc;

use xomatiq_relstore::Value;
use xomatiq_xquery::ast::{
    CompOp, Comparison, Condition, FlwrQuery, Operand, PathExpr, ReturnItem,
};
use xomatiq_xquery::{parse_query, QueryError};

use crate::warehouse::{QueryOutcome, Xomatiq, XomatiqError};

/// A set of named warehouses queried as one system.
#[derive(Default)]
pub struct Federation {
    members: Vec<(String, Arc<Xomatiq>)>,
}

impl Federation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Adds a warehouse under `name`.
    pub fn add_warehouse(&mut self, name: &str, warehouse: Arc<Xomatiq>) {
        self.members.push((name.to_string(), warehouse));
    }

    /// Member warehouse names.
    pub fn members(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The member warehouse holding `collection`, if any.
    pub fn locate(&self, collection: &str) -> Option<&Arc<Xomatiq>> {
        self.members
            .iter()
            .map(|(_, w)| w)
            .find(|w| w.collections().iter().any(|c| c == collection))
    }

    /// Parses and runs a FLWR query that may span member warehouses.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, XomatiqError> {
        let parsed = parse_query(text)?;
        self.run_query(&parsed)
    }

    /// Runs a parsed query across the federation.
    pub fn run_query(&self, query: &FlwrQuery) -> Result<QueryOutcome, XomatiqError> {
        // Assign each binding variable to the member that holds its
        // collection.
        let mut var_home: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (member idx, binding idxs)
        for (bi, binding) in query.bindings.iter().enumerate() {
            let member = self
                .members
                .iter()
                .position(|(_, w)| w.collections().iter().any(|c| c == &binding.collection))
                .ok_or_else(|| {
                    XomatiqError::Query(QueryError::UnknownCollection(binding.collection.clone()))
                })?;
            var_home.insert(binding.var.clone(), member);
            match groups.iter_mut().find(|(m, _)| *m == member) {
                Some((_, list)) => list.push(bi),
                None => groups.push((member, vec![bi])),
            }
        }
        // LET variables inherit the home of their base variable chain.
        let mut let_home = var_home.clone();
        for l in &query.lets {
            let home = let_home.get(&l.target.var).copied().ok_or_else(|| {
                XomatiqError::Query(QueryError::UnboundVariable(l.target.var.clone()))
            })?;
            let_home.insert(l.var.clone(), home);
        }

        // Single warehouse: delegate wholesale.
        if groups.len() <= 1 {
            let (member, _) = groups.first().ok_or_else(|| {
                XomatiqError::Query(QueryError::Parse("query has no bindings".into()))
            })?;
            return self.members[*member].1.run_query(query);
        }

        // Split the WHERE into conjuncts and classify by home set.
        let mut local: Vec<Vec<Condition>> = vec![Vec::new(); groups.len()];
        let mut cross: Vec<Condition> = Vec::new();
        if let Some(cond) = &query.where_clause {
            for conjunct in split_and(cond) {
                let vars = condition_vars(&conjunct);
                let homes: std::collections::BTreeSet<usize> = vars
                    .iter()
                    .map(|v| {
                        let_home.get(v).copied().ok_or_else(|| {
                            XomatiqError::Query(QueryError::UnboundVariable(v.clone()))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if homes.len() <= 1 {
                    let home = homes.into_iter().next().unwrap_or(groups[0].0);
                    let slot = groups.iter().position(|(m, _)| *m == home).ok_or_else(|| {
                        XomatiqError::Query(QueryError::Parse(
                            "condition references no bound warehouse".into(),
                        ))
                    })?;
                    local[slot].push(conjunct);
                } else {
                    // Cross-warehouse conjuncts must be plain comparisons.
                    match &conjunct {
                        Condition::Compare(c) if matches!(c.right, Operand::Path(_)) => {
                            cross.push(conjunct);
                        }
                        _ => {
                            return Err(XomatiqError::Query(QueryError::Unsupported(
                                "only comparisons between path expressions may span \
                                 warehouses"
                                    .into(),
                            )))
                        }
                    }
                }
            }
        }

        // Build per-member sub-queries.
        let mut sub_outcomes: Vec<QueryOutcome> = Vec::new();
        // For every member: the visible return items it owns (with their
        // global position) and the cross-join key columns it contributes.
        let mut visible_map: Vec<Vec<(usize, usize)>> = Vec::new(); // member slot → [(global pos, local col)]
        let mut key_cols: Vec<HashMap<String, usize>> = Vec::new(); // member slot → path string → local col

        for (slot, (member, binding_idxs)) in groups.iter().enumerate() {
            let bindings: Vec<_> = binding_idxs
                .iter()
                .map(|i| query.bindings[*i].clone())
                .collect();
            let lets: Vec<_> = query
                .lets
                .iter()
                .filter(|l| let_home.get(&l.var) == Some(member))
                .cloned()
                .collect();
            let mut items: Vec<ReturnItem> = Vec::new();
            let mut visible = Vec::new();
            for (global_pos, item) in query.return_items.iter().enumerate() {
                if let_home.get(&item.path.var) == Some(member) {
                    visible.push((global_pos, items.len()));
                    items.push(item.clone());
                }
            }
            let mut keys = HashMap::new();
            for conjunct in &cross {
                let Condition::Compare(c) = conjunct else {
                    continue;
                };
                let Operand::Path(right) = &c.right else {
                    continue;
                };
                for side in [&c.left, right] {
                    if let_home.get(&side.var) == Some(member) {
                        let key = side.to_string();
                        if !keys.contains_key(&key) {
                            keys.insert(key.clone(), items.len());
                            items.push(ReturnItem {
                                alias: Some(format!("__fed_key_{}", items.len())),
                                path: side.clone(),
                            });
                        }
                    }
                }
            }
            if items.is_empty() {
                // A warehouse contributing nothing visible still needs one
                // column so its row count (existence) participates.
                items.push(ReturnItem {
                    alias: Some("__fed_probe".into()),
                    path: PathExpr::bare(&bindings[0].var),
                });
            }
            let where_clause = and_all(local[slot].clone());
            let sub = FlwrQuery {
                bindings,
                lets,
                where_clause,
                return_items: items,
                wrapper: None,
            };
            let outcome = self.members[*member].1.run_query(&sub)?;
            sub_outcomes.push(outcome);
            visible_map.push(visible);
            key_cols.push(keys);
        }

        // Combine: start with member 0's rows, join each further member.
        // Row representation: Vec<Value> = concatenation of member rows,
        // with per-member column offsets.
        let mut offsets = vec![0usize];
        for outcome in &sub_outcomes {
            offsets.push(offsets.last().expect("non-empty") + outcome.columns.len());
        }
        let mut combined: Vec<Vec<Value>> = sub_outcomes[0].rows.to_vec();
        let mut joined_slots = vec![0usize];
        for next_slot in 1..sub_outcomes.len() {
            // Equality keys between the joined slots and next_slot.
            let mut probe_cols: Vec<usize> = Vec::new(); // absolute cols in combined
            let mut build_cols: Vec<usize> = Vec::new(); // cols in next outcome
            let mut residual: Vec<(usize, CompOp, usize)> = Vec::new(); // (abs col, op, next col)
            for conjunct in &cross {
                let Condition::Compare(c) = conjunct else {
                    continue;
                };
                let Operand::Path(right) = &c.right else {
                    continue;
                };
                let lh = let_home[&c.left.var];
                let rh = let_home[&right.var];
                let left_slot = groups.iter().position(|(m, _)| *m == lh).expect("grouped");
                let right_slot = groups.iter().position(|(m, _)| *m == rh).expect("grouped");
                let (joined_side, new_side, joined_slot, op) =
                    if right_slot == next_slot && joined_slots.contains(&left_slot) {
                        (&c.left, right, left_slot, c.op)
                    } else if left_slot == next_slot && joined_slots.contains(&right_slot) {
                        (right, &c.left, right_slot, flip(c.op))
                    } else {
                        continue;
                    };
                let joined_col =
                    offsets[joined_slot] + key_cols[joined_slot][&joined_side.to_string()];
                let new_col = key_cols[next_slot][&new_side.to_string()];
                if op == CompOp::Eq {
                    probe_cols.push(joined_col);
                    build_cols.push(new_col);
                } else {
                    residual.push((joined_col, op, new_col));
                }
            }
            let next_rows = &sub_outcomes[next_slot].rows;
            let mut out = Vec::new();
            if probe_cols.is_empty() {
                // Cross join (plus residual filters).
                for left in &combined {
                    for right in next_rows {
                        if residual_ok(left, right, &residual) {
                            let mut row = left.clone();
                            row.extend(right.iter().cloned());
                            out.push(row);
                        }
                    }
                }
            } else {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (i, row) in next_rows.iter().enumerate() {
                    let key: Vec<Value> = build_cols.iter().map(|c| row[*c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    table.entry(key).or_default().push(i);
                }
                for left in &combined {
                    let key: Vec<Value> = probe_cols.iter().map(|c| left[*c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = table.get(&key) {
                        for &i in matches {
                            if residual_ok(left, &next_rows[i], &residual) {
                                let mut row = left.clone();
                                row.extend(next_rows[i].iter().cloned());
                                out.push(row);
                            }
                        }
                    }
                }
            }
            combined = out;
            joined_slots.push(next_slot);
        }

        // Project back to the user's RETURN order and de-duplicate (each
        // sub-query was already DISTINCT, but the combination can repeat).
        let mut projection: Vec<(usize, usize)> = Vec::new(); // (global pos, abs col)
        for (slot, visible) in visible_map.iter().enumerate() {
            for (global_pos, local_col) in visible {
                projection.push((*global_pos, offsets[slot] + local_col));
            }
        }
        projection.sort_by_key(|(global, _)| *global);
        let columns: Vec<String> = query
            .return_items
            .iter()
            .map(|item| item.output_name())
            .collect();
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for row in combined {
            let projected: Vec<Value> = projection
                .iter()
                .map(|(_, col)| row[*col].clone())
                .collect();
            if seen.insert(projected.clone()) {
                rows.push(projected);
            }
        }
        // Deterministic order, matching single-warehouse translation.
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(QueryOutcome {
            columns,
            rows,
            sql: "(federated: executed as per-warehouse sub-queries)".into(),
        })
    }
}

fn flip(op: CompOp) -> CompOp {
    match op {
        CompOp::Lt => CompOp::Gt,
        CompOp::Le => CompOp::Ge,
        CompOp::Gt => CompOp::Lt,
        CompOp::Ge => CompOp::Le,
        other => other,
    }
}

fn residual_ok(left: &[Value], right: &[Value], residual: &[(usize, CompOp, usize)]) -> bool {
    residual.iter().all(
        |(lcol, op, rcol)| match left[*lcol].compare(&right[*rcol]) {
            None => false,
            Some(ord) => match op {
                CompOp::Eq => ord.is_eq(),
                CompOp::Ne => ord.is_ne(),
                CompOp::Lt => ord.is_lt(),
                CompOp::Le => ord.is_le(),
                CompOp::Gt => ord.is_gt(),
                CompOp::Ge => ord.is_ge(),
            },
        },
    )
}

/// Splits a condition tree into top-level conjuncts.
fn split_and(cond: &Condition) -> Vec<Condition> {
    match cond {
        Condition::And(a, b) => {
            let mut out = split_and(a);
            out.extend(split_and(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn and_all(mut conds: Vec<Condition>) -> Option<Condition> {
    let mut acc = conds.pop()?;
    while let Some(c) = conds.pop() {
        acc = Condition::And(Box::new(c), Box::new(acc));
    }
    Some(acc)
}

/// All variables referenced by a condition.
fn condition_vars(cond: &Condition) -> Vec<String> {
    fn path_vars(p: &PathExpr, out: &mut Vec<String>) {
        if !out.contains(&p.var) {
            out.push(p.var.clone());
        }
    }
    fn walk(cond: &Condition, out: &mut Vec<String>) {
        match cond {
            Condition::And(a, b) | Condition::Or(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Condition::Not(c) => walk(c, out),
            Condition::Compare(Comparison { left, right, .. }) => {
                path_vars(left, out);
                if let Operand::Path(p) = right {
                    path_vars(p, out);
                }
            }
            Condition::Contains { target, .. } | Condition::Matches { target, .. } => {
                path_vars(target, out);
            }
            Condition::Order { left, right, .. } => {
                path_vars(left, out);
                path_vars(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(cond, &mut out);
    out
}
