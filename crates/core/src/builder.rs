//! Programmatic query formulation — the three modes of the visual
//! interface (paper §3.1).
//!
//! The paper's GUI shows the collection DTD on the left and lets the user
//! click elements and enter conditions; the "Translate Query" button then
//! produces the textual form. [`QueryBuilder`] is that interaction as an
//! API: the same three modes (keyword search, sub-tree search, join),
//! producing the same [`FlwrQuery`] values, whose `Display` is the text
//! the button would show.

use xomatiq_xml::LabelPath;
use xomatiq_xquery::ast::{
    AttrPredicate, Binding, CompOp, Comparison, Condition, FlwrQuery, LetBinding, Literal, Operand,
    PathExpr, ReturnItem,
};
use xomatiq_xquery::{QueryError, QueryResult};

/// Builds FLWR queries the way the XomatiQ GUI does.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    bindings: Vec<Binding>,
    lets: Vec<LetBinding>,
    condition: Option<Condition>,
    returns: Vec<ReturnItem>,
    wrapper: Option<String>,
}

impl QueryBuilder {
    /// Starts an empty query.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    // ---- mode presets ------------------------------------------------------

    /// Keyword-search mode (Figure 8): one binding per collection, a
    /// whole-document `contains(..., any)` for each, returning the given
    /// paths. `collections` supplies `(variable, collection, root_path)`.
    pub fn keyword_search(
        collections: &[(&str, &str, &str)],
        keyword: &str,
        returns: &[&str],
    ) -> QueryResult<FlwrQuery> {
        let mut b = QueryBuilder::new();
        for (var, collection, root) in collections {
            b = b.for_var(var, collection, root)?;
        }
        for (var, ..) in collections {
            b = b.where_contains_any(var, keyword);
        }
        for ret in returns {
            b = b.return_path(ret)?;
        }
        b.build()
    }

    /// Sub-tree search mode (Figures 7/9): one binding, a `contains` on a
    /// selected sub-tree, returning the given paths.
    pub fn subtree_search(
        var: &str,
        collection: &str,
        root: &str,
        target: &str,
        keyword: &str,
        returns: &[&str],
    ) -> QueryResult<FlwrQuery> {
        let mut b = QueryBuilder::new()
            .for_var(var, collection, root)?
            .where_contains(target, keyword)?;
        for ret in returns {
            b = b.return_path(ret)?;
        }
        b.build()
    }

    /// Join mode (Figures 10/11): two bindings joined on a pair of path
    /// expressions, returning aliased paths.
    pub fn join(
        left: (&str, &str, &str),
        right: (&str, &str, &str),
        join_left: &str,
        join_right: &str,
        returns: &[(&str, &str)],
    ) -> QueryResult<FlwrQuery> {
        let mut b = QueryBuilder::new()
            .for_var(left.0, left.1, left.2)?
            .for_var(right.0, right.1, right.2)?
            .where_join(join_left, join_right)?;
        for (alias, path) in returns {
            b = b.return_aliased(alias, path)?;
        }
        b.build()
    }

    // ---- incremental construction ------------------------------------------

    /// Adds a `FOR $var IN document("collection")root` binding.
    pub fn for_var(mut self, var: &str, collection: &str, root: &str) -> QueryResult<Self> {
        let path = LabelPath::parse(root).map_err(|e| QueryError::Parse(e.to_string()))?;
        self.bindings.push(Binding {
            var: var.to_string(),
            collection: collection.to_string(),
            path,
        });
        Ok(self)
    }

    /// Adds a `LET $var := pathexpr` alias binding.
    pub fn let_var(mut self, var: &str, target: &str) -> QueryResult<Self> {
        self.lets.push(LetBinding {
            var: var.to_string(),
            target: parse_path_expr(target)?,
        });
        Ok(self)
    }

    /// ANDs a whole-document keyword condition for `var`.
    pub fn where_contains_any(self, var: &str, keyword: &str) -> Self {
        let cond = Condition::Contains {
            target: PathExpr::bare(var),
            keyword: keyword.to_string(),
            any: true,
        };
        self.and(cond)
    }

    /// ANDs a sub-tree keyword condition on a path like `$a//comment`.
    pub fn where_contains(self, target: &str, keyword: &str) -> QueryResult<Self> {
        let target = parse_path_expr(target)?;
        Ok(self.and(Condition::Contains {
            target,
            keyword: keyword.to_string(),
            any: false,
        }))
    }

    /// ANDs a regular-expression condition (`matches(path, "pattern")`),
    /// the sequence-motif primitive.
    pub fn where_matches(self, target: &str, pattern: &str) -> QueryResult<Self> {
        let target = parse_path_expr(target)?;
        Ok(self.and(Condition::Matches {
            target,
            pattern: pattern.to_string(),
        }))
    }

    /// ANDs a comparison against a string literal.
    pub fn where_eq(self, path: &str, value: &str) -> QueryResult<Self> {
        let left = parse_path_expr(path)?;
        Ok(self.and(Condition::Compare(Comparison {
            left,
            op: CompOp::Eq,
            right: Operand::Literal(Literal::Text(value.to_string())),
        })))
    }

    /// ANDs a numeric comparison.
    pub fn where_cmp_num(self, path: &str, op: CompOp, value: f64) -> QueryResult<Self> {
        let left = parse_path_expr(path)?;
        let lit = if value.fract() == 0.0 {
            Literal::Int(value as i64)
        } else {
            Literal::Float(value)
        };
        Ok(self.and(Condition::Compare(Comparison {
            left,
            op,
            right: Operand::Literal(lit),
        })))
    }

    /// ANDs a join condition between two path expressions.
    pub fn where_join(self, left: &str, right: &str) -> QueryResult<Self> {
        let l = parse_path_expr(left)?;
        let r = parse_path_expr(right)?;
        Ok(self.and(Condition::Compare(Comparison {
            left: l,
            op: CompOp::Eq,
            right: Operand::Path(r),
        })))
    }

    /// ORs `other`'s condition into the current one (GUI's disjunctive
    /// constraints, §3.1).
    pub fn or_where(mut self, cond: Condition) -> Self {
        self.condition = Some(match self.condition.take() {
            Some(existing) => Condition::Or(Box::new(existing), Box::new(cond)),
            None => cond,
        });
        self
    }

    fn and(mut self, cond: Condition) -> Self {
        self.condition = Some(match self.condition.take() {
            Some(existing) => Condition::And(Box::new(existing), Box::new(cond)),
            None => cond,
        });
        self
    }

    /// Adds a RETURN item from a path like `$a//enzyme_id`.
    pub fn return_path(mut self, path: &str) -> QueryResult<Self> {
        self.returns.push(ReturnItem {
            alias: None,
            path: parse_path_expr(path)?,
        });
        Ok(self)
    }

    /// Adds an aliased RETURN item (`$Accession_Number = $a//...`).
    pub fn return_aliased(mut self, alias: &str, path: &str) -> QueryResult<Self> {
        self.returns.push(ReturnItem {
            alias: Some(alias.to_string()),
            path: parse_path_expr(path)?,
        });
        Ok(self)
    }

    /// Wraps the RETURN list in an element constructor.
    pub fn wrap_in(mut self, tag: &str) -> Self {
        self.wrapper = Some(tag.to_string());
        self
    }

    /// Finalizes the query — the "Translate Query" button.
    pub fn build(self) -> QueryResult<FlwrQuery> {
        if self.bindings.is_empty() {
            return Err(QueryError::Parse(
                "a query needs at least one FOR binding".into(),
            ));
        }
        if self.returns.is_empty() {
            return Err(QueryError::Parse(
                "a query needs at least one RETURN item".into(),
            ));
        }
        Ok(FlwrQuery {
            bindings: self.bindings,
            lets: self.lets,
            where_clause: self.condition,
            return_items: self.returns,
            wrapper: self.wrapper,
        })
    }
}

/// Parses a `$var//path[@attr = "v"]/@attr` string into a [`PathExpr`] by
/// reusing the query parser on a minimal synthetic query.
fn parse_path_expr(text: &str) -> QueryResult<PathExpr> {
    let synthetic = format!("FOR $__ IN document(\"__\")/__ RETURN {text}");
    let q = xomatiq_xquery::parse_query(&synthetic)?;
    Ok(q.return_items.into_iter().next().expect("one item").path)
}

/// Re-exported for building predicates by hand.
pub fn attr_predicate(name: &str, value: &str) -> AttrPredicate {
    AttrPredicate {
        name: name.to_string(),
        value: value.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_xquery::parse_query;

    #[test]
    fn subtree_mode_builds_figure9() {
        let q = QueryBuilder::subtree_search(
            "a",
            "hlx_enzyme.DEFAULT",
            "/hlx_enzyme",
            "$a//catalytic_activity",
            "ketone",
            &["$a//enzyme_id", "$a//enzyme_description"],
        )
        .unwrap();
        let text = q.to_string();
        let expected = parse_query(
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE contains($a//catalytic_activity, "ketone")
               RETURN $a//enzyme_id, $a//enzyme_description"#,
        )
        .unwrap();
        assert_eq!(q, expected, "built:\n{text}");
    }

    #[test]
    fn keyword_mode_builds_figure8() {
        let q = QueryBuilder::keyword_search(
            &[
                ("a", "hlx_embl.inv", "/hlx_n_sequence"),
                ("b", "hlx_sprot.all", "/hlx_p_sequence"),
            ],
            "cdc6",
            &["$b//sprot_accession_number", "$a//embl_accession_number"],
        )
        .unwrap();
        let expected = parse_query(
            r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence,
                   $b IN document("hlx_sprot.all")/hlx_p_sequence
               WHERE contains($a, "cdc6", any) AND contains($b, "cdc6", any)
               RETURN $b//sprot_accession_number, $a//embl_accession_number"#,
        )
        .unwrap();
        assert_eq!(q, expected);
    }

    #[test]
    fn join_mode_builds_figure11() {
        let q = QueryBuilder::join(
            ("a", "hlx_embl.inv", "/hlx_n_sequence/db_entry"),
            ("b", "hlx_enzyme.DEFAULT", "/hlx_enzyme/db_entry"),
            "$a//qualifier[@qualifier_type = \"EC number\"]",
            "$b/enzyme_id",
            &[
                ("Accession_Number", "$a//embl_accession_number"),
                ("Accession_Description", "$a//description"),
            ],
        )
        .unwrap();
        let expected = parse_query(
            r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
                   $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
               WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
               RETURN $Accession_Number = $a//embl_accession_number,
                      $Accession_Description = $a//description"#,
        )
        .unwrap();
        assert_eq!(q, expected);
    }

    #[test]
    fn built_queries_round_trip_through_text() {
        let q = QueryBuilder::new()
            .for_var("a", "c", "/root")
            .unwrap()
            .where_eq("$a//x", "v")
            .unwrap()
            .where_cmp_num("$a//n/@len", CompOp::Gt, 10.0)
            .unwrap()
            .return_path("$a//x")
            .unwrap()
            .wrap_in("result")
            .build()
            .unwrap();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn or_where_builds_disjunction() {
        let cond = Condition::Contains {
            target: parse_path_expr("$a//comment").unwrap(),
            keyword: "zinc".into(),
            any: false,
        };
        let q = QueryBuilder::new()
            .for_var("a", "c", "/r")
            .unwrap()
            .where_eq("$a//x", "v")
            .unwrap()
            .or_where(cond)
            .return_path("$a//x")
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(q.where_clause, Some(Condition::Or(..))));
    }

    #[test]
    fn build_validation() {
        assert!(QueryBuilder::new().build().is_err());
        assert!(QueryBuilder::new()
            .for_var("a", "c", "/r")
            .unwrap()
            .build()
            .is_err());
        assert!(QueryBuilder::new().for_var("a", "c", "not a path").is_err());
    }

    #[test]
    fn attr_predicate_helper() {
        let p = attr_predicate("qualifier_type", "EC number");
        assert_eq!(p.name, "qualifier_type");
        assert_eq!(p.value, "EC number");
    }
}
