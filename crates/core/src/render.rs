//! Result rendering — the two panels of Figures 7(b) and 12.
//!
//! The paper's result window offers "the results in a table or XML
//! structure format" on the left and "the tree structure view of the
//! documents satisfying the query" on the right. These functions produce
//! the textual equivalents for CLI applications and the examples.

use xomatiq_relstore::{ResultSet, Value};
use xomatiq_xml::document::NodeKind;
use xomatiq_xml::{Document, NodeId};

use crate::warehouse::QueryOutcome;

/// Renders a query outcome as an ASCII table (the "simple table format").
pub fn render_table(outcome: &QueryOutcome) -> String {
    render_rows(&outcome.columns, &outcome.rows)
}

/// Renders a raw relstore [`ResultSet`] (as produced by the `Query`
/// builder) in the same table format — the shell's direct-SQL view.
pub fn render_result_set(rs: &ResultSet) -> String {
    render_rows(rs.columns(), rs.rows())
}

/// Renders arbitrary columns + rows as an ASCII table.
pub fn render_rows(columns: &[String], rows: &[Vec<Value>]) -> String {
    let mut widths: Vec<usize> = columns.iter().map(String::len).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if let Some(w) = widths.get_mut(i) {
                *w = (*w).max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (c, w) in columns.iter().zip(&widths) {
        out.push_str(&format!(" {c:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out.push_str(&format!("({} rows)\n", rows.len()));
    out
}

/// Renders a document as an indented tree — the right-hand panel showing
/// "the tree structure view of the documents satisfying the query".
pub fn render_tree(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root_element() {
        render_node(doc, root, 0, &mut out);
    }
    out
}

fn render_node(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match doc.node(id).kind() {
        NodeKind::Element { name, attributes } => {
            out.push_str(&pad);
            out.push_str(name);
            for attr in attributes {
                out.push_str(&format!(" @{}={}", attr.name, attr.value));
            }
            // Inline short pure-text content like the GUI tree does.
            let text = xomatiq_xml::document::Document::text_content(doc, id);
            let only_text = doc.children(id).all(|c| doc.node(c).is_text());
            if only_text && !text.is_empty() {
                out.push_str(&format!(": {}", truncate(&text, 60)));
                out.push('\n');
                return;
            }
            out.push('\n');
            for child in doc.children(id) {
                render_node(doc, child, depth + 1, out);
            }
        }
        NodeKind::Text(t) => {
            if !t.trim().is_empty() {
                out.push_str(&format!("{pad}\"{}\"\n", truncate(t.trim(), 60)));
            }
        }
        NodeKind::Comment(_) | NodeKind::ProcessingInstruction { .. } | NodeKind::Document => {}
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xomatiq_relstore::Value;

    #[test]
    fn table_rendering() {
        let outcome = QueryOutcome {
            columns: vec!["enzyme_id".into(), "n".into()],
            rows: vec![
                vec![Value::Text("1.14.17.3".into()), Value::Int(5)],
                vec![Value::Text("2.7.7.7".into()), Value::Null],
            ],
            sql: String::new(),
        };
        let t = render_table(&outcome);
        assert!(t.contains("| enzyme_id | n    |"), "{t}");
        assert!(t.contains("| 1.14.17.3 | 5    |"), "{t}");
        assert!(t.contains("| 2.7.7.7   | NULL |"), "{t}");
        assert!(t.contains("(2 rows)"), "{t}");
    }

    #[test]
    fn tree_rendering() {
        let doc = xomatiq_xml::parse(
            r#"<hlx_enzyme><db_entry><enzyme_id>1.14.17.3</enzyme_id><prosite_reference prosite_accession_number="PDOC00080"/></db_entry></hlx_enzyme>"#,
        )
        .unwrap();
        let t = render_tree(&doc);
        assert!(t.contains("hlx_enzyme\n"), "{t}");
        assert!(t.contains("  db_entry\n"), "{t}");
        assert!(t.contains("    enzyme_id: 1.14.17.3\n"), "{t}");
        assert!(
            t.contains("    prosite_reference @prosite_accession_number=PDOC00080"),
            "{t}"
        );
    }

    #[test]
    fn long_text_is_truncated() {
        let long = "x".repeat(200);
        let doc = xomatiq_xml::parse(&format!("<a><b>{long}</b></a>")).unwrap();
        let t = render_tree(&doc);
        assert!(t.contains('…'), "{t}");
        assert!(!t.contains(&long), "{t}");
    }

    #[test]
    fn empty_outcome_renders() {
        let outcome = QueryOutcome {
            columns: vec!["x".into()],
            rows: vec![],
            sql: String::new(),
        };
        let t = render_table(&outcome);
        assert!(t.contains("(0 rows)"));
    }
}
