//! Property tests: generated corpora of any size and seed survive
//! write-to-flat → reparse unchanged. This is the contract Data Hounds
//! relies on — what the transformer reads is exactly what the source
//! database contained.

use proptest::prelude::*;
use xomatiq_bioflat::embl::parse_embl_file;
use xomatiq_bioflat::enzyme::parse_enzyme_file;
use xomatiq_bioflat::swissprot::parse_swissprot_file;
use xomatiq_bioflat::{Corpus, CorpusSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corpus_flat_files_round_trip(
        seed in 0u64..10_000,
        enzymes in 0usize..40,
        embl in 0usize..40,
        swissprot in 0usize..40,
        keyword_rate in 0.0f64..1.0,
        link_rate in 0.0f64..1.0,
        ketone_rate in 0.0f64..1.0,
    ) {
        let spec = CorpusSpec {
            enzymes, embl, swissprot, seed, keyword_rate, link_rate, ketone_rate,
        };
        let corpus = Corpus::generate(&spec);
        prop_assert_eq!(parse_enzyme_file(&corpus.enzyme_flat()).unwrap(), corpus.enzymes.clone());
        prop_assert_eq!(parse_embl_file(&corpus.embl_flat()).unwrap(), corpus.embl.clone());
        prop_assert_eq!(
            parse_swissprot_file(&corpus.swissprot_flat()).unwrap(),
            corpus.swissprot
        );
    }

    #[test]
    fn ground_truth_is_consistent(seed in 0u64..10_000) {
        let corpus = Corpus::generate(&CorpusSpec { seed, ..CorpusSpec::default() });
        // Every planted link names a real EMBL entry and a real enzyme.
        for (acc, ec) in &corpus.planted_ec_links {
            prop_assert!(corpus.embl.iter().any(|e| &e.accession == acc));
            prop_assert!(corpus.enzymes.iter().any(|e| &e.id == ec));
        }
        // cdc6 truth lists exactly the entries whose text mentions cdc6.
        for e in &corpus.embl {
            let mentions = e.description.to_lowercase().contains("cdc6");
            prop_assert_eq!(mentions, corpus.cdc6_embl.contains(&e.accession));
        }
    }
}
