//! The Swiss-Prot protein knowledge base flat format (simplified).
//!
//! Swiss-Prot is the second database of the paper's Figure 8 keyword query
//! (`hlx_sprot.all`) and the target of the ENZYME `DR` cross-references.
//! This module models the identification, accession, description, gene
//! name, organism, keyword, cross-reference and sequence lines.

use crate::error::{FlatError, FlatResult};
use crate::line::wrap_lines;

const FORMAT: &str = "Swiss-Prot";

/// A database cross-reference (`DR` line), e.g. to EMBL or PROSITE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbXref {
    /// Target database name, e.g. `EMBL`.
    pub database: String,
    /// Primary identifier in the target database.
    pub id: String,
}

/// One Swiss-Prot entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwissProtEntry {
    /// Entry name (`ID`), e.g. `AMD_BOVIN`.
    pub name: String,
    /// Primary accession number (`AC`), e.g. `P10731`.
    pub accession: String,
    /// Description (`DE`).
    pub description: String,
    /// Gene name (`GN`).
    pub gene: String,
    /// Organism species (`OS`).
    pub organism: String,
    /// Keywords (`KW`).
    pub keywords: Vec<String>,
    /// Cross-references (`DR`).
    pub xrefs: Vec<DbXref>,
    /// Amino-acid sequence (`SQ` block), uppercase one-letter codes.
    pub sequence: String,
}

impl SwissProtEntry {
    /// Parses one entry from its lines (terminator excluded).
    pub fn parse_lines(lines: &[&str]) -> FlatResult<SwissProtEntry> {
        let mut entry = SwissProtEntry::default();
        let mut in_sequence = false;
        for (i, raw) in lines.iter().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if in_sequence {
                let seq: String = line
                    .chars()
                    .filter(|c| c.is_ascii_alphabetic())
                    .map(|c| c.to_ascii_uppercase())
                    .collect();
                entry.sequence.push_str(&seq);
                continue;
            }
            let code = line.get(0..2).unwrap_or(line);
            let data = line.get(5..).unwrap_or("").trim_end();
            match code {
                "ID" => {
                    // `AMD_BOVIN               Reviewed;         972 AA.`
                    entry.name = data
                        .split_whitespace()
                        .next()
                        .ok_or_else(|| FlatError::at(FORMAT, lineno, "empty ID line"))?
                        .to_string();
                }
                "AC" => {
                    if entry.accession.is_empty() {
                        entry.accession = data.split(';').next().unwrap_or("").trim().to_string();
                    }
                }
                "DE" => {
                    if !entry.description.is_empty() {
                        entry.description.push(' ');
                    }
                    entry.description.push_str(data.trim());
                }
                "GN" => {
                    // `Name=cdc6;`
                    let text = data.trim();
                    entry.gene = text
                        .strip_prefix("Name=")
                        .unwrap_or(text)
                        .trim_end_matches(';')
                        .to_string();
                }
                "OS" => {
                    if !entry.organism.is_empty() {
                        entry.organism.push(' ');
                    }
                    entry.organism.push_str(data.trim().trim_end_matches('.'));
                }
                "KW" => {
                    for kw in data.split(';') {
                        let kw = kw.trim().trim_end_matches('.').trim();
                        if !kw.is_empty() {
                            entry.keywords.push(kw.to_string());
                        }
                    }
                }
                "DR" => {
                    // `EMBL; AB000001; -.`
                    let mut parts = data.split(';').map(str::trim);
                    let database = parts.next().unwrap_or("").to_string();
                    let id = parts.next().unwrap_or("").to_string();
                    if database.is_empty() || id.is_empty() {
                        return Err(FlatError::at(
                            FORMAT,
                            lineno,
                            format!("malformed DR line {data:?}"),
                        ));
                    }
                    entry.xrefs.push(DbXref { database, id });
                }
                "SQ" => in_sequence = true,
                "XX" | "CC" | "FT" | "OC" | "OX" | "RN" | "RP" | "RA" | "RT" | "RL" => {
                    // Narrative/citation lines we model as opaque: skipped.
                }
                other => {
                    return Err(FlatError::at(
                        FORMAT,
                        lineno,
                        format!("unknown line code {other:?}"),
                    ));
                }
            }
        }
        if entry.name.is_empty() {
            return Err(FlatError::new(FORMAT, "entry has no ID line"));
        }
        if entry.accession.is_empty() {
            return Err(FlatError::new(
                FORMAT,
                format!("entry {} has no AC line", entry.name),
            ));
        }
        Ok(entry)
    }

    /// Writes the entry back to flat format, including the terminator.
    pub fn to_flat(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ID   {:<24}Reviewed; {:>9} AA.\n",
            self.name,
            self.sequence.len()
        ));
        out.push_str(&format!("AC   {};\n", self.accession));
        if !self.description.is_empty() {
            wrap_lines("DE", &self.description, &mut out);
        }
        if !self.gene.is_empty() {
            out.push_str(&format!("GN   Name={};\n", self.gene));
        }
        if !self.organism.is_empty() {
            wrap_lines("OS", &format!("{}.", self.organism), &mut out);
        }
        if !self.keywords.is_empty() {
            let joined = format!("{}.", self.keywords.join("; "));
            wrap_lines("KW", &joined, &mut out);
        }
        for x in &self.xrefs {
            out.push_str(&format!("DR   {}; {}; -.\n", x.database, x.id));
        }
        if !self.sequence.is_empty() {
            out.push_str(&format!("SQ   SEQUENCE {} AA;\n", self.sequence.len()));
            for chunk in self.sequence.as_bytes().chunks(60) {
                out.push_str("     ");
                for block in chunk.chunks(10) {
                    out.push_str(std::str::from_utf8(block).expect("ascii sequence"));
                    out.push(' ');
                }
                out.push('\n');
            }
        }
        out.push_str("//\n");
        out
    }
}

/// Parses a whole Swiss-Prot flat file into entries.
pub fn parse_swissprot_file(input: &str) -> FlatResult<Vec<SwissProtEntry>> {
    crate::line::split_entries(input)
        .iter()
        .map(|lines| SwissProtEntry::parse_lines(lines))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ID   AMD_BOVIN               Reviewed;        60 AA.
AC   P10731;
DE   Peptidylglycine alpha-amidating monooxygenase precursor.
GN   Name=PAM;
OS   Bos taurus.
KW   Monooxygenase; Copper; cdc6.
DR   EMBL; AB000001; -.
DR   PROSITE; PDOC00080; -.
SQ   SEQUENCE 60 AA;
     MAGRARSGLL LLLLGLLALQ SSCLAFRSPL SVFKRFKETT RSFSNECLGT TRPVIPIDSS
//
";

    #[test]
    fn parses_sample_entry() {
        let entries = parse_swissprot_file(SAMPLE).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.name, "AMD_BOVIN");
        assert_eq!(e.accession, "P10731");
        assert!(e.description.contains("monooxygenase"));
        assert_eq!(e.gene, "PAM");
        assert_eq!(e.organism, "Bos taurus");
        assert_eq!(e.keywords, vec!["Monooxygenase", "Copper", "cdc6"]);
        assert_eq!(e.xrefs.len(), 2);
        assert_eq!(
            e.xrefs[0],
            DbXref {
                database: "EMBL".into(),
                id: "AB000001".into()
            }
        );
        assert_eq!(e.sequence.len(), 60);
    }

    #[test]
    fn round_trips_through_flat_format() {
        let entries = parse_swissprot_file(SAMPLE).unwrap();
        let rewritten = entries[0].to_flat();
        let reparsed = parse_swissprot_file(&rewritten).unwrap();
        assert_eq!(entries, reparsed);
    }

    #[test]
    fn narrative_lines_are_skipped() {
        let text = "ID   X_Y   Reviewed;  0 AA.\nAC   P1;\nCC   free text here\nRN   [1]\nRA   Some Author;\n//\n";
        let e = &parse_swissprot_file(text).unwrap()[0];
        assert_eq!(e.name, "X_Y");
    }

    #[test]
    fn rejects_bad_entries() {
        assert!(parse_swissprot_file("AC   P1;\n//\n").is_err()); // no ID
        assert!(parse_swissprot_file("ID   X  Reviewed; 0 AA.\n//\n").is_err()); // no AC
        assert!(parse_swissprot_file("ID   X  Reviewed; 0 AA.\nAC   P1;\nQQ   ?\n//\n").is_err());
        assert!(
            parse_swissprot_file("ID   X  Reviewed; 0 AA.\nAC   P1;\nDR   EMBLONLY\n//\n").is_err()
        );
    }

    #[test]
    fn multiple_entries() {
        let two = format!("{SAMPLE}ID   OTHER_HUMAN  Reviewed; 0 AA.\nAC   Q00001;\n//\n");
        let entries = parse_swissprot_file(&two).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].accession, "Q00001");
    }
}
