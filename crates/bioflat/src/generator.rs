//! Deterministic synthetic corpus generation.
//!
//! The paper's system pulled ENZYME, EMBL and Swiss-Prot over FTP; this
//! reproduction fabricates structurally faithful corpora instead (the
//! substitution is argued in DESIGN.md §2). Generation is seeded and fully
//! deterministic, so benchmarks are repeatable, and the generator *plants*
//! the cross-database connective tissue the paper's queries depend on,
//! returning the ground truth alongside the data:
//!
//! * EMBL entries carry `/EC_number="…"` qualifiers pointing at generated
//!   ENZYME entries — the join of Figures 10–11;
//! * ENZYME `DR` lines reference generated Swiss-Prot accessions;
//! * a configurable fraction of EMBL and Swiss-Prot entries mention the
//!   cell-division-cycle keyword `cdc6` — the search of Figure 8;
//! * a configurable fraction of ENZYME catalytic activities mention
//!   `ketone` — the sub-tree search of Figures 7 and 9.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::embl::{EmblEntry, Feature, Qualifier};
use crate::enzyme::{DiseaseRef, EnzymeEntry, SwissProtRef};
use crate::swissprot::{DbXref, SwissProtEntry};

/// Parameters for corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of ENZYME entries.
    pub enzymes: usize,
    /// Number of EMBL entries.
    pub embl: usize,
    /// Number of Swiss-Prot entries.
    pub swissprot: usize,
    /// RNG seed; equal specs generate equal corpora.
    pub seed: u64,
    /// Fraction of EMBL / Swiss-Prot entries mentioning `cdc6`.
    pub keyword_rate: f64,
    /// Fraction of EMBL entries with an `EC_number` qualifier linking to a
    /// generated enzyme.
    pub link_rate: f64,
    /// Fraction of ENZYME entries whose catalytic activity mentions
    /// `ketone`.
    pub ketone_rate: f64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            enzymes: 100,
            embl: 100,
            swissprot: 100,
            seed: 42,
            keyword_rate: 0.05,
            link_rate: 0.3,
            ketone_rate: 0.1,
        }
    }
}

impl CorpusSpec {
    /// A spec sized by a single scale factor: `scale` entries per database.
    pub fn sized(scale: usize) -> Self {
        CorpusSpec {
            enzymes: scale,
            embl: scale,
            swissprot: scale,
            ..CorpusSpec::default()
        }
    }
}

/// A generated corpus plus the ground truth of what was planted.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Generated ENZYME entries.
    pub enzymes: Vec<EnzymeEntry>,
    /// Generated EMBL entries.
    pub embl: Vec<EmblEntry>,
    /// Generated Swiss-Prot entries.
    pub swissprot: Vec<SwissProtEntry>,
    /// Planted `(EMBL accession, EC number)` join links (Figure 11 truth).
    pub planted_ec_links: Vec<(String, String)>,
    /// EMBL accessions mentioning `cdc6` (Figure 8 truth).
    pub cdc6_embl: Vec<String>,
    /// Swiss-Prot accessions mentioning `cdc6` (Figure 8 truth).
    pub cdc6_swissprot: Vec<String>,
    /// EC numbers whose catalytic activity mentions `ketone` (Fig 9 truth).
    pub ketone_enzymes: Vec<String>,
}

const NAME_PREFIXES: &[&str] = &[
    "Peptidylglycine",
    "Alcohol",
    "Glutamate",
    "Pyruvate",
    "Hexokinase-like",
    "Carbonic",
    "Aspartate",
    "Tyrosine",
    "Glycerol",
    "Succinate",
];
const NAME_ROOTS: &[&str] = &[
    "monooxygenase",
    "dehydrogenase",
    "kinase",
    "anhydrase",
    "transaminase",
    "synthase",
    "carboxylase",
    "isomerase",
    "reductase",
    "hydrolase",
];
const COFACTORS: &[&str] = &[
    "Copper",
    "Zinc",
    "Magnesium",
    "Iron",
    "FAD",
    "NAD(+)",
    "Biotin",
];
const SUBSTRATES: &[&str] = &[
    "glycine",
    "ascorbate",
    "pyruvate",
    "oxaloacetate",
    "glutamate",
    "glucose",
    "ATP",
    "acetyl-CoA",
    "fumarate",
];
const ORGANISMS: &[&str] = &[
    "Drosophila melanogaster",
    "Caenorhabditis elegans",
    "Bos taurus",
    "Homo sapiens",
    "Xenopus laevis",
    "Rattus norvegicus",
    "Saccharomyces cerevisiae",
];
const GENE_STEMS: &[&str] = &["pam", "adh", "cdk", "rad", "sod", "tub", "act", "hsp"];
const COMMENT_TEXTS: &[&str] = &[
    "Peptides with a neutral residue in the penultimate position are the best substrates",
    "The enzyme is inhibited by high substrate concentrations",
    "Activity is strongly dependent on pH and temperature",
    "This enzyme participates in the core metabolic pathway",
    "Requires a bound metal ion for catalytic activity",
];
const DISEASES: &[&str] = &[
    "Orotic aciduria",
    "Alkaptonuria",
    "Phenylketonuria",
    "Galactosemia",
    "Homocystinuria",
];

struct Gen {
    rng: StdRng,
}

impl Gen {
    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    fn sequence(&mut self, alphabet: &[u8], len: usize) -> String {
        (0..len)
            .map(|_| alphabet[self.rng.gen_range(0..alphabet.len())] as char)
            .collect()
    }
}

impl Corpus {
    /// Generates a corpus from `spec`. Deterministic in the seed.
    pub fn generate(spec: &CorpusSpec) -> Corpus {
        let mut g = Gen {
            rng: StdRng::seed_from_u64(spec.seed),
        };

        // Accession pools are decided up front so the three databases can
        // reference each other regardless of generation order.
        let sp_accessions: Vec<String> = (0..spec.swissprot)
            .map(|i| format!("P{:05}", i + 1))
            .collect();
        let embl_accessions: Vec<String> =
            (0..spec.embl).map(|i| format!("AB{:06}", i + 1)).collect();
        let ec_numbers: Vec<String> = (0..spec.enzymes)
            .map(|i| {
                format!(
                    "{}.{}.{}.{}",
                    i % 6 + 1,
                    i / 6 % 20 + 1,
                    i / 120 % 30 + 1,
                    i + 1
                )
            })
            .collect();

        let mut ketone_enzymes = Vec::new();
        let enzymes: Vec<EnzymeEntry> = (0..spec.enzymes)
            .map(|i| {
                let ec = ec_numbers[i].clone();
                let name = format!("{} {}.", g.pick(NAME_PREFIXES), g.pick(NAME_ROOTS));
                let with_ketone = g.chance(spec.ketone_rate);
                if with_ketone {
                    ketone_enzymes.push(ec.clone());
                }
                let product = if with_ketone {
                    "the corresponding ketone".to_string()
                } else {
                    format!("2-oxo-{}", g.pick(SUBSTRATES))
                };
                let activity = format!(
                    "{} + {} = {} + H(2)O",
                    capitalize(g.pick(SUBSTRATES)),
                    g.pick(SUBSTRATES),
                    product,
                );
                let n_refs = g.rng.gen_range(0..4usize).min(sp_accessions.len());
                let swissprot_refs = (0..n_refs)
                    .map(|_| {
                        let idx = g.rng.gen_range(0..sp_accessions.len());
                        SwissProtRef {
                            accession: sp_accessions[idx].clone(),
                            name: format!(
                                "{}_{}",
                                g.pick(GENE_STEMS).to_ascii_uppercase(),
                                organism_code(g.pick(ORGANISMS))
                            ),
                        }
                    })
                    .collect();
                EnzymeEntry {
                    id: ec,
                    descriptions: vec![name],
                    alternate_names: if g.chance(0.5) {
                        vec![format!("{} {}", g.pick(NAME_PREFIXES), g.pick(NAME_ROOTS))]
                    } else {
                        Vec::new()
                    },
                    catalytic_activities: vec![activity],
                    cofactors: if g.chance(0.7) {
                        vec![g.pick(COFACTORS).to_string()]
                    } else {
                        Vec::new()
                    },
                    comments: if g.chance(0.6) {
                        vec![format!("{}.", g.pick(COMMENT_TEXTS))]
                    } else {
                        Vec::new()
                    },
                    prosite_refs: if g.chance(0.4) {
                        vec![format!("PDOC{:05}", g.rng.gen_range(1..99999))]
                    } else {
                        Vec::new()
                    },
                    swissprot_refs,
                    diseases: if g.chance(0.15) {
                        vec![DiseaseRef {
                            description: g.pick(DISEASES).to_string(),
                            mim_id: format!("{}", g.rng.gen_range(100000..300000)),
                        }]
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect();

        let mut planted_ec_links = Vec::new();
        let mut cdc6_embl = Vec::new();
        let embl: Vec<EmblEntry> = (0..spec.embl)
            .map(|i| {
                let acc = embl_accessions[i].clone();
                let organism = g.pick(ORGANISMS).to_string();
                let with_cdc6 = g.chance(spec.keyword_rate);
                let gene = if with_cdc6 {
                    cdc6_embl.push(acc.clone());
                    "cdc6".to_string()
                } else {
                    format!("{}{}", g.pick(GENE_STEMS), g.rng.gen_range(1..9))
                };
                let description = if with_cdc6 {
                    format!("{organism} mRNA for cell division cycle protein cdc6.")
                } else {
                    format!(
                        "{organism} mRNA for {} {}.",
                        g.pick(NAME_PREFIXES),
                        g.pick(NAME_ROOTS)
                    )
                };
                let mut qualifiers = vec![Qualifier {
                    name: "gene".into(),
                    value: gene.clone(),
                }];
                if !enzymes.is_empty() && g.chance(spec.link_rate) {
                    let ec = ec_numbers[g.rng.gen_range(0..ec_numbers.len())].clone();
                    planted_ec_links.push((acc.clone(), ec.clone()));
                    qualifiers.push(Qualifier {
                        name: "EC_number".into(),
                        value: ec,
                    });
                }
                qualifiers.push(Qualifier {
                    name: "product".into(),
                    value: if with_cdc6 {
                        "cell division control protein".into()
                    } else {
                        format!("{} protein", g.pick(NAME_ROOTS))
                    },
                });
                let seq_len = g.rng.gen_range(60..600usize);
                let mut keywords = vec!["mRNA".to_string()];
                if with_cdc6 {
                    keywords.push("cdc6".into());
                    keywords.push("cell cycle".into());
                }
                EmblEntry {
                    accession: acc,
                    molecule: "mRNA".into(),
                    division: "INV".into(),
                    description,
                    keywords,
                    organism,
                    features: vec![
                        Feature {
                            key: "source".into(),
                            location: format!("1..{seq_len}"),
                            qualifiers: Vec::new(),
                        },
                        Feature {
                            key: "CDS".into(),
                            location: format!("1..{seq_len}"),
                            qualifiers,
                        },
                    ],
                    sequence: g.sequence(b"acgt", seq_len),
                }
            })
            .collect();

        let mut cdc6_swissprot = Vec::new();
        let swissprot: Vec<SwissProtEntry> = (0..spec.swissprot)
            .map(|i| {
                let acc = sp_accessions[i].clone();
                let organism = g.pick(ORGANISMS).to_string();
                let with_cdc6 = g.chance(spec.keyword_rate);
                let gene = if with_cdc6 {
                    cdc6_swissprot.push(acc.clone());
                    "CDC6".to_string()
                } else {
                    format!(
                        "{}{}",
                        g.pick(GENE_STEMS).to_ascii_uppercase(),
                        g.rng.gen_range(1..9)
                    )
                };
                let description = if with_cdc6 {
                    "Cell division control protein cdc6 homolog.".to_string()
                } else {
                    format!(
                        "{} {} precursor.",
                        g.pick(NAME_PREFIXES),
                        g.pick(NAME_ROOTS)
                    )
                };
                let mut keywords = vec![capitalize(g.pick(NAME_ROOTS))];
                if with_cdc6 {
                    keywords.push("cdc6".into());
                    keywords.push("Cell cycle".into());
                }
                let mut xrefs = Vec::new();
                if !embl_accessions.is_empty() && g.chance(0.5) {
                    xrefs.push(DbXref {
                        database: "EMBL".into(),
                        id: embl_accessions[g.rng.gen_range(0..embl_accessions.len())].clone(),
                    });
                }
                if g.chance(0.3) {
                    xrefs.push(DbXref {
                        database: "PROSITE".into(),
                        id: format!("PDOC{:05}", g.rng.gen_range(1..99999)),
                    });
                }
                let seq_len = g.rng.gen_range(50..400usize);
                SwissProtEntry {
                    name: format!("{}_{}", gene.to_ascii_uppercase(), organism_code(&organism)),
                    accession: acc,
                    description,
                    gene,
                    organism,
                    keywords,
                    xrefs,
                    sequence: g.sequence(b"ACDEFGHIKLMNPQRSTVWY", seq_len),
                }
            })
            .collect();

        Corpus {
            enzymes,
            embl,
            swissprot,
            planted_ec_links,
            cdc6_embl,
            cdc6_swissprot,
            ketone_enzymes,
        }
    }

    /// The corpus's ENZYME database as one flat file.
    pub fn enzyme_flat(&self) -> String {
        self.enzymes.iter().map(EnzymeEntry::to_flat).collect()
    }

    /// The corpus's EMBL database as one flat file.
    pub fn embl_flat(&self) -> String {
        self.embl.iter().map(EmblEntry::to_flat).collect()
    }

    /// The corpus's Swiss-Prot database as one flat file.
    pub fn swissprot_flat(&self) -> String {
        self.swissprot.iter().map(SwissProtEntry::to_flat).collect()
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// The five-letter organism suffix used in entry names (e.g. `BOVIN`).
fn organism_code(organism: &str) -> String {
    let species = organism.split_whitespace().nth(1).unwrap_or(organism);
    species
        .chars()
        .take(5)
        .collect::<String>()
        .to_ascii_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embl::parse_embl_file;
    use crate::enzyme::parse_enzyme_file;
    use crate::swissprot::parse_swissprot_file;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::default();
        let a = Corpus::generate(&spec);
        let b = Corpus::generate(&spec);
        assert_eq!(a.enzymes, b.enzymes);
        assert_eq!(a.embl, b.embl);
        assert_eq!(a.swissprot, b.swissprot);
        assert_eq!(a.planted_ec_links, b.planted_ec_links);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&CorpusSpec {
            seed: 1,
            ..CorpusSpec::default()
        });
        let b = Corpus::generate(&CorpusSpec {
            seed: 2,
            ..CorpusSpec::default()
        });
        assert_ne!(a.embl, b.embl);
    }

    #[test]
    fn generated_flat_files_reparse() {
        let corpus = Corpus::generate(&CorpusSpec::sized(50));
        let enzymes = parse_enzyme_file(&corpus.enzyme_flat()).unwrap();
        assert_eq!(enzymes, corpus.enzymes);
        let embl = parse_embl_file(&corpus.embl_flat()).unwrap();
        assert_eq!(embl, corpus.embl);
        let sp = parse_swissprot_file(&corpus.swissprot_flat()).unwrap();
        assert_eq!(sp, corpus.swissprot);
    }

    #[test]
    fn planted_links_point_at_real_entries() {
        let corpus = Corpus::generate(&CorpusSpec::default());
        assert!(!corpus.planted_ec_links.is_empty());
        for (acc, ec) in &corpus.planted_ec_links {
            assert!(corpus.embl.iter().any(|e| &e.accession == acc));
            assert!(corpus.enzymes.iter().any(|e| &e.id == ec));
            // The EC number really is in a qualifier of that entry.
            let entry = corpus.embl.iter().find(|e| &e.accession == acc).unwrap();
            assert!(entry.features.iter().any(|f| f
                .qualifiers
                .iter()
                .any(|q| q.name == "EC_number" && &q.value == ec)));
        }
    }

    #[test]
    fn cdc6_truth_matches_content() {
        let spec = CorpusSpec {
            keyword_rate: 0.3,
            ..CorpusSpec::default()
        };
        let corpus = Corpus::generate(&spec);
        assert!(!corpus.cdc6_embl.is_empty());
        for acc in &corpus.cdc6_embl {
            let e = corpus.embl.iter().find(|e| &e.accession == acc).unwrap();
            assert!(e.description.contains("cdc6"));
        }
        // And the complement: unmarked entries never mention cdc6.
        for e in &corpus.embl {
            if !corpus.cdc6_embl.contains(&e.accession) {
                assert!(!e.description.contains("cdc6"), "{}", e.accession);
            }
        }
        for acc in &corpus.cdc6_swissprot {
            let e = corpus
                .swissprot
                .iter()
                .find(|s| &s.accession == acc)
                .unwrap();
            assert!(e.description.to_lowercase().contains("cdc6"));
        }
    }

    #[test]
    fn ketone_truth_matches_content() {
        let corpus = Corpus::generate(&CorpusSpec {
            ketone_rate: 0.5,
            ..CorpusSpec::default()
        });
        assert!(!corpus.ketone_enzymes.is_empty());
        for ec in &corpus.ketone_enzymes {
            let e = corpus.enzymes.iter().find(|e| &e.id == ec).unwrap();
            assert!(e.catalytic_activities.iter().any(|a| a.contains("ketone")));
        }
    }

    #[test]
    fn ec_numbers_are_unique() {
        let corpus = Corpus::generate(&CorpusSpec::sized(500));
        let mut ids: Vec<&String> = corpus.enzymes.iter().map(|e| &e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let spec = CorpusSpec {
            enzymes: 1000,
            embl: 1000,
            swissprot: 1000,
            keyword_rate: 0.1,
            link_rate: 0.5,
            ..CorpusSpec::default()
        };
        let corpus = Corpus::generate(&spec);
        let kw = corpus.cdc6_embl.len() as f64 / 1000.0;
        assert!((0.05..0.2).contains(&kw), "keyword rate {kw}");
        let links = corpus.planted_ec_links.len() as f64 / 1000.0;
        assert!((0.4..0.6).contains(&links), "link rate {links}");
    }

    #[test]
    fn sequences_use_proper_alphabets() {
        let corpus = Corpus::generate(&CorpusSpec::sized(20));
        for e in &corpus.embl {
            assert!(e.sequence.chars().all(|c| "acgt".contains(c)));
        }
        for s in &corpus.swissprot {
            assert!(s.sequence.chars().all(|c| c.is_ascii_uppercase()));
        }
    }
}
