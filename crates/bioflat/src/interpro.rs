//! An INTERPRO-style XML databank (paper §2.1: "several public domain and
//! proprietary XML databanks such as the INTERPRO databank are already in
//! existence").
//!
//! Unlike ENZYME/EMBL/Swiss-Prot, InterPro distributes as XML, so the
//! record model here has no flat-file form: the Data Hounds ingest these
//! entries through the XML-source path. The generator plants member links
//! to Swiss-Prot accessions so cross-databank joins have ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A member-database signature of an InterPro entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Source database, e.g. `PROSITE` or `PFAM`.
    pub database: String,
    /// Signature accession, e.g. `PS00001`.
    pub accession: String,
}

/// A GO-term annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoTerm {
    /// GO identifier, e.g. `GO:0005524`.
    pub id: String,
    /// Ontology category: `molecular_function`, `biological_process` or
    /// `cellular_component`.
    pub category: String,
    /// Human-readable term name.
    pub name: String,
}

/// One InterPro entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterProEntry {
    /// Accession, e.g. `IPR000001`.
    pub id: String,
    /// Short name.
    pub name: String,
    /// Entry type: `Family`, `Domain` or `Repeat`.
    pub entry_type: String,
    /// The abstract paragraph.
    pub abstract_text: String,
    /// Member-database signatures.
    pub signatures: Vec<Signature>,
    /// GO annotations.
    pub go_terms: Vec<GoTerm>,
    /// Matched Swiss-Prot proteins (planted join links).
    pub protein_matches: Vec<String>,
}

const FAMILY_STEMS: &[&str] = &[
    "Kringle",
    "Zinc finger",
    "Homeobox",
    "Kinase",
    "Immunoglobulin",
    "Lectin",
    "Globin",
    "Cytochrome",
    "Helicase",
    "Protease",
];
const TYPE_POOL: &[&str] = &["Family", "Domain", "Repeat"];
const GO_FUNCTIONS: &[(&str, &str, &str)] = &[
    ("GO:0005524", "molecular_function", "ATP binding"),
    ("GO:0003677", "molecular_function", "DNA binding"),
    (
        "GO:0016491",
        "molecular_function",
        "oxidoreductase activity",
    ),
    ("GO:0006508", "biological_process", "proteolysis"),
    ("GO:0007049", "biological_process", "cell cycle"),
    ("GO:0005634", "cellular_component", "nucleus"),
];
const ABSTRACT_SENTENCES: &[&str] = &[
    "This entry represents a conserved structural module found across kingdoms",
    "Members of this group share a catalytic core with invariant residues",
    "The domain mediates protein-protein interactions during signalling",
    "Proteins containing this region participate in the cell cycle",
];

/// Generates `count` deterministic InterPro entries, planting
/// `protein_matches` links into `swissprot_accessions` when provided.
pub fn generate_interpro(
    count: usize,
    seed: u64,
    swissprot_accessions: &[String],
) -> Vec<InterProEntry> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1a7e_99a0);
    (0..count)
        .map(|i| {
            let stem = FAMILY_STEMS[rng.gen_range(0..FAMILY_STEMS.len())];
            let n_sig = rng.gen_range(1..4usize);
            let signatures = (0..n_sig)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        Signature {
                            database: "PROSITE".into(),
                            accession: format!("PS{:05}", rng.gen_range(1..99999)),
                        }
                    } else {
                        Signature {
                            database: "PFAM".into(),
                            accession: format!("PF{:05}", rng.gen_range(1..99999)),
                        }
                    }
                })
                .collect();
            let n_go = rng.gen_range(0..3usize);
            let go_terms = (0..n_go)
                .map(|_| {
                    let (id, cat, name) = GO_FUNCTIONS[rng.gen_range(0..GO_FUNCTIONS.len())];
                    GoTerm {
                        id: id.into(),
                        category: cat.into(),
                        name: name.into(),
                    }
                })
                .collect();
            let n_matches = if swissprot_accessions.is_empty() {
                0
            } else {
                rng.gen_range(0..4usize)
            };
            let protein_matches = (0..n_matches)
                .map(|_| swissprot_accessions[rng.gen_range(0..swissprot_accessions.len())].clone())
                .collect();
            InterProEntry {
                id: format!("IPR{:06}", i + 1),
                name: format!("{stem}_{}", i + 1),
                entry_type: TYPE_POOL[rng.gen_range(0..TYPE_POOL.len())].to_string(),
                abstract_text: format!(
                    "{}. {}.",
                    ABSTRACT_SENTENCES[rng.gen_range(0..ABSTRACT_SENTENCES.len())],
                    ABSTRACT_SENTENCES[rng.gen_range(0..ABSTRACT_SENTENCES.len())]
                ),
                signatures,
                go_terms,
                protein_matches,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_unique() {
        let accs = vec!["P00001".to_string(), "P00002".to_string()];
        let a = generate_interpro(50, 9, &accs);
        let b = generate_interpro(50, 9, &accs);
        assert_eq!(a, b);
        let mut ids: Vec<&String> = a.iter().map(|e| &e.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn planted_matches_come_from_the_pool() {
        let accs = vec!["P00001".to_string(), "P00002".to_string()];
        let entries = generate_interpro(100, 1, &accs);
        assert!(entries.iter().any(|e| !e.protein_matches.is_empty()));
        for e in &entries {
            for m in &e.protein_matches {
                assert!(accs.contains(m));
            }
        }
    }

    #[test]
    fn no_pool_means_no_matches() {
        let entries = generate_interpro(20, 1, &[]);
        assert!(entries.iter().all(|e| e.protein_matches.is_empty()));
    }

    #[test]
    fn entries_have_at_least_one_signature() {
        for e in generate_interpro(50, 3, &[]) {
            assert!(!e.signatures.is_empty());
            assert!(["Family", "Domain", "Repeat"].contains(&e.entry_type.as_str()));
        }
    }
}
