//! The shared line discipline of the flat-file formats.
//!
//! Figure 3 of the paper: characters 1–2 carry a two-character line code,
//! characters 3–5 are blank, and the data occupies characters 6 up to 78.
//! Every entry begins with an `ID` line and ends with a `//` terminator
//! (Figure 4). This module provides the split/join primitives the
//! per-format parsers and writers build on.

/// Maximum width of the data portion of a line (characters 6..=78).
pub const DATA_WIDTH: usize = 73;

/// A raw flat-file line: its two-character code and its data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodedLine<'a> {
    /// The two-character line code (e.g. `ID`, `DE`, `//`).
    pub code: &'a str,
    /// The data portion, already stripped of the code and padding.
    pub data: &'a str,
}

/// Splits one physical line into code and data per Figure 3.
///
/// Returns `None` for blank lines. The terminator `//` has empty data.
pub fn split_line(line: &str) -> Option<CodedLine<'_>> {
    let trimmed_end = line.trim_end();
    if trimmed_end.is_empty() {
        return None;
    }
    if trimmed_end == "//" {
        return Some(CodedLine {
            code: "//",
            data: "",
        });
    }
    let code = trimmed_end.get(0..2).unwrap_or(trimmed_end);
    let data = trimmed_end.get(5..).unwrap_or("");
    Some(CodedLine { code, data })
}

/// Formats one logical line per Figure 3: `CC···data`.
pub fn format_line(code: &str, data: &str) -> String {
    if code == "//" {
        return "//".to_string();
    }
    if data.is_empty() {
        return code.to_string();
    }
    format!("{code:<5}{data}")
}

/// Wraps `data` into as many Figure 3 lines as needed, breaking at spaces
/// so no data portion exceeds [`DATA_WIDTH`].
pub fn wrap_lines(code: &str, data: &str, out: &mut String) {
    if data.len() <= DATA_WIDTH {
        out.push_str(&format_line(code, data));
        out.push('\n');
        return;
    }
    let mut rest = data;
    while !rest.is_empty() {
        if rest.len() <= DATA_WIDTH {
            out.push_str(&format_line(code, rest));
            out.push('\n');
            break;
        }
        // Break at the last space within the width; hard-break if none.
        let cut = rest[..=DATA_WIDTH.min(rest.len() - 1)]
            .rfind(' ')
            .filter(|c| *c > 0)
            .unwrap_or(DATA_WIDTH);
        let (head, tail) = rest.split_at(cut);
        out.push_str(&format_line(code, head.trim_end()));
        out.push('\n');
        rest = tail.trim_start();
    }
}

/// Splits a multi-entry flat file into entry chunks at `//` terminators.
/// Each returned chunk contains the entry's lines *without* the terminator.
pub fn split_entries(input: &str) -> Vec<Vec<&str>> {
    let mut entries = Vec::new();
    let mut current: Vec<&str> = Vec::new();
    for line in input.lines() {
        if line.trim_end() == "//" {
            if !current.is_empty() {
                entries.push(std::mem::take(&mut current));
            }
        } else if !line.trim().is_empty() {
            current.push(line);
        }
    }
    // A trailing unterminated entry is kept: truncated downloads should not
    // silently drop data, the per-entry parser reports the real problem.
    if !current.is_empty() {
        entries.push(current);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_line_extracts_code_and_data() {
        let l = split_line("ID   1.14.17.3").unwrap();
        assert_eq!(l.code, "ID");
        assert_eq!(l.data, "1.14.17.3");
        let de = split_line("DE   Peptidylglycine monooxygenase.").unwrap();
        assert_eq!(de.code, "DE");
        assert_eq!(de.data, "Peptidylglycine monooxygenase.");
    }

    #[test]
    fn split_line_terminator_and_blank() {
        assert_eq!(split_line("//").unwrap().code, "//");
        assert_eq!(split_line("//  ").unwrap().code, "//");
        assert!(split_line("").is_none());
        assert!(split_line("   ").is_none());
    }

    #[test]
    fn split_line_short_lines() {
        // A bare code with no data.
        let l = split_line("CC").unwrap();
        assert_eq!(l.code, "CC");
        assert_eq!(l.data, "");
    }

    #[test]
    fn format_line_round_trips() {
        for (code, data) in [("ID", "1.1.1.1"), ("DE", "Some name."), ("CC", "")] {
            let line = format_line(code, data);
            let parsed = split_line(&line).unwrap();
            assert_eq!(parsed.code, code);
            assert_eq!(parsed.data, data);
        }
        assert_eq!(format_line("//", ""), "//");
    }

    #[test]
    fn wrap_lines_respects_width() {
        let long = "word ".repeat(40);
        let mut out = String::new();
        wrap_lines("CA", long.trim_end(), &mut out);
        for line in out.lines() {
            assert!(line.len() <= 5 + DATA_WIDTH, "{line:?} too long");
            assert!(line.starts_with("CA   "));
        }
        // Re-joining the data restores the original text.
        let rejoined: Vec<&str> = out.lines().map(|l| split_line(l).unwrap().data).collect();
        assert_eq!(rejoined.join(" "), long.trim_end());
    }

    #[test]
    fn wrap_lines_handles_unbreakable_runs() {
        let unbreakable = "x".repeat(200);
        let mut out = String::new();
        wrap_lines("SQ", &unbreakable, &mut out);
        let total: String = out.lines().map(|l| split_line(l).unwrap().data).collect();
        assert_eq!(total, unbreakable);
    }

    #[test]
    fn split_entries_at_terminators() {
        let input = "ID   a\nDE   x\n//\nID   b\n//\n";
        let entries = split_entries(input);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0], vec!["ID   a", "DE   x"]);
        assert_eq!(entries[1], vec!["ID   b"]);
    }

    #[test]
    fn split_entries_keeps_unterminated_tail() {
        let entries = split_entries("ID   a\n//\nID   trailing");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1], vec!["ID   trailing"]);
    }

    #[test]
    fn split_entries_skips_blank_lines() {
        let entries = split_entries("\nID   a\n\nDE   x\n//\n\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].len(), 2);
    }
}
