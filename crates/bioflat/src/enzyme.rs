//! The ENZYME database flat format (paper §2.1, Figures 2–4).
//!
//! Each entry describes one characterized enzyme with an EC number. The
//! paper's Figure 4 enumerates the line types; this module parses and
//! writes all of them, treating each `CA` line as its own catalytic
//! activity fragment and folding `CC` continuation lines into the comment
//! opened by the preceding `-!-` marker — exactly the element grouping
//! shown in the Figure 6 XML.

use crate::error::{FlatError, FlatResult};
use crate::line::{split_entries, split_line, wrap_lines, CodedLine};

const FORMAT: &str = "ENZYME";

/// A cross-reference to Swiss-Prot (`DR` line item).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwissProtRef {
    /// The Swiss-Prot accession number, e.g. `P10731`.
    pub accession: String,
    /// The entry name, e.g. `AMD_BOVIN`.
    pub name: String,
}

/// A disease association (`DI` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiseaseRef {
    /// Disease description text.
    pub description: String,
    /// The MIM catalogue number of the disease.
    pub mim_id: String,
}

/// One entry of the ENZYME database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnzymeEntry {
    /// The EC number (`ID` line), e.g. `1.14.17.3`.
    pub id: String,
    /// Recommended names (`DE`; at least one in a valid entry).
    pub descriptions: Vec<String>,
    /// Alternative names (`AN`).
    pub alternate_names: Vec<String>,
    /// Catalytic activity fragments (`CA`; one per line, per Figure 6).
    pub catalytic_activities: Vec<String>,
    /// Cofactors (`CF`; semicolon-separated on one line).
    pub cofactors: Vec<String>,
    /// Comments (`CC`; `-!-` starts a comment, continuations fold in).
    pub comments: Vec<String>,
    /// PROSITE accession numbers (`PR` lines).
    pub prosite_refs: Vec<String>,
    /// Swiss-Prot cross-references (`DR` lines).
    pub swissprot_refs: Vec<SwissProtRef>,
    /// Disease associations (`DI` lines).
    pub diseases: Vec<DiseaseRef>,
}

impl EnzymeEntry {
    /// Parses one entry from its lines (terminator excluded).
    pub fn parse_lines(lines: &[&str]) -> FlatResult<EnzymeEntry> {
        let mut entry = EnzymeEntry::default();
        for (i, raw) in lines.iter().enumerate() {
            let Some(CodedLine { code, data }) = split_line(raw) else {
                continue;
            };
            let lineno = i + 1;
            match code {
                "ID" => {
                    if !entry.id.is_empty() {
                        return Err(FlatError::at(FORMAT, lineno, "duplicate ID line"));
                    }
                    entry.id = data.trim().to_string();
                }
                "DE" => entry.descriptions.push(data.trim().to_string()),
                "AN" => entry.alternate_names.push(trim_period(data)),
                "CA" => entry.catalytic_activities.push(data.trim().to_string()),
                "CF" => {
                    for cf in data.split(';') {
                        let cf = trim_period(cf);
                        if !cf.is_empty() {
                            entry.cofactors.push(cf);
                        }
                    }
                }
                "CC" => {
                    let text = data.trim();
                    if let Some(fresh) = text.strip_prefix("-!-") {
                        entry.comments.push(fresh.trim().to_string());
                    } else if let Some(last) = entry.comments.last_mut() {
                        last.push(' ');
                        last.push_str(text);
                    } else {
                        return Err(FlatError::at(
                            FORMAT,
                            lineno,
                            "CC continuation before any '-!-' comment",
                        ));
                    }
                }
                "PR" => {
                    // `PROSITE; PDOC00080;`
                    let mut parts = data.split(';').map(str::trim);
                    match (parts.next(), parts.next()) {
                        (Some("PROSITE"), Some(acc)) if !acc.is_empty() => {
                            entry.prosite_refs.push(acc.to_string());
                        }
                        _ => {
                            return Err(FlatError::at(
                                FORMAT,
                                lineno,
                                format!("malformed PR line {data:?}"),
                            ))
                        }
                    }
                }
                "DR" => {
                    // `P10731, AMD_BOVIN ;  P19021, AMD_HUMAN ;`
                    for item in data.split(';') {
                        let item = item.trim();
                        if item.is_empty() {
                            continue;
                        }
                        let (acc, name) = item.split_once(',').ok_or_else(|| {
                            FlatError::at(FORMAT, lineno, format!("malformed DR item {item:?}"))
                        })?;
                        entry.swissprot_refs.push(SwissProtRef {
                            accession: acc.trim().to_string(),
                            name: name.trim().to_string(),
                        });
                    }
                }
                "DI" => {
                    // `Peptidylglycine deficiency; MIM:123456.`
                    let text = trim_period(data);
                    let (desc, mim) = text.rsplit_once(';').ok_or_else(|| {
                        FlatError::at(FORMAT, lineno, format!("malformed DI line {data:?}"))
                    })?;
                    let mim_id = mim
                        .trim()
                        .strip_prefix("MIM:")
                        .ok_or_else(|| FlatError::at(FORMAT, lineno, "DI line missing MIM: tag"))?
                        .to_string();
                    entry.diseases.push(DiseaseRef {
                        description: desc.trim().to_string(),
                        mim_id,
                    });
                }
                other => {
                    return Err(FlatError::at(
                        FORMAT,
                        lineno,
                        format!("unknown line code {other:?}"),
                    ));
                }
            }
        }
        if entry.id.is_empty() {
            return Err(FlatError::new(FORMAT, "entry has no ID line"));
        }
        if entry.descriptions.is_empty() {
            return Err(FlatError::new(
                FORMAT,
                format!("entry {} has no DE line", entry.id),
            ));
        }
        Ok(entry)
    }

    /// Writes the entry back to flat format, including the terminator.
    pub fn to_flat(&self) -> String {
        let mut out = String::new();
        wrap_lines("ID", &self.id, &mut out);
        for de in &self.descriptions {
            wrap_lines("DE", de, &mut out);
        }
        for an in &self.alternate_names {
            wrap_lines("AN", &format!("{an}."), &mut out);
        }
        for ca in &self.catalytic_activities {
            // Each activity fragment stays on its own CA line (Figure 6
            // produces one element per line), so no wrapping here.
            out.push_str(&crate::line::format_line("CA", ca));
            out.push('\n');
        }
        if !self.cofactors.is_empty() {
            let joined = self
                .cofactors
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join("; ");
            wrap_lines("CF", &format!("{joined}."), &mut out);
        }
        for comment in &self.comments {
            // First line carries the -!- marker; continuations are wrapped.
            let full = format!("-!- {comment}");
            wrap_lines("CC", &full, &mut out);
        }
        for pr in &self.prosite_refs {
            wrap_lines("PR", &format!("PROSITE; {pr};"), &mut out);
        }
        if !self.swissprot_refs.is_empty() {
            // Two references per DR line, like the real database.
            for chunk in self.swissprot_refs.chunks(2) {
                let items = chunk
                    .iter()
                    .map(|r| format!("{}, {} ;", r.accession, r.name))
                    .collect::<Vec<_>>()
                    .join("  ");
                out.push_str(&crate::line::format_line("DR", &items));
                out.push('\n');
            }
        }
        for di in &self.diseases {
            wrap_lines(
                "DI",
                &format!("{}; MIM:{}.", di.description, di.mim_id),
                &mut out,
            );
        }
        out.push_str("//\n");
        out
    }
}

fn trim_period(s: &str) -> String {
    s.trim().trim_end_matches('.').trim_end().to_string()
}

/// Parses a whole ENZYME flat file into entries.
pub fn parse_enzyme_file(input: &str) -> FlatResult<Vec<EnzymeEntry>> {
    split_entries(input)
        .iter()
        .map(|lines| EnzymeEntry::parse_lines(lines))
        .collect()
}

/// The sample entry of the paper's Figure 2 (EC 1.14.17.3), verbatim in
/// structure. Used by the figure-regeneration harness and golden tests.
pub const FIGURE2_SAMPLE: &str = "\
ID   1.14.17.3
DE   Peptidylglycine monooxygenase.
AN   Peptidyl alpha-amidating enzyme.
AN   Peptidylglycine 2-hydroxylase.
CA   Peptidylglycine + ascorbate + O(2) = peptidyl(2-hydroxyglycine) +
CA   dehydroascorbate + H(2)O.
CF   Copper.
CC   -!- Peptidylglycines with a neutral amino acid residue in the
CC       penultimate position are the best substrates for the enzyme.
CC   -!- The enzyme also catalyzes the dismutation of the product to
CC       glyoxylate and the corresponding desglycine peptide amide.
PR   PROSITE; PDOC00080;
DR   P10731, AMD_BOVIN ;  P19021, AMD_HUMAN ;
DR   P14925, AMD_RAT ;  P08478, AMD1_XENLA ;
DR   P12890, AMD2_XENLA ;
//
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_sample() {
        let entries = parse_enzyme_file(FIGURE2_SAMPLE).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.id, "1.14.17.3");
        assert_eq!(e.descriptions, vec!["Peptidylglycine monooxygenase."]);
        assert_eq!(
            e.alternate_names,
            vec![
                "Peptidyl alpha-amidating enzyme",
                "Peptidylglycine 2-hydroxylase"
            ]
        );
        assert_eq!(e.catalytic_activities.len(), 2);
        assert_eq!(
            e.catalytic_activities[0],
            "Peptidylglycine + ascorbate + O(2) = peptidyl(2-hydroxyglycine) +"
        );
        assert_eq!(e.cofactors, vec!["Copper"]);
        assert_eq!(e.comments.len(), 2);
        assert!(e.comments[0].starts_with("Peptidylglycines with a neutral"));
        assert!(e.comments[0].ends_with("substrates for the enzyme."));
        assert_eq!(e.prosite_refs, vec!["PDOC00080"]);
        assert_eq!(e.swissprot_refs.len(), 5);
        assert_eq!(
            e.swissprot_refs[0],
            SwissProtRef {
                accession: "P10731".into(),
                name: "AMD_BOVIN".into()
            }
        );
        assert_eq!(e.swissprot_refs[4].accession, "P12890");
        assert!(e.diseases.is_empty());
    }

    #[test]
    fn round_trips_through_flat_format() {
        let entries = parse_enzyme_file(FIGURE2_SAMPLE).unwrap();
        let rewritten = entries[0].to_flat();
        let reparsed = parse_enzyme_file(&rewritten).unwrap();
        assert_eq!(entries, reparsed);
    }

    #[test]
    fn parses_diseases() {
        let text = "ID   1.2.3.4\nDE   Test enzyme.\nDI   Orotic aciduria; MIM:258900.\n//\n";
        let e = &parse_enzyme_file(text).unwrap()[0];
        assert_eq!(
            e.diseases,
            vec![DiseaseRef {
                description: "Orotic aciduria".into(),
                mim_id: "258900".into()
            }]
        );
        let rewritten = e.to_flat();
        assert_eq!(&parse_enzyme_file(&rewritten).unwrap()[0], e);
    }

    #[test]
    fn multiple_entries() {
        let text = format!("{FIGURE2_SAMPLE}ID   1.1.1.1\nDE   Alcohol dehydrogenase.\n//\n");
        let entries = parse_enzyme_file(&text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].id, "1.1.1.1");
    }

    #[test]
    fn multiple_cofactors_on_one_line() {
        let text = "ID   1.2.3.4\nDE   X.\nCF   Copper; Zinc; Magnesium.\n//\n";
        let e = &parse_enzyme_file(text).unwrap()[0];
        assert_eq!(e.cofactors, vec!["Copper", "Zinc", "Magnesium"]);
    }

    #[test]
    fn rejects_malformed_entries() {
        // Missing ID.
        assert!(parse_enzyme_file("DE   Only description.\n//\n").is_err());
        // Missing DE.
        assert!(parse_enzyme_file("ID   1.1.1.1\n//\n").is_err());
        // Duplicate ID.
        assert!(parse_enzyme_file("ID   a\nID   b\nDE   x.\n//\n").is_err());
        // Unknown code.
        assert!(parse_enzyme_file("ID   a\nDE   x.\nZZ   ?\n//\n").is_err());
        // CC continuation without an open comment.
        assert!(parse_enzyme_file("ID   a\nDE   x.\nCC       dangling\n//\n").is_err());
        // Malformed DR (no comma).
        assert!(parse_enzyme_file("ID   a\nDE   x.\nDR   P10731 AMD ;\n//\n").is_err());
        // Malformed PR.
        assert!(parse_enzyme_file("ID   a\nDE   x.\nPR   NOTPROSITE; X;\n//\n").is_err());
        // DI without MIM.
        assert!(parse_enzyme_file("ID   a\nDE   x.\nDI   Disease only.\n//\n").is_err());
    }

    #[test]
    fn long_comment_wraps_and_round_trips() {
        let entry = EnzymeEntry {
            id: "9.9.9.9".into(),
            descriptions: vec!["Test.".into()],
            comments: vec![
                "This is a very long comment that definitely will not fit on a single \
                 seventy-three character flat file line and therefore must wrap across \
                 several continuation lines to survive."
                    .into(),
            ],
            ..EnzymeEntry::default()
        };
        let flat = entry.to_flat();
        assert!(flat.lines().filter(|l| l.starts_with("CC")).count() > 1);
        let reparsed = &parse_enzyme_file(&flat).unwrap()[0];
        assert_eq!(reparsed.comments, entry.comments);
    }
}
