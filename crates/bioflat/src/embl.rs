//! The EMBL nucleotide database flat format (simplified).
//!
//! The paper's Figure 8 queries `hlx_embl.inv` (the EMBL invertebrate
//! division) and Figure 11 joins EMBL feature qualifiers of type
//! `EC number` against the ENZYME database. This module models the subset
//! of the EMBL flat format those queries touch: identification, accession,
//! description, keywords, organism, the feature table with qualifiers, and
//! the sequence block — which is also what exercises the paper's
//! sequence/non-sequence storage distinction (§2.2).

use crate::error::{FlatError, FlatResult};
use crate::line::wrap_lines;

const FORMAT: &str = "EMBL";

/// One feature-table qualifier, e.g. `/EC_number="1.14.17.3"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qualifier {
    /// Qualifier name without the leading slash, e.g. `EC_number`.
    pub name: String,
    /// Qualifier value with quotes stripped.
    pub value: String,
}

/// One feature-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Feature key, e.g. `CDS` or `gene`.
    pub key: String,
    /// Location string, e.g. `1..1020`.
    pub location: String,
    /// Qualifiers in order.
    pub qualifiers: Vec<Qualifier>,
}

/// One EMBL entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmblEntry {
    /// Primary accession number (`ID`/`AC`), e.g. `AB000001`.
    pub accession: String,
    /// Molecule type, e.g. `mRNA`.
    pub molecule: String,
    /// Taxonomic division code, e.g. `INV`.
    pub division: String,
    /// Description (`DE`).
    pub description: String,
    /// Keywords (`KW`).
    pub keywords: Vec<String>,
    /// Organism species (`OS`).
    pub organism: String,
    /// Feature table (`FT`).
    pub features: Vec<Feature>,
    /// Nucleotide sequence (`SQ` block), lowercase ACGT.
    pub sequence: String,
}

impl EmblEntry {
    /// Parses one entry from its lines (terminator excluded).
    pub fn parse_lines(lines: &[&str]) -> FlatResult<EmblEntry> {
        let mut entry = EmblEntry::default();
        let mut in_sequence = false;
        for (i, raw) in lines.iter().enumerate() {
            let lineno = i + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            if in_sequence {
                // Sequence lines are indented data: letters grouped in
                // blocks, optionally followed by a position number.
                let seq: String = line
                    .chars()
                    .filter(|c| c.is_ascii_alphabetic())
                    .map(|c| c.to_ascii_lowercase())
                    .collect();
                entry.sequence.push_str(&seq);
                continue;
            }
            let code = line.get(0..2).unwrap_or(line);
            let data = line.get(5..).unwrap_or("").trim_end();
            match code {
                "ID" => {
                    // `AB000001; SV 1; linear; mRNA; STD; INV; 1020 BP.`
                    let fields: Vec<&str> = data.split(';').map(str::trim).collect();
                    if fields.is_empty() || fields[0].is_empty() {
                        return Err(FlatError::at(FORMAT, lineno, "empty ID line"));
                    }
                    entry.accession = fields[0].to_string();
                    if let Some(mol) = fields.get(3) {
                        entry.molecule = mol.to_string();
                    }
                    if let Some(div) = fields.get(5) {
                        entry.division = div.to_string();
                    }
                }
                "AC" => {
                    if entry.accession.is_empty() {
                        entry.accession = data.split(';').next().unwrap_or("").trim().to_string();
                    }
                }
                "DE" => {
                    if !entry.description.is_empty() {
                        entry.description.push(' ');
                    }
                    entry.description.push_str(data.trim());
                }
                "KW" => {
                    for kw in data.split(';') {
                        let kw = kw.trim().trim_end_matches('.').trim();
                        if !kw.is_empty() {
                            entry.keywords.push(kw.to_string());
                        }
                    }
                }
                "OS" => {
                    if !entry.organism.is_empty() {
                        entry.organism.push(' ');
                    }
                    entry.organism.push_str(data.trim());
                }
                "FT" => parse_feature_line(&mut entry, data, lineno)?,
                "SQ" => in_sequence = true,
                "XX" => {} // spacer lines in real EMBL files
                other => {
                    return Err(FlatError::at(
                        FORMAT,
                        lineno,
                        format!("unknown line code {other:?}"),
                    ));
                }
            }
        }
        if entry.accession.is_empty() {
            return Err(FlatError::new(FORMAT, "entry has no accession"));
        }
        Ok(entry)
    }

    /// Writes the entry back to flat format, including the terminator.
    pub fn to_flat(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ID   {}; SV 1; linear; {}; STD; {}; {} BP.\n",
            self.accession,
            self.molecule,
            self.division,
            self.sequence.len()
        ));
        out.push_str(&format!("AC   {};\n", self.accession));
        if !self.description.is_empty() {
            wrap_lines("DE", &self.description, &mut out);
        }
        if !self.keywords.is_empty() {
            let joined = format!("{}.", self.keywords.join("; "));
            wrap_lines("KW", &joined, &mut out);
        }
        if !self.organism.is_empty() {
            wrap_lines("OS", &self.organism, &mut out);
        }
        for feature in &self.features {
            out.push_str(&format!("FT   {:<16}{}\n", feature.key, feature.location));
            for q in &feature.qualifiers {
                out.push_str(&format!("FT   {:<16}/{}=\"{}\"\n", "", q.name, q.value));
            }
        }
        if !self.sequence.is_empty() {
            out.push_str(&format!("SQ   Sequence {} BP;\n", self.sequence.len()));
            for chunk in self.sequence.as_bytes().chunks(60) {
                out.push_str("     ");
                for block in chunk.chunks(10) {
                    out.push_str(std::str::from_utf8(block).expect("ascii sequence"));
                    out.push(' ');
                }
                out.push('\n');
            }
        }
        out.push_str("//\n");
        out
    }
}

fn parse_feature_line(entry: &mut EmblEntry, data: &str, lineno: usize) -> FlatResult<()> {
    if data.starts_with(char::is_whitespace) || data.starts_with('/') {
        // Qualifier or continuation within the current feature.
        let text = data.trim();
        let feature = entry.features.last_mut().ok_or_else(|| {
            FlatError::at(FORMAT, lineno, "feature qualifier before any feature key")
        })?;
        if let Some(q) = text.strip_prefix('/') {
            match q.split_once('=') {
                Some((name, value)) => feature.qualifiers.push(Qualifier {
                    name: name.trim().to_string(),
                    value: value.trim().trim_matches('"').to_string(),
                }),
                // A bare flag qualifier like /pseudo.
                None => feature.qualifiers.push(Qualifier {
                    name: q.trim().to_string(),
                    value: String::new(),
                }),
            }
        } else if let Some(last) = feature.qualifiers.last_mut() {
            // Continuation of a quoted qualifier value.
            last.value.push(' ');
            last.value.push_str(text.trim_matches('"'));
        } else {
            // Continuation of the location.
            feature.location.push_str(text);
        }
    } else {
        let (key, location) = match data.split_once(char::is_whitespace) {
            Some((k, rest)) => (k.to_string(), rest.trim().to_string()),
            None => (data.to_string(), String::new()),
        };
        entry.features.push(Feature {
            key,
            location,
            qualifiers: Vec::new(),
        });
    }
    Ok(())
}

/// Parses a whole EMBL flat file into entries.
pub fn parse_embl_file(input: &str) -> FlatResult<Vec<EmblEntry>> {
    crate::line::split_entries(input)
        .iter()
        .map(|lines| EmblEntry::parse_lines(lines))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ID   AB000001; SV 1; linear; mRNA; STD; INV; 120 BP.
AC   AB000001;
DE   Drosophila melanogaster mRNA for cell division cycle protein cdc6.
KW   cdc6; cell cycle.
OS   Drosophila melanogaster
FT   source          1..120
FT                   /organism=\"Drosophila melanogaster\"
FT   CDS             1..120
FT                   /gene=\"cdc6\"
FT                   /EC_number=\"1.14.17.3\"
FT                   /product=\"cell division control protein\"
SQ   Sequence 120 BP;
     acgtacgtac gtacgtacgt acgtacgtac gtacgtacgt acgtacgtac gtacgtacgt
     acgtacgtac gtacgtacgt acgtacgtac gtacgtacgt acgtacgtac gtacgtacgt
//
";

    #[test]
    fn parses_sample_entry() {
        let entries = parse_embl_file(SAMPLE).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.accession, "AB000001");
        assert_eq!(e.molecule, "mRNA");
        assert_eq!(e.division, "INV");
        assert!(e.description.contains("cdc6"));
        assert_eq!(e.keywords, vec!["cdc6", "cell cycle"]);
        assert_eq!(e.organism, "Drosophila melanogaster");
        assert_eq!(e.features.len(), 2);
        let cds = &e.features[1];
        assert_eq!(cds.key, "CDS");
        assert_eq!(cds.location, "1..120");
        assert_eq!(cds.qualifiers.len(), 3);
        assert_eq!(
            cds.qualifiers[1],
            Qualifier {
                name: "EC_number".into(),
                value: "1.14.17.3".into()
            }
        );
        assert_eq!(e.sequence.len(), 120);
        assert!(e.sequence.chars().all(|c| "acgt".contains(c)));
    }

    #[test]
    fn round_trips_through_flat_format() {
        let entries = parse_embl_file(SAMPLE).unwrap();
        let rewritten = entries[0].to_flat();
        let reparsed = parse_embl_file(&rewritten).unwrap();
        assert_eq!(entries, reparsed);
    }

    #[test]
    fn multi_line_description_joins() {
        let text =
            "ID   X1; SV 1; linear; mRNA; STD; INV; 0 BP.\nDE   first part\nDE   second part\n//\n";
        let e = &parse_embl_file(text).unwrap()[0];
        assert_eq!(e.description, "first part second part");
    }

    #[test]
    fn long_qualifier_value_continuation() {
        let text = "ID   X1; SV 1; linear; mRNA; STD; INV; 0 BP.\nFT   CDS             1..9\nFT                   /note=\"a long note\nFT                   that continues\"\n//\n";
        let e = &parse_embl_file(text).unwrap()[0];
        assert_eq!(
            e.features[0].qualifiers[0].value,
            "a long note that continues"
        );
    }

    #[test]
    fn flag_qualifier_without_value() {
        let text = "ID   X1; SV 1; linear; mRNA; STD; INV; 0 BP.\nFT   CDS             1..9\nFT                   /pseudo\n//\n";
        let e = &parse_embl_file(text).unwrap()[0];
        assert_eq!(e.features[0].qualifiers[0].name, "pseudo");
        assert_eq!(e.features[0].qualifiers[0].value, "");
    }

    #[test]
    fn rejects_bad_entries() {
        assert!(parse_embl_file("DE   no id\n//\n").is_err());
        assert!(parse_embl_file("ZZ   ?\n//\n").is_err());
        // Qualifier before any feature.
        assert!(parse_embl_file(
            "ID   X; SV 1; a; b; c; d; 0 BP.\nFT                   /x=\"1\"\n//\n"
        )
        .is_err());
    }

    #[test]
    fn accession_from_ac_when_id_missing() {
        let e = &parse_embl_file("AC   Z99999;\n//\n").unwrap()[0];
        assert_eq!(e.accession, "Z99999");
    }

    #[test]
    fn xx_spacer_lines_are_ignored() {
        let text = "ID   X1; SV 1; linear; mRNA; STD; INV; 0 BP.\nXX\nDE   described\nXX\n//\n";
        let e = &parse_embl_file(text).unwrap()[0];
        assert_eq!(e.description, "described");
    }

    #[test]
    fn sequence_round_trip_any_length() {
        for len in [0usize, 1, 59, 60, 61, 137] {
            let entry = EmblEntry {
                accession: "T1".into(),
                molecule: "mRNA".into(),
                division: "INV".into(),
                sequence: "acgt".chars().cycle().take(len).collect(),
                ..EmblEntry::default()
            };
            let reparsed = &parse_embl_file(&entry.to_flat()).unwrap()[0];
            assert_eq!(reparsed.sequence, entry.sequence, "len {len}");
        }
    }
}
