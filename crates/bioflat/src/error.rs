//! Flat-file parsing errors.

use std::fmt;

/// Result alias for flat-file operations.
pub type FlatResult<T> = Result<T, FlatError>;

/// An error raised while parsing a flat-file database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatError {
    /// Which database format was being parsed.
    pub format: &'static str,
    /// 1-based line number of the offending line, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl FlatError {
    /// Creates an error without a line position.
    pub fn new(format: &'static str, message: impl Into<String>) -> Self {
        FlatError {
            format,
            line: None,
            message: message.into(),
        }
    }

    /// Creates an error at a 1-based line number.
    pub fn at(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        FlatError {
            format,
            line: Some(line),
            message: message.into(),
        }
    }
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} line {line}: {}", self.format, self.message),
            None => write!(f, "{}: {}", self.format, self.message),
        }
    }
}

impl std::error::Error for FlatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            FlatError::at("ENZYME", 7, "missing ID").to_string(),
            "ENZYME line 7: missing ID"
        );
        assert_eq!(
            FlatError::new("EMBL", "empty input").to_string(),
            "EMBL: empty input"
        );
    }
}
