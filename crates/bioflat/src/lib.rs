#![warn(missing_docs)]

//! # xomatiq-bioflat
//!
//! Flat-file biological database formats and synthetic corpus generation.
//!
//! The paper's Data Hounds harvest "formatted text files, a widely used
//! format in biological databases such as EMBL and Swiss-Prot" (§4) and
//! the ENZYME repository whose line structure Figures 2–4 document. This
//! crate provides, for each of those three sources:
//!
//! * a typed record model ([`enzyme::EnzymeEntry`], [`embl::EmblEntry`],
//!   [`swissprot::SwissProtEntry`]),
//! * a parser from the line-code flat format ([`mod@line`] holds the shared
//!   two-character-code line discipline of Figure 3),
//! * a writer back to flat text (parse ∘ write = identity, which the
//!   property tests enforce), and
//! * a deterministic synthetic [`generator`] that fabricates corpora of
//!   any size with planted cross-database links — EC numbers inside EMBL
//!   feature qualifiers, Swiss-Prot accessions in ENZYME `DR` lines, and
//!   keyword markers such as `cdc6` — so the paper's Figure 8/9/11 queries
//!   return verifiable results at controllable scale.
//!
//! The real databases are FTP downloads the paper's system fetched live;
//! the generator replaces that feed with structurally faithful synthetic
//! data (see DESIGN.md §2 for the substitution argument).
//!
//! ```
//! use xomatiq_bioflat::{Corpus, CorpusSpec};
//! use xomatiq_bioflat::enzyme::parse_enzyme_file;
//!
//! let corpus = Corpus::generate(&CorpusSpec::sized(5));
//! let reparsed = parse_enzyme_file(&corpus.enzyme_flat()).unwrap();
//! assert_eq!(reparsed, corpus.enzymes); // write ∘ parse = identity
//! ```

pub mod embl;
pub mod enzyme;
pub mod error;
pub mod generator;
pub mod interpro;
pub mod line;
pub mod swissprot;

pub use embl::EmblEntry;
pub use enzyme::EnzymeEntry;
pub use error::{FlatError, FlatResult};
pub use generator::{Corpus, CorpusSpec};
pub use swissprot::SwissProtEntry;
