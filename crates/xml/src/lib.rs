#![warn(missing_docs)]

//! # xomatiq-xml
//!
//! XML infrastructure for the XomatiQ reproduction, written from scratch.
//!
//! The paper's Data Hounds component converts biological flat files into XML
//! documents that are valid with respect to a per-source DTD (paper §2.1,
//! Figures 5–6), and the whole pipeline — shredding, querying, re-tagging —
//! operates on those documents. This crate provides everything the rest of
//! the workspace needs to *be* an "all-XML" system:
//!
//! * [`Document`] — an arena-backed, ordered document tree with stable node
//!   ids and cheap navigation ([`document`]).
//! * [`parse`] / [`Parser`] — a non-validating XML 1.0 parser covering the
//!   subset the pipeline produces (elements, attributes, text, comments,
//!   processing instructions, character/entity references, CDATA)
//!   ([`parser`]).
//! * [`writer`] — compact and pretty serializers that round-trip documents.
//! * [`dtd`] — a DTD model, parser and validator (element content models,
//!   attribute lists with types and defaults).
//! * [`path`] — slash-separated label paths with `//` descendant steps and
//!   attribute addressing, the addressing scheme used by the shredder and by
//!   XQ2SQL translation.
//!
//! Document order is a first-class concept throughout: the paper stores
//! order as a data value so that documents can be reconstructed from tuples
//! and order-based XQuery operators keep their semantics (§2.2). Node ids in
//! this crate enumerate nodes in document order, and [`Document::ordinal`]
//! exposes the per-parent ordinal the shredder persists.
//!
//! ```
//! use xomatiq_xml::{parse, to_string, dtd};
//!
//! let doc = parse("<hlx_enzyme><db_entry><enzyme_id>1.14.17.3</enzyme_id></db_entry></hlx_enzyme>")?;
//! let root = doc.root_element().unwrap();
//! let entry = doc.child_element(root, "db_entry").unwrap();
//! assert_eq!(doc.text_content(entry), "1.14.17.3");
//!
//! let schema = dtd::parse_dtd(
//!     "<!ELEMENT hlx_enzyme (db_entry)>\n<!ELEMENT db_entry (enzyme_id)>\n<!ELEMENT enzyme_id (#PCDATA)>",
//! )?;
//! dtd::validate(&doc, &schema)?;
//! assert!(to_string(&doc).contains("<enzyme_id>"));
//! # Ok::<(), xomatiq_xml::XmlError>(())
//! ```

pub mod document;
pub mod dtd;
pub mod error;
pub mod escape;
pub mod name;
pub mod parser;
pub mod path;
pub mod writer;

pub use document::{Attribute, Document, Node, NodeId, NodeKind};
pub use error::{XmlError, XmlResult};
pub use parser::{parse, Parser};
pub use path::{LabelPath, PathStep};
pub use writer::{to_string, to_string_pretty, WriteOptions};
