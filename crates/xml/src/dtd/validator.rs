//! DTD validation of documents.
//!
//! Data Hounds promises to create "valid XML documents of the corresponding
//! data" (paper §1.1); validation is the contract check between the
//! XML-Transformer and the shredder. The validator checks the root element
//! name, every element's content model, attribute presence/type/defaults,
//! and ID/IDREF consistency.

use std::collections::{HashMap, HashSet};

use crate::document::{Document, NodeId, NodeKind};
use crate::dtd::model::{AttrDefault, AttrType, ContentModel, ContentParticle, Dtd};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::name::{is_valid_name, is_valid_nmtoken};

/// Validates `doc` against `dtd`, returning the first violation found.
pub fn validate(doc: &Document, dtd: &Dtd) -> XmlResult<()> {
    let root = doc.root_element().ok_or_else(|| {
        XmlError::new(XmlErrorKind::Validation(
            "document has no root element".into(),
        ))
    })?;
    if let Some(expected) = dtd.root() {
        let actual = doc.node(root).name().expect("root is an element");
        if actual != expected {
            return Err(err(format!(
                "root element is <{actual}>, DTD expects <{expected}>"
            )));
        }
    }
    let mut ids: HashSet<String> = HashSet::new();
    let mut idrefs: Vec<String> = Vec::new();
    validate_element(doc, root, dtd, &mut ids, &mut idrefs)?;
    for idref in idrefs {
        if !ids.contains(&idref) {
            return Err(err(format!("IDREF {idref:?} does not match any ID")));
        }
    }
    Ok(())
}

fn err(msg: String) -> XmlError {
    XmlError::new(XmlErrorKind::Validation(msg))
}

fn validate_element(
    doc: &Document,
    id: NodeId,
    dtd: &Dtd,
    ids: &mut HashSet<String>,
    idrefs: &mut Vec<String>,
) -> XmlResult<()> {
    let name = doc.node(id).name().expect("element").to_string();
    let decl = dtd
        .element(&name)
        .ok_or_else(|| err(format!("element <{name}> is not declared")))?;

    validate_attributes(doc, id, &name, dtd, ids, idrefs)?;

    let child_elements: Vec<&str> = doc
        .children(id)
        .filter_map(|c| doc.node(c).name())
        .collect();
    let has_text = doc
        .children(id)
        .any(|c| matches!(doc.node(c).kind(), NodeKind::Text(t) if !t.trim().is_empty()));

    match &decl.content {
        ContentModel::Empty => {
            if !child_elements.is_empty() || has_text {
                return Err(err(format!(
                    "element <{name}> is declared EMPTY but has content"
                )));
            }
        }
        ContentModel::Any => {
            for child in &child_elements {
                if dtd.element(child).is_none() {
                    return Err(err(format!(
                        "element <{child}> inside ANY <{name}> is not declared"
                    )));
                }
            }
        }
        ContentModel::Mixed(allowed) => {
            for child in &child_elements {
                if !allowed.iter().any(|a| a == child) {
                    return Err(err(format!(
                        "element <{child}> is not allowed in mixed content of <{name}>"
                    )));
                }
            }
        }
        ContentModel::Children(particle) => {
            if has_text {
                return Err(err(format!(
                    "element <{name}> has element content but contains text"
                )));
            }
            if !matches_particle(particle, &child_elements) {
                return Err(err(format!(
                    "children of <{name}> ({}) do not match content model {}",
                    child_elements.join(","),
                    decl.content
                )));
            }
        }
    }

    for child in doc.child_elements(id) {
        validate_element(doc, child, dtd, ids, idrefs)?;
    }
    Ok(())
}

fn validate_attributes(
    doc: &Document,
    id: NodeId,
    element: &str,
    dtd: &Dtd,
    ids: &mut HashSet<String>,
    idrefs: &mut Vec<String>,
) -> XmlResult<()> {
    let decls = dtd.attributes(element);
    let decl_by_name: HashMap<&str, _> = decls.iter().map(|d| (d.name.as_str(), d)).collect();

    for attr in doc.node(id).attributes() {
        let Some(decl) = decl_by_name.get(attr.name.as_str()) else {
            return Err(err(format!(
                "attribute {:?} on <{element}> is not declared",
                attr.name
            )));
        };
        match &decl.ty {
            AttrType::Cdata => {}
            AttrType::NmToken => {
                if !is_valid_nmtoken(&attr.value) {
                    return Err(err(format!(
                        "attribute {}={:?} on <{element}> is not a valid NMTOKEN",
                        attr.name, attr.value
                    )));
                }
            }
            AttrType::NmTokens => {
                let tokens: Vec<&str> = attr.value.split_whitespace().collect();
                if tokens.is_empty() || !tokens.iter().all(|t| is_valid_nmtoken(t)) {
                    return Err(err(format!(
                        "attribute {}={:?} on <{element}> is not valid NMTOKENS",
                        attr.name, attr.value
                    )));
                }
            }
            AttrType::Id => {
                if !is_valid_name(&attr.value) {
                    return Err(err(format!(
                        "ID value {:?} on <{element}> is not a valid name",
                        attr.value
                    )));
                }
                if !ids.insert(attr.value.clone()) {
                    return Err(err(format!("duplicate ID {:?}", attr.value)));
                }
            }
            AttrType::IdRef => {
                if !is_valid_name(&attr.value) {
                    return Err(err(format!(
                        "IDREF value {:?} on <{element}> is not a valid name",
                        attr.value
                    )));
                }
                idrefs.push(attr.value.clone());
            }
            AttrType::Enumeration(values) => {
                if !values.iter().any(|v| v == &attr.value) {
                    return Err(err(format!(
                        "attribute {}={:?} on <{element}> is not one of ({})",
                        attr.name,
                        attr.value,
                        values.join("|")
                    )));
                }
            }
        }
        if let AttrDefault::Fixed(fixed) = &decl.default {
            if &attr.value != fixed {
                return Err(err(format!(
                    "attribute {} on <{element}> must have the #FIXED value {fixed:?}",
                    attr.name
                )));
            }
        }
    }

    for decl in decls {
        if matches!(decl.default, AttrDefault::Required)
            && doc.node(id).attribute(&decl.name).is_none()
        {
            return Err(err(format!(
                "required attribute {:?} missing on <{element}>",
                decl.name
            )));
        }
    }
    Ok(())
}

/// Whether the full sequence of child element names matches `particle`.
///
/// Implemented as a backtracking matcher: `advance` returns every input
/// position reachable after consuming one instance of the particle starting
/// at `pos`. Content models in this domain are short (tens of particles) so
/// the exponential worst case of backtracking is irrelevant, and the code
/// stays obviously correct.
pub fn matches_particle(particle: &ContentParticle, names: &[&str]) -> bool {
    advance(particle, names, 0).contains(&names.len())
}

fn advance(particle: &ContentParticle, names: &[&str], pos: usize) -> Vec<usize> {
    let rep = particle.repetition();
    let mut results: Vec<usize> = Vec::new();
    if rep.allows_zero() {
        results.push(pos);
    }
    // Positions reachable after k >= 1 repetitions.
    let mut frontier = vec![pos];
    loop {
        let mut next = Vec::new();
        for p in &frontier {
            for q in advance_once(particle, names, *p) {
                if q > *p && !next.contains(&q) {
                    next.push(q);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        for q in &next {
            if !results.contains(q) {
                results.push(*q);
            }
        }
        if !rep.allows_many() {
            // Only a single repetition permitted.
            if !rep.allows_zero() {
                // Exactly-one: the zero-consumption seed must be removed if
                // a single match consumed nothing (possible for nested
                // optional groups).
            }
            break;
        }
        frontier = next;
    }
    if !rep.allows_zero() {
        // For One / OneOrMore the particle itself may still legitimately
        // consume zero input (e.g. `(a?)` matching nothing); account for
        // that by checking a single zero-width match.
        if advance_once(particle, names, pos).contains(&pos) && !results.contains(&pos) {
            results.push(pos);
        }
    }
    results
}

/// Positions reachable after consuming exactly one instance of `particle`.
fn advance_once(particle: &ContentParticle, names: &[&str], pos: usize) -> Vec<usize> {
    match particle {
        ContentParticle::Name(name, _) => {
            if names.get(pos).is_some_and(|n| n == name) {
                vec![pos + 1]
            } else {
                Vec::new()
            }
        }
        ContentParticle::Sequence(items, _) => {
            let mut positions = vec![pos];
            for item in items {
                let mut next = Vec::new();
                for p in positions {
                    for q in advance(item, names, p) {
                        if !next.contains(&q) {
                            next.push(q);
                        }
                    }
                }
                positions = next;
                if positions.is_empty() {
                    break;
                }
            }
            positions
        }
        ContentParticle::Choice(items, _) => {
            let mut out = Vec::new();
            for item in items {
                for q in advance(item, names, pos) {
                    if !out.contains(&q) {
                        out.push(q);
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::parser::parse_dtd;
    use crate::parser::parse;

    const DTD: &str = r#"
<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id,enzyme_description+,catalytic_activity*,prosite_reference?)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT prosite_reference EMPTY>
<!ATTLIST prosite_reference prosite_accession_number NMTOKEN #REQUIRED>
"#;

    fn dtd() -> Dtd {
        parse_dtd(DTD).unwrap()
    }

    #[test]
    fn valid_document_passes() {
        let doc = parse(
            r#"<hlx_enzyme><db_entry>
              <enzyme_id>1.14.17.3</enzyme_id>
              <enzyme_description>Peptidylglycine monooxygenase.</enzyme_description>
              <catalytic_activity>A + B = C</catalytic_activity>
              <prosite_reference prosite_accession_number="PDOC00080"/>
            </db_entry></hlx_enzyme>"#,
        )
        .unwrap();
        validate(&doc, &dtd()).unwrap();
    }

    #[test]
    fn optional_elements_may_be_absent() {
        let doc = parse(
            "<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description></db_entry></hlx_enzyme>",
        )
        .unwrap();
        validate(&doc, &dtd()).unwrap();
    }

    #[test]
    fn wrong_root_fails() {
        let doc = parse("<db_entry/>").unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("root element"), "{e}");
    }

    #[test]
    fn missing_required_child_fails() {
        let doc = parse("<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id></db_entry></hlx_enzyme>")
            .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("do not match content model"), "{e}");
    }

    #[test]
    fn wrong_child_order_fails() {
        let doc = parse(
            "<hlx_enzyme><db_entry><enzyme_description>y</enzyme_description><enzyme_id>x</enzyme_id></db_entry></hlx_enzyme>",
        )
        .unwrap();
        assert!(validate(&doc, &dtd()).is_err());
    }

    #[test]
    fn undeclared_element_fails() {
        let doc = parse("<hlx_enzyme><mystery/></hlx_enzyme>").unwrap();
        assert!(validate(&doc, &dtd()).is_err());
    }

    #[test]
    fn text_in_element_content_fails() {
        let doc = parse(
            "<hlx_enzyme>stray<db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description></db_entry></hlx_enzyme>",
        )
        .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("contains text"), "{e}");
    }

    #[test]
    fn empty_element_with_content_fails() {
        let doc = parse(
            r#"<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description><prosite_reference prosite_accession_number="P1">text</prosite_reference></db_entry></hlx_enzyme>"#,
        )
        .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("EMPTY"), "{e}");
    }

    #[test]
    fn missing_required_attribute_fails() {
        let doc = parse(
            "<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description><prosite_reference/></db_entry></hlx_enzyme>",
        )
        .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("required attribute"), "{e}");
    }

    #[test]
    fn undeclared_attribute_fails() {
        let doc = parse(
            r#"<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description><prosite_reference prosite_accession_number="P1" extra="no"/></db_entry></hlx_enzyme>"#,
        )
        .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("not declared"), "{e}");
    }

    #[test]
    fn nmtoken_attribute_type_enforced() {
        let doc = parse(
            r#"<hlx_enzyme><db_entry><enzyme_id>x</enzyme_id><enzyme_description>y</enzyme_description><prosite_reference prosite_accession_number="has space"/></db_entry></hlx_enzyme>"#,
        )
        .unwrap();
        let e = validate(&doc, &dtd()).unwrap_err();
        assert!(e.to_string().contains("NMTOKEN"), "{e}");
    }

    #[test]
    fn enumeration_and_fixed_enforced() {
        let dtd = parse_dtd(
            r#"<!ELEMENT x EMPTY>
               <!ATTLIST x kind (dna|rna) #REQUIRED ver CDATA #FIXED "1">"#,
        )
        .unwrap();
        validate(&parse(r#"<x kind="dna" ver="1"/>"#).unwrap(), &dtd).unwrap();
        validate(&parse(r#"<x kind="rna"/>"#).unwrap(), &dtd).unwrap();
        assert!(validate(&parse(r#"<x kind="protein"/>"#).unwrap(), &dtd).is_err());
        assert!(validate(&parse(r#"<x kind="dna" ver="2"/>"#).unwrap(), &dtd).is_err());
    }

    #[test]
    fn id_uniqueness_and_idref_resolution() {
        let dtd = parse_dtd(
            r#"<!ELEMENT r (n*)>
               <!ELEMENT n EMPTY>
               <!ATTLIST n id ID #REQUIRED ref IDREF #IMPLIED>"#,
        )
        .unwrap();
        validate(
            &parse(r#"<r><n id="a"/><n id="b" ref="a"/></r>"#).unwrap(),
            &dtd,
        )
        .unwrap();
        let dup = validate(&parse(r#"<r><n id="a"/><n id="a"/></r>"#).unwrap(), &dtd).unwrap_err();
        assert!(dup.to_string().contains("duplicate ID"), "{dup}");
        let dangling =
            validate(&parse(r#"<r><n id="a" ref="zz"/></r>"#).unwrap(), &dtd).unwrap_err();
        assert!(dangling.to_string().contains("IDREF"), "{dangling}");
    }

    #[test]
    fn mixed_content_allows_listed_elements_any_order() {
        let dtd = parse_dtd("<!ELEMENT p (#PCDATA|em)*><!ELEMENT em (#PCDATA)>").unwrap();
        validate(
            &parse("<p>one <em>two</em> three <em>four</em></p>").unwrap(),
            &dtd,
        )
        .unwrap();
        assert!(validate(&parse("<p><strong>x</strong></p>").unwrap(), &dtd).is_err());
    }

    #[test]
    fn any_content_allows_declared_elements() {
        let dtd = parse_dtd("<!ELEMENT r ANY><!ELEMENT a (#PCDATA)>").unwrap();
        validate(&parse("<r>text<a>x</a></r>").unwrap(), &dtd).unwrap();
        assert!(validate(&parse("<r><zz/></r>").unwrap(), &dtd).is_err());
    }

    // ---- particle matcher unit tests --------------------------------------

    fn particle(src: &str) -> ContentParticle {
        let dtd = parse_dtd(&format!("<!ELEMENT t {src}>")).unwrap();
        match &dtd.element("t").unwrap().content {
            ContentModel::Children(p) => p.clone(),
            other => panic!("expected children model, got {other:?}"),
        }
    }

    #[test]
    fn particle_sequence_with_repetitions() {
        let p = particle("(a,b+,c*)");
        assert!(matches_particle(&p, &["a", "b"]));
        assert!(matches_particle(&p, &["a", "b", "b", "c", "c"]));
        assert!(!matches_particle(&p, &["a"]));
        assert!(!matches_particle(&p, &["a", "c"]));
        assert!(!matches_particle(&p, &["b", "a"]));
    }

    #[test]
    fn particle_choice() {
        let p = particle("((a|b)+)");
        assert!(matches_particle(&p, &["a"]));
        assert!(matches_particle(&p, &["b", "a", "b"]));
        assert!(!matches_particle(&p, &[]));
        assert!(!matches_particle(&p, &["c"]));
    }

    #[test]
    fn particle_nested_groups() {
        let p = particle("((a,b)*,c)");
        assert!(matches_particle(&p, &["c"]));
        assert!(matches_particle(&p, &["a", "b", "c"]));
        assert!(matches_particle(&p, &["a", "b", "a", "b", "c"]));
        assert!(!matches_particle(&p, &["a", "c"]));
        assert!(!matches_particle(&p, &["a", "b"]));
    }

    #[test]
    fn particle_all_optional_matches_empty() {
        let p = particle("(a?,b*)");
        assert!(matches_particle(&p, &[]));
        assert!(matches_particle(&p, &["b", "b"]));
        assert!(matches_particle(&p, &["a"]));
        assert!(!matches_particle(&p, &["b", "a"]));
    }

    #[test]
    fn particle_ambiguous_backtracking() {
        // (a*, a) requires at least one a; the matcher must backtrack.
        let p = particle("(a*,a)");
        assert!(matches_particle(&p, &["a"]));
        assert!(matches_particle(&p, &["a", "a", "a"]));
        assert!(!matches_particle(&p, &[]));
    }
}
