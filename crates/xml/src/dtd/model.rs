//! DTD data model and serialization.

use std::collections::BTreeMap;
use std::fmt;

/// How often a content particle may repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Repetition {
    /// Exactly once (no suffix).
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    ZeroOrMore,
    /// One or more (`+`).
    OneOrMore,
}

impl Repetition {
    /// The suffix character, if any.
    pub fn suffix(self) -> &'static str {
        match self {
            Repetition::One => "",
            Repetition::Optional => "?",
            Repetition::ZeroOrMore => "*",
            Repetition::OneOrMore => "+",
        }
    }

    /// Whether zero occurrences satisfy this repetition.
    pub fn allows_zero(self) -> bool {
        matches!(self, Repetition::Optional | Repetition::ZeroOrMore)
    }

    /// Whether more than one occurrence satisfies this repetition.
    pub fn allows_many(self) -> bool {
        matches!(self, Repetition::ZeroOrMore | Repetition::OneOrMore)
    }
}

/// A particle of an element content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentParticle {
    /// An element name with a repetition, e.g. `cofactor*`.
    Name(String, Repetition),
    /// A sequence `(a, b, c)` with a repetition.
    Sequence(Vec<ContentParticle>, Repetition),
    /// A choice `(a | b | c)` with a repetition.
    Choice(Vec<ContentParticle>, Repetition),
}

impl ContentParticle {
    /// The particle's repetition.
    pub fn repetition(&self) -> Repetition {
        match self {
            ContentParticle::Name(_, r)
            | ContentParticle::Sequence(_, r)
            | ContentParticle::Choice(_, r) => *r,
        }
    }

    /// Collects every element name mentioned in the particle.
    pub fn element_names(&self, out: &mut Vec<String>) {
        match self {
            ContentParticle::Name(n, _) => out.push(n.clone()),
            ContentParticle::Sequence(items, _) | ContentParticle::Choice(items, _) => {
                for item in items {
                    item.element_names(out);
                }
            }
        }
    }
}

impl fmt::Display for ContentParticle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentParticle::Name(n, r) => write!(f, "{n}{}", r.suffix()),
            ContentParticle::Sequence(items, r) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "){}", r.suffix())
            }
            ContentParticle::Choice(items, r) => {
                f.write_str("(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "){}", r.suffix())
            }
        }
    }
}

/// The content model of an element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `EMPTY` — no children at all.
    Empty,
    /// `ANY` — any declared elements and text.
    Any,
    /// `(#PCDATA)` or `(#PCDATA | a | b)*` — text optionally mixed with the
    /// listed elements in any order.
    Mixed(Vec<String>),
    /// A children content model (element-only).
    Children(ContentParticle),
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentModel::Empty => f.write_str("EMPTY"),
            ContentModel::Any => f.write_str("ANY"),
            ContentModel::Mixed(names) if names.is_empty() => f.write_str("(#PCDATA)"),
            ContentModel::Mixed(names) => {
                f.write_str("(#PCDATA")?;
                for n in names {
                    write!(f, "|{n}")?;
                }
                f.write_str(")*")
            }
            ContentModel::Children(cp) => match cp {
                // The outermost particle must be parenthesized even when it
                // is a bare name.
                ContentParticle::Name(n, r) => write!(f, "({n}){}", r.suffix()),
                other => write!(f, "{other}"),
            },
        }
    }
}

/// An `<!ELEMENT ...>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Declared content model.
    pub content: ContentModel,
}

/// The declared type of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrType {
    /// `CDATA` — any character data.
    Cdata,
    /// `NMTOKEN` — a single name token.
    NmToken,
    /// `NMTOKENS` — whitespace-separated name tokens.
    NmTokens,
    /// `ID` — a document-unique name.
    Id,
    /// `IDREF` — a reference to an ID.
    IdRef,
    /// An enumeration `(a|b|c)`.
    Enumeration(Vec<String>),
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Cdata => f.write_str("CDATA"),
            AttrType::NmToken => f.write_str("NMTOKEN"),
            AttrType::NmTokens => f.write_str("NMTOKENS"),
            AttrType::Id => f.write_str("ID"),
            AttrType::IdRef => f.write_str("IDREF"),
            AttrType::Enumeration(values) => {
                f.write_str("(")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    f.write_str(v)?;
                }
                f.write_str(")")
            }
        }
    }
}

/// The default declaration of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrDefault {
    /// `#REQUIRED`.
    Required,
    /// `#IMPLIED`.
    Implied,
    /// `#FIXED "value"`.
    Fixed(String),
    /// A plain default value.
    Default(String),
}

impl fmt::Display for AttrDefault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrDefault::Required => f.write_str("#REQUIRED"),
            AttrDefault::Implied => f.write_str("#IMPLIED"),
            AttrDefault::Fixed(v) => write!(f, "#FIXED \"{v}\""),
            AttrDefault::Default(v) => write!(f, "\"{v}\""),
        }
    }
}

/// One attribute definition within an `<!ATTLIST ...>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
    /// Default declaration.
    pub default: AttrDefault,
}

/// A complete DTD: element declarations plus per-element attribute lists.
///
/// Declaration order is preserved so the serialized form matches the
/// human-authored layout of Figure 5.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dtd {
    elements: Vec<ElementDecl>,
    attlists: BTreeMap<String, Vec<AttrDecl>>,
}

impl Dtd {
    /// Creates an empty DTD.
    pub fn new() -> Self {
        Dtd::default()
    }

    /// Adds (or replaces) an element declaration.
    pub fn declare_element(&mut self, decl: ElementDecl) {
        if let Some(existing) = self.elements.iter_mut().find(|e| e.name == decl.name) {
            *existing = decl;
        } else {
            self.elements.push(decl);
        }
    }

    /// Adds an attribute declaration for `element`.
    pub fn declare_attribute(&mut self, element: &str, decl: AttrDecl) {
        let list = self.attlists.entry(element.to_string()).or_default();
        if let Some(existing) = list.iter_mut().find(|a| a.name == decl.name) {
            *existing = decl;
        } else {
            list.push(decl);
        }
    }

    /// Looks up the declaration of `name`.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// The attribute declarations for `element` (empty if none).
    pub fn attributes(&self, element: &str) -> &[AttrDecl] {
        self.attlists.get(element).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All element declarations in declaration order.
    pub fn elements(&self) -> &[ElementDecl] {
        &self.elements
    }

    /// The first declared element, conventionally the document root.
    pub fn root(&self) -> Option<&str> {
        self.elements.first().map(|e| e.name.as_str())
    }

    /// Names of elements declared with a pure `(#PCDATA)` content model —
    /// the leaves whose text the shredder stores as values.
    pub fn leaf_elements(&self) -> Vec<&str> {
        self.elements
            .iter()
            .filter(|e| matches!(&e.content, ContentModel::Mixed(names) if names.is_empty()))
            .map(|e| e.name.as_str())
            .collect()
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in &self.elements {
            writeln!(f, "<!ELEMENT {} {}>", decl.name, decl.content)?;
            if let Some(attrs) = self.attlists.get(&decl.name) {
                writeln!(f, "<!ATTLIST {}", decl.name)?;
                for attr in attrs {
                    writeln!(f, "  {} {} {}", attr.name, attr.ty, attr.default)?;
                }
                writeln!(f, ">")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcdata() -> ContentModel {
        ContentModel::Mixed(Vec::new())
    }

    #[test]
    fn declarations_replace_by_name() {
        let mut dtd = Dtd::new();
        dtd.declare_element(ElementDecl {
            name: "a".into(),
            content: ContentModel::Empty,
        });
        dtd.declare_element(ElementDecl {
            name: "a".into(),
            content: pcdata(),
        });
        assert_eq!(dtd.elements().len(), 1);
        assert_eq!(dtd.element("a").unwrap().content, pcdata());
    }

    #[test]
    fn root_is_first_declared() {
        let mut dtd = Dtd::new();
        dtd.declare_element(ElementDecl {
            name: "hlx_enzyme".into(),
            content: ContentModel::Any,
        });
        dtd.declare_element(ElementDecl {
            name: "db_entry".into(),
            content: ContentModel::Any,
        });
        assert_eq!(dtd.root(), Some("hlx_enzyme"));
    }

    #[test]
    fn leaf_elements_are_pure_pcdata() {
        let mut dtd = Dtd::new();
        dtd.declare_element(ElementDecl {
            name: "list".into(),
            content: ContentModel::Children(ContentParticle::Name(
                "item".into(),
                Repetition::ZeroOrMore,
            )),
        });
        dtd.declare_element(ElementDecl {
            name: "item".into(),
            content: pcdata(),
        });
        dtd.declare_element(ElementDecl {
            name: "mixed".into(),
            content: ContentModel::Mixed(vec!["item".into()]),
        });
        assert_eq!(dtd.leaf_elements(), vec!["item"]);
    }

    #[test]
    fn content_model_display() {
        let seq = ContentModel::Children(ContentParticle::Sequence(
            vec![
                ContentParticle::Name("enzyme_id".into(), Repetition::One),
                ContentParticle::Name("enzyme_description".into(), Repetition::OneOrMore),
                ContentParticle::Name("catalytic_activity".into(), Repetition::ZeroOrMore),
            ],
            Repetition::One,
        ));
        assert_eq!(
            seq.to_string(),
            "(enzyme_id,enzyme_description+,catalytic_activity*)"
        );
        let choice = ContentModel::Children(ContentParticle::Choice(
            vec![
                ContentParticle::Name("a".into(), Repetition::One),
                ContentParticle::Name("b".into(), Repetition::Optional),
            ],
            Repetition::OneOrMore,
        ));
        assert_eq!(choice.to_string(), "(a|b?)+");
        assert_eq!(ContentModel::Mixed(vec![]).to_string(), "(#PCDATA)");
        assert_eq!(
            ContentModel::Mixed(vec!["em".into()]).to_string(),
            "(#PCDATA|em)*"
        );
        assert_eq!(
            ContentModel::Children(ContentParticle::Name("x".into(), Repetition::ZeroOrMore))
                .to_string(),
            "(x)*"
        );
    }

    #[test]
    fn dtd_display_includes_attlists() {
        let mut dtd = Dtd::new();
        dtd.declare_element(ElementDecl {
            name: "disease".into(),
            content: pcdata(),
        });
        dtd.declare_attribute(
            "disease",
            AttrDecl {
                name: "mim_id".into(),
                ty: AttrType::Cdata,
                default: AttrDefault::Required,
            },
        );
        let s = dtd.to_string();
        assert!(s.contains("<!ELEMENT disease (#PCDATA)>"), "{s}");
        assert!(s.contains("<!ATTLIST disease"), "{s}");
        assert!(s.contains("mim_id CDATA #REQUIRED"), "{s}");
    }

    #[test]
    fn attr_type_display() {
        assert_eq!(
            AttrType::Enumeration(vec!["x".into(), "y".into()]).to_string(),
            "(x|y)"
        );
        assert_eq!(AttrDefault::Fixed("v".into()).to_string(), "#FIXED \"v\"");
        assert_eq!(AttrDefault::Default("d".into()).to_string(), "\"d\"");
    }
}
