//! Parser for external-subset style DTD text.
//!
//! Accepts a sequence of `<!ELEMENT ...>` and `<!ATTLIST ...>` declarations
//! with interleaved comments, i.e. exactly the shape of Figure 5 in the
//! paper. Parameter entities and conditional sections are out of scope —
//! the pipeline neither generates nor consumes them.

use crate::dtd::model::{
    AttrDecl, AttrDefault, AttrType, ContentModel, ContentParticle, Dtd, ElementDecl, Repetition,
};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::name::{is_name_char, is_name_start_char, is_valid_name};

/// Parses DTD text into a [`Dtd`].
pub fn parse_dtd(input: &str) -> XmlResult<Dtd> {
    let mut parser = DtdParser { input, pos: 0 };
    parser.parse()
}

struct DtdParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> DtdParser<'a> {
    fn parse(&mut self) -> XmlResult<Dtd> {
        let mut dtd = Dtd::new();
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                break;
            }
            if self.starts_with("<!--") {
                self.pos += 4;
                match self.input[self.pos..].find("-->") {
                    Some(offset) => self.pos += offset + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("<?") {
                // Skip an XML declaration or PI heading the file.
                match self.input[self.pos..].find("?>") {
                    Some(offset) => self.pos += offset + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.starts_with("<!ELEMENT") {
                self.pos += "<!ELEMENT".len();
                self.parse_element(&mut dtd)?;
            } else if self.starts_with("<!ATTLIST") {
                self.pos += "<!ATTLIST".len();
                self.parse_attlist(&mut dtd)?;
            } else {
                return Err(self.err("expected <!ELEMENT ...> or <!ATTLIST ...>"));
            }
        }
        Ok(dtd)
    }

    fn err(&self, msg: &str) -> XmlError {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|b| *b == b'\n').count() as u32 + 1;
        let column = (self.pos - consumed.rfind('\n').map(|i| i + 1).unwrap_or(0)) as u32 + 1;
        XmlError::at(XmlErrorKind::Dtd(msg.to_string()), line, column)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> XmlResult<()> {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(&format!("expected {c:?}")))
        }
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        self.skip_ws();
        let start = self.pos;
        let mut chars = self.input[self.pos..].chars();
        match chars.next() {
            Some(c) if is_name_start_char(c) => self.pos += c.len_utf8(),
            _ => return Err(self.err("expected a name")),
        }
        for c in chars {
            if is_name_char(c) {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_repetition(&mut self) -> Repetition {
        match self.peek() {
            Some('?') => {
                self.pos += 1;
                Repetition::Optional
            }
            Some('*') => {
                self.pos += 1;
                Repetition::ZeroOrMore
            }
            Some('+') => {
                self.pos += 1;
                Repetition::OneOrMore
            }
            _ => Repetition::One,
        }
    }

    fn parse_element(&mut self, dtd: &mut Dtd) -> XmlResult<()> {
        let name = self.parse_name()?;
        self.skip_ws();
        let content = if self.starts_with("EMPTY") {
            self.pos += "EMPTY".len();
            ContentModel::Empty
        } else if self.starts_with("ANY") {
            self.pos += "ANY".len();
            ContentModel::Any
        } else if self.peek() == Some('(') {
            self.parse_paren_model()?
        } else {
            return Err(self.err("expected EMPTY, ANY or a parenthesized content model"));
        };
        self.skip_ws();
        self.eat('>')?;
        dtd.declare_element(ElementDecl { name, content });
        Ok(())
    }

    /// Parses a parenthesized content model: either mixed
    /// `(#PCDATA ...)` or a children particle.
    fn parse_paren_model(&mut self) -> XmlResult<ContentModel> {
        // Look ahead for #PCDATA immediately after the open paren.
        let save = self.pos;
        self.eat('(')?;
        self.skip_ws();
        if self.starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            let mut names = Vec::new();
            loop {
                self.skip_ws();
                match self.peek() {
                    Some('|') => {
                        self.pos += 1;
                        names.push(self.parse_name()?);
                    }
                    Some(')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected '|' or ')' in mixed content")),
                }
            }
            if !names.is_empty() {
                // Mixed content with elements must be starred: (#PCDATA|a)*.
                if self.peek() == Some('*') {
                    self.pos += 1;
                } else {
                    return Err(self.err("mixed content with elements requires '*'"));
                }
            } else if self.peek() == Some('*') {
                // (#PCDATA)* is legal and equivalent to (#PCDATA).
                self.pos += 1;
            }
            return Ok(ContentModel::Mixed(names));
        }
        self.pos = save;
        let particle = self.parse_particle()?;
        Ok(ContentModel::Children(particle))
    }

    /// Parses a content particle: a name or a parenthesized group, with a
    /// trailing repetition.
    fn parse_particle(&mut self) -> XmlResult<ContentParticle> {
        self.skip_ws();
        if self.peek() == Some('(') {
            self.eat('(')?;
            let first = self.parse_particle()?;
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    let mut items = vec![first];
                    while self.peek() == Some(',') {
                        self.pos += 1;
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    self.eat(')')?;
                    Ok(ContentParticle::Sequence(items, self.parse_repetition()))
                }
                Some('|') => {
                    let mut items = vec![first];
                    while self.peek() == Some('|') {
                        self.pos += 1;
                        items.push(self.parse_particle()?);
                        self.skip_ws();
                    }
                    self.eat(')')?;
                    Ok(ContentParticle::Choice(items, self.parse_repetition()))
                }
                Some(')') => {
                    self.pos += 1;
                    let rep = self.parse_repetition();
                    // A single-item group: the group repetition wraps the item.
                    Ok(match rep {
                        Repetition::One => first,
                        rep => match first {
                            // `(name)` with a suffix on the group collapses
                            // onto the name when the name itself had none.
                            ContentParticle::Name(n, Repetition::One) => {
                                ContentParticle::Name(n, rep)
                            }
                            other => ContentParticle::Sequence(vec![other], rep),
                        },
                    })
                }
                _ => Err(self.err("expected ',', '|' or ')' in content particle")),
            }
        } else {
            let name = self.parse_name()?;
            if !is_valid_name(&name) {
                return Err(self.err(&format!("invalid element name {name:?}")));
            }
            Ok(ContentParticle::Name(name, self.parse_repetition()))
        }
    }

    fn parse_attlist(&mut self, dtd: &mut Dtd) -> XmlResult<()> {
        let element = self.parse_name()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('>') {
                self.pos += 1;
                return Ok(());
            }
            let attr_name = self.parse_name()?;
            self.skip_ws();
            let ty = if self.starts_with("CDATA") {
                self.pos += "CDATA".len();
                AttrType::Cdata
            } else if self.starts_with("NMTOKENS") {
                self.pos += "NMTOKENS".len();
                AttrType::NmTokens
            } else if self.starts_with("NMTOKEN") {
                self.pos += "NMTOKEN".len();
                AttrType::NmToken
            } else if self.starts_with("IDREF") {
                self.pos += "IDREF".len();
                AttrType::IdRef
            } else if self.starts_with("ID") {
                self.pos += "ID".len();
                AttrType::Id
            } else if self.peek() == Some('(') {
                self.eat('(')?;
                let mut values = vec![self.parse_name()?];
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some('|') => {
                            self.pos += 1;
                            values.push(self.parse_name()?);
                        }
                        Some(')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected '|' or ')' in enumeration")),
                    }
                }
                AttrType::Enumeration(values)
            } else {
                return Err(self.err("expected an attribute type"));
            };
            self.skip_ws();
            let default = if self.starts_with("#REQUIRED") {
                self.pos += "#REQUIRED".len();
                AttrDefault::Required
            } else if self.starts_with("#IMPLIED") {
                self.pos += "#IMPLIED".len();
                AttrDefault::Implied
            } else if self.starts_with("#FIXED") {
                self.pos += "#FIXED".len();
                AttrDefault::Fixed(self.parse_quoted()?)
            } else if matches!(self.peek(), Some('"' | '\'')) {
                AttrDefault::Default(self.parse_quoted()?)
            } else {
                return Err(self.err("expected a default declaration"));
            };
            dtd.declare_attribute(
                &element,
                AttrDecl {
                    name: attr_name,
                    ty,
                    default,
                },
            );
        }
    }

    fn parse_quoted(&mut self) -> XmlResult<String> {
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err("expected a quoted value")),
        };
        self.pos += 1;
        match self.input[self.pos..].find(quote) {
            Some(offset) => {
                let value = self.input[self.pos..self.pos + offset].to_string();
                self.pos += offset + 1;
                Ok(value)
            }
            None => Err(self.err("unterminated quoted value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ENZYME DTD of Figure 5 (names sanitized to valid XML names).
    pub const ENZYME_DTD: &str = r#"
<!ELEMENT hlx_enzyme (db_entry)>
<!ELEMENT db_entry (enzyme_id,enzyme_description+,alternate_name_list,
  catalytic_activity*,cofactor_list,comment_list,prosite_reference*,
  swissprot_reference_list,disease_list)>
<!ELEMENT enzyme_id (#PCDATA)>
<!ELEMENT enzyme_description (#PCDATA)>
<!ELEMENT alternate_name_list (alternate_name*)>
<!ELEMENT alternate_name (#PCDATA)>
<!ELEMENT catalytic_activity (#PCDATA)>
<!ELEMENT cofactor_list (cofactor*)>
<!ELEMENT cofactor (#PCDATA)>
<!ELEMENT comment_list (comment*)>
<!ELEMENT comment (#PCDATA)>
<!ELEMENT prosite_reference (#PCDATA)>
<!ATTLIST prosite_reference
  prosite_accession_number NMTOKEN #REQUIRED
>
<!ELEMENT swissprot_reference_list (reference*)>
<!ELEMENT reference (#PCDATA)>
<!ATTLIST reference
  name CDATA #REQUIRED
  swissprot_accession_number NMTOKEN #REQUIRED
>
<!ELEMENT disease_list (disease*)>
<!ELEMENT disease (#PCDATA)>
<!ATTLIST disease
  mim_id CDATA #REQUIRED
>
"#;

    #[test]
    fn parses_figure5_enzyme_dtd() {
        let dtd = parse_dtd(ENZYME_DTD).unwrap();
        assert_eq!(dtd.root(), Some("hlx_enzyme"));
        assert_eq!(dtd.elements().len(), 16);
        let entry = dtd.element("db_entry").unwrap();
        match &entry.content {
            ContentModel::Children(ContentParticle::Sequence(items, Repetition::One)) => {
                assert_eq!(items.len(), 9);
                assert_eq!(
                    items[1],
                    ContentParticle::Name("enzyme_description".into(), Repetition::OneOrMore)
                );
                assert_eq!(
                    items[3],
                    ContentParticle::Name("catalytic_activity".into(), Repetition::ZeroOrMore)
                );
            }
            other => panic!("unexpected content model: {other:?}"),
        }
        let ref_attrs = dtd.attributes("reference");
        assert_eq!(ref_attrs.len(), 2);
        assert_eq!(ref_attrs[0].name, "name");
        assert_eq!(ref_attrs[0].ty, AttrType::Cdata);
        assert_eq!(ref_attrs[1].ty, AttrType::NmToken);
        assert!(matches!(ref_attrs[1].default, AttrDefault::Required));
    }

    #[test]
    fn round_trips_through_display() {
        let dtd = parse_dtd(ENZYME_DTD).unwrap();
        let printed = dtd.to_string();
        let reparsed = parse_dtd(&printed).unwrap();
        assert_eq!(dtd, reparsed);
    }

    #[test]
    fn parses_choice_and_nested_groups() {
        let dtd = parse_dtd("<!ELEMENT a ((b|c)+,(d,e)?)>").unwrap();
        match &dtd.element("a").unwrap().content {
            ContentModel::Children(ContentParticle::Sequence(items, _)) => {
                assert!(
                    matches!(&items[0], ContentParticle::Choice(cs, Repetition::OneOrMore) if cs.len() == 2)
                );
                assert!(
                    matches!(&items[1], ContentParticle::Sequence(ss, Repetition::Optional) if ss.len() == 2)
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_empty_any_and_mixed() {
        let dtd = parse_dtd(
            "<!ELEMENT e EMPTY><!ELEMENT a ANY><!ELEMENT m (#PCDATA|em|strong)*><!ELEMENT p (#PCDATA)>",
        )
        .unwrap();
        assert_eq!(dtd.element("e").unwrap().content, ContentModel::Empty);
        assert_eq!(dtd.element("a").unwrap().content, ContentModel::Any);
        assert_eq!(
            dtd.element("m").unwrap().content,
            ContentModel::Mixed(vec!["em".into(), "strong".into()])
        );
        assert_eq!(
            dtd.element("p").unwrap().content,
            ContentModel::Mixed(vec![])
        );
    }

    #[test]
    fn single_name_group_with_repetition() {
        let dtd = parse_dtd("<!ELEMENT l (item)*>").unwrap();
        assert_eq!(
            dtd.element("l").unwrap().content,
            ContentModel::Children(ContentParticle::Name("item".into(), Repetition::ZeroOrMore))
        );
    }

    #[test]
    fn parses_enumeration_and_defaults() {
        let dtd = parse_dtd(
            r#"<!ELEMENT x EMPTY>
               <!ATTLIST x kind (dna|rna|protein) "dna"
                           note CDATA #IMPLIED
                           ver NMTOKEN #FIXED "1">"#,
        )
        .unwrap();
        let attrs = dtd.attributes("x");
        assert_eq!(attrs.len(), 3);
        assert_eq!(
            attrs[0].ty,
            AttrType::Enumeration(vec!["dna".into(), "rna".into(), "protein".into()])
        );
        assert_eq!(attrs[0].default, AttrDefault::Default("dna".into()));
        assert_eq!(attrs[1].default, AttrDefault::Implied);
        assert_eq!(attrs[2].default, AttrDefault::Fixed("1".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let dtd = parse_dtd("<!-- header --><!ELEMENT a EMPTY><!-- tail -->").unwrap();
        assert_eq!(dtd.elements().len(), 1);
    }

    #[test]
    fn mixed_with_elements_requires_star() {
        assert!(parse_dtd("<!ELEMENT m (#PCDATA|em)>").is_err());
    }

    #[test]
    fn errors_report_line_numbers() {
        let err = parse_dtd("<!ELEMENT a EMPTY>\n<!BOGUS>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::Dtd(_)));
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn rejects_truncated_input() {
        assert!(parse_dtd("<!ELEMENT a (b,").is_err());
        assert!(parse_dtd("<!ATTLIST a b CDATA").is_err());
        assert!(parse_dtd("<!-- unterminated").is_err());
    }
}
