//! Document Type Definitions.
//!
//! The Data Hounds XML-Transformer is driven by a DTD per source database
//! (paper §2.1): Figure 5 gives the DTD generated for the ENZYME database,
//! and XomatiQ's visual interface displays "the DTD structure of the XML
//! documents to be queried" (§3.1). This module provides:
//!
//! * [`model`] — the DTD data model: element declarations with content
//!   models (`EMPTY`, `ANY`, mixed, children particles with `?`/`*`/`+`
//!   repetition) and attribute lists with types and defaults;
//! * [`parser`] — a parser for external-subset style DTD text
//!   (`<!ELEMENT ...>` / `<!ATTLIST ...>` declarations);
//! * [`validator`] — validation of a [`crate::Document`] against a DTD,
//!   which is how "valid XML documents of the corresponding data" (§1.1)
//!   is enforced before shredding.

pub mod model;
pub mod parser;
pub mod validator;

pub use model::{
    AttrDecl, AttrDefault, AttrType, ContentModel, ContentParticle, Dtd, ElementDecl, Repetition,
};
pub use parser::parse_dtd;
pub use validator::validate;
