//! Arena-backed XML document tree.
//!
//! Every node lives in a flat `Vec` owned by the [`Document`]; nodes refer to
//! each other by [`NodeId`]. This gives the shredder and the tagger exactly
//! what the paper needs from a document model:
//!
//! * **stable ids** — a shredded tuple can refer back to its source node;
//! * **document order** — nodes are appended in document order during
//!   parsing and construction, so comparing [`NodeId`]s compares document
//!   positions, and [`Document::ordinal`] yields the per-parent ordinal the
//!   generic relational schema stores as a data value (paper §2.2);
//! * **cheap traversal** — parent/first-child/next-sibling links make
//!   descendant iteration allocation-free.

use std::fmt;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::name::is_valid_name;

/// Index of a node within its [`Document`] arena.
///
/// Ids are assigned in document order: for nodes `a` and `b` of the same
/// document, `a < b` iff `a` precedes `b` in document order. This is the
/// property the BEFORE/AFTER operators of the query language rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The id of the synthetic document root (parent of the root element).
    pub const DOCUMENT: NodeId = NodeId(0);

    /// The arena index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The arena index as a `u32` (used by the shredder as the stored id).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A single attribute on an element, in the order it was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (a valid XML name).
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document node; exactly one per document, always id 0.
    Document,
    /// An element with a name and attributes.
    Element {
        /// Element name.
        name: String,
        /// Attributes in declaration order.
        attributes: Vec<Attribute>,
    },
    /// A text node (unescaped content).
    Text(String),
    /// A comment (`<!-- ... -->`).
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    ProcessingInstruction {
        /// The PI target name.
        target: String,
        /// The PI data text.
        data: String,
    },
}

/// A node in the arena: payload plus structural links.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
}

impl Node {
    /// The node's payload.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The element name, if this node is an element.
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The attributes, if this node is an element (empty slice otherwise).
    pub fn attributes(&self) -> &[Attribute] {
        match &self.kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// The value of attribute `name`, if this node is an element carrying it.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes()
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The text content, if this node is a text node.
    pub fn text(&self) -> Option<&str> {
        match &self.kind {
            NodeKind::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Whether this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }

    /// Whether this node is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self.kind, NodeKind::Text(_))
    }
}

/// An ordered XML document.
///
/// Construction is append-only: children are always added after existing
/// children of their parent, which is how parsing naturally proceeds and how
/// the tagger rebuilds documents from order-sorted tuples.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                first_child: None,
                last_child: None,
                next_sibling: None,
                prev_sibling: None,
            }],
        }
    }

    /// Creates a document with a root element named `name`.
    pub fn with_root(name: &str) -> XmlResult<(Self, NodeId)> {
        let mut doc = Document::new();
        let root = doc.append_element(NodeId::DOCUMENT, name)?;
        Ok((doc, root))
    }

    /// Number of nodes, including the document node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document holds only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrows the node with id `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The root element, if one has been added.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(NodeId::DOCUMENT)
            .find(|id| self.node(*id).is_element())
    }

    /// Appends a new element named `name` as the last child of `parent`.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> XmlResult<NodeId> {
        if !is_valid_name(name) {
            return Err(XmlError::new(XmlErrorKind::InvalidName(name.to_string())));
        }
        Ok(self.append_node(
            parent,
            NodeKind::Element {
                name: name.to_string(),
                attributes: Vec::new(),
            },
        ))
    }

    /// Appends a text node as the last child of `parent`.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append_node(parent, NodeKind::Text(text.to_string()))
    }

    /// Appends a comment as the last child of `parent`.
    pub fn append_comment(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append_node(parent, NodeKind::Comment(text.to_string()))
    }

    /// Appends a processing instruction as the last child of `parent`.
    pub fn append_pi(&mut self, parent: NodeId, target: &str, data: &str) -> XmlResult<NodeId> {
        if !is_valid_name(target) {
            return Err(XmlError::new(XmlErrorKind::InvalidName(target.to_string())));
        }
        Ok(self.append_node(
            parent,
            NodeKind::ProcessingInstruction {
                target: target.to_string(),
                data: data.to_string(),
            },
        ))
    }

    /// Sets attribute `name` to `value` on element `id`, replacing any
    /// existing value and otherwise appending in declaration order.
    pub fn set_attribute(&mut self, id: NodeId, name: &str, value: &str) -> XmlResult<()> {
        if !is_valid_name(name) {
            return Err(XmlError::new(XmlErrorKind::InvalidName(name.to_string())));
        }
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(attr) = attributes.iter_mut().find(|a| a.name == name) {
                    attr.value = value.to_string();
                } else {
                    attributes.push(Attribute {
                        name: name.to_string(),
                        value: value.to_string(),
                    });
                }
                Ok(())
            }
            _ => Err(XmlError::new(XmlErrorKind::Malformed(format!(
                "node {id} is not an element; cannot set attribute {name:?}"
            )))),
        }
    }

    fn append_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let prev = self.nodes[parent.index()].last_child;
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: prev,
        });
        if let Some(prev) = prev {
            self.nodes[prev.index()].next_sibling = Some(id);
        } else {
            self.nodes[parent.index()].first_child = Some(id);
        }
        self.nodes[parent.index()].last_child = Some(id);
        id
    }

    /// The parent of `id`, or `None` for the document node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Iterates over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.node(id).first_child,
        }
    }

    /// Iterates over the element children of `id` in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(|c| self.node(*c).is_element())
    }

    /// The first child element of `id` named `name`.
    pub fn child_element(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements(id)
            .find(|c| self.node(*c).name() == Some(name))
    }

    /// Iterates over `id` and all its descendants in document order.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            root: id,
            next: Some(id),
        }
    }

    /// Iterates over all element descendants of `id` (excluding `id`).
    pub fn descendant_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants(id)
            .skip(1)
            .filter(|d| self.node(*d).is_element())
    }

    /// The 0-based position of `id` among all children of its parent.
    ///
    /// This is the "order as a data value" the shredder persists so that
    /// documents can be reconstructed and order predicates evaluated on the
    /// relational side (paper §2.2).
    pub fn ordinal(&self, id: NodeId) -> u32 {
        let mut ord = 0;
        let mut cur = self.node(id).prev_sibling;
        while let Some(prev) = cur {
            ord += 1;
            cur = self.node(prev).prev_sibling;
        }
        ord
    }

    /// Concatenation of all text descendants of `id` in document order.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants(id) {
            if let NodeKind::Text(t) = &self.node(d).kind {
                out.push_str(t);
            }
        }
        out
    }

    /// The depth of `id` (document node = 0, root element = 1, ...).
    pub fn depth(&self, id: NodeId) -> u32 {
        let mut depth = 0;
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            depth += 1;
            cur = self.node(p).parent;
        }
        depth
    }

    /// The slash-separated label path of `id` from the root, e.g.
    /// `/hlx_enzyme/db_entry/enzyme_id`. Non-element nodes contribute no
    /// step; the path of a text node equals the path of its parent element.
    pub fn label_path(&self, id: NodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            if let Some(name) = self.node(n).name() {
                labels.push(name);
            }
            cur = self.node(n).parent;
        }
        let mut out = String::new();
        for label in labels.iter().rev() {
            out.push('/');
            out.push_str(label);
        }
        out
    }

    /// Selects all elements whose root-to-node label chain matches the
    /// pattern — client-side path evaluation over an in-memory document
    /// (the warehouse-side equivalent is XQ2SQL's pattern expansion).
    pub fn select<'a>(&'a self, pattern: &'a crate::path::LabelPath) -> Vec<NodeId> {
        let Some(root) = self.root_element() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut labels: Vec<&str> = Vec::new();
        self.select_walk(root, pattern, &mut labels, &mut out);
        out
    }

    fn select_walk<'a>(
        &'a self,
        node: NodeId,
        pattern: &crate::path::LabelPath,
        labels: &mut Vec<&'a str>,
        out: &mut Vec<NodeId>,
    ) {
        let Some(name) = self.node(node).name() else {
            return;
        };
        labels.push(name);
        if pattern.matches(labels) {
            out.push(node);
        }
        for child in self.children(node) {
            if self.node(child).is_element() {
                self.select_walk(child, pattern, labels, out);
            }
        }
        labels.pop();
    }

    /// Structural equality ignoring node ids: same tree shape, names,
    /// attributes (order-sensitive) and text.
    pub fn structurally_equal(&self, other: &Document) -> bool {
        fn eq(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            if a.node(an).kind != b.node(bn).kind {
                return false;
            }
            let mut ac = a.children(an);
            let mut bc = b.children(bn);
            loop {
                match (ac.next(), bc.next()) {
                    (None, None) => return true,
                    (Some(x), Some(y)) => {
                        if !eq(a, x, b, y) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        eq(self, NodeId::DOCUMENT, other, NodeId::DOCUMENT)
    }
}

/// Iterator over the children of a node. See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// Depth-first (document order) iterator. See [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Advance: first child, else next sibling, else climb until a
        // sibling exists or we pass the subtree root.
        let node = self.doc.node(cur);
        self.next = if let Some(child) = node.first_child {
            Some(child)
        } else {
            let mut walk = cur;
            loop {
                if walk == self.root {
                    break None;
                }
                if let Some(sib) = self.doc.node(walk).next_sibling {
                    break Some(sib);
                }
                match self.doc.node(walk).parent {
                    Some(p) => walk = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId) {
        let (mut doc, root) = Document::with_root("hlx_enzyme").unwrap();
        let entry = doc.append_element(root, "db_entry").unwrap();
        let id = doc.append_element(entry, "enzyme_id").unwrap();
        doc.append_text(id, "1.14.17.3");
        let desc = doc.append_element(entry, "enzyme_description").unwrap();
        doc.append_text(desc, "Peptidylglycine monooxygenase.");
        let refs = doc.append_element(entry, "prosite_reference").unwrap();
        doc.set_attribute(refs, "prosite_accession_number", "PDOC00080")
            .unwrap();
        (doc, root)
    }

    #[test]
    fn construction_and_navigation() {
        let (doc, root) = sample();
        assert_eq!(doc.root_element(), Some(root));
        let entry = doc.child_element(root, "db_entry").unwrap();
        assert_eq!(doc.child_elements(entry).count(), 3);
        let id = doc.child_element(entry, "enzyme_id").unwrap();
        assert_eq!(doc.text_content(id), "1.14.17.3");
        assert_eq!(doc.parent(id), Some(entry));
        assert_eq!(doc.depth(id), 3);
    }

    #[test]
    fn node_ids_follow_document_order() {
        let (doc, root) = sample();
        let order: Vec<NodeId> = doc.descendants(root).collect();
        for pair in order.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn ordinals_count_preceding_siblings() {
        let (doc, root) = sample();
        let entry = doc.child_element(root, "db_entry").unwrap();
        let kids: Vec<NodeId> = doc.children(entry).collect();
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(doc.ordinal(*k), i as u32);
        }
    }

    #[test]
    fn attributes() {
        let (mut doc, root) = sample();
        let entry = doc.child_element(root, "db_entry").unwrap();
        let pref = doc.child_element(entry, "prosite_reference").unwrap();
        assert_eq!(
            doc.node(pref).attribute("prosite_accession_number"),
            Some("PDOC00080")
        );
        doc.set_attribute(pref, "prosite_accession_number", "PDOC99999")
            .unwrap();
        assert_eq!(
            doc.node(pref).attribute("prosite_accession_number"),
            Some("PDOC99999")
        );
        assert_eq!(doc.node(pref).attributes().len(), 1);
        assert!(doc.set_attribute(pref, "bad name", "x").is_err());
    }

    #[test]
    fn set_attribute_on_text_node_fails() {
        let (mut doc, root) = sample();
        let entry = doc.child_element(root, "db_entry").unwrap();
        let id = doc.child_element(entry, "enzyme_id").unwrap();
        let text = doc.children(id).next().unwrap();
        assert!(doc.set_attribute(text, "a", "b").is_err());
    }

    #[test]
    fn invalid_element_name_rejected() {
        let mut doc = Document::new();
        assert!(doc.append_element(NodeId::DOCUMENT, "1bad").is_err());
        assert!(doc.append_element(NodeId::DOCUMENT, "").is_err());
    }

    #[test]
    fn label_paths() {
        let (doc, root) = sample();
        let entry = doc.child_element(root, "db_entry").unwrap();
        let id = doc.child_element(entry, "enzyme_id").unwrap();
        assert_eq!(doc.label_path(id), "/hlx_enzyme/db_entry/enzyme_id");
        let text = doc.children(id).next().unwrap();
        assert_eq!(doc.label_path(text), "/hlx_enzyme/db_entry/enzyme_id");
        assert_eq!(doc.label_path(root), "/hlx_enzyme");
    }

    #[test]
    fn select_evaluates_path_patterns() {
        use crate::path::LabelPath;
        let (mut doc, root) = Document::with_root("r").unwrap();
        let a1 = doc.append_element(root, "a").unwrap();
        let b1 = doc.append_element(a1, "b").unwrap();
        let a2 = doc.append_element(root, "a").unwrap();
        let c = doc.append_element(a2, "c").unwrap();
        let b2 = doc.append_element(c, "b").unwrap();

        let direct = LabelPath::parse("/r/a/b").unwrap();
        assert_eq!(doc.select(&direct), vec![b1]);
        let descend = LabelPath::parse("//b").unwrap();
        assert_eq!(doc.select(&descend), vec![b1, b2]); // document order
        let anywhere_a = LabelPath::parse("//a").unwrap();
        assert_eq!(doc.select(&anywhere_a), vec![a1, a2]);
        let missing = LabelPath::parse("//zz").unwrap();
        assert!(doc.select(&missing).is_empty());
        // Empty document selects nothing.
        let empty = Document::new();
        assert!(empty.select(&descend).is_empty());
    }

    #[test]
    fn descendants_covers_whole_subtree_once() {
        let (doc, root) = sample();
        let all: Vec<NodeId> = doc.descendants(root).collect();
        assert_eq!(all.len(), doc.len() - 1); // everything except document node
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn structural_equality_ignores_construction_history() {
        let (a, _) = sample();
        let (b, _) = sample();
        assert!(a.structurally_equal(&b));
        let (mut c, root) = sample();
        c.append_text(root, "extra");
        assert!(!a.structurally_equal(&c));
    }

    #[test]
    fn text_content_concatenates_in_order() {
        let (mut doc, root) = Document::with_root("r").unwrap();
        let a = doc.append_element(root, "a").unwrap();
        doc.append_text(a, "one ");
        let b = doc.append_element(a, "b").unwrap();
        doc.append_text(b, "two ");
        doc.append_text(a, "three");
        assert_eq!(doc.text_content(root), "one two three");
    }

    #[test]
    fn empty_document() {
        let doc = Document::new();
        assert!(doc.is_empty());
        assert_eq!(doc.root_element(), None);
        assert_eq!(doc.len(), 1);
    }
}
