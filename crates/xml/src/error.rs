//! Error type shared by the XML parser, DTD parser and validator.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while parsing, validating or addressing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    /// 1-based line of the offending input position, when known.
    line: Option<u32>,
    /// 1-based column of the offending input position, when known.
    column: Option<u32>,
}

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(String),
    /// A construct was syntactically malformed.
    Malformed(String),
    /// An element name, attribute name or target was not a valid XML name.
    InvalidName(String),
    /// An end tag did not match the open element.
    MismatchedTag {
        /// The name of the currently open element.
        expected: String,
        /// The end-tag name actually found.
        found: String,
    },
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// An unknown entity reference such as `&foo;`.
    UnknownEntity(String),
    /// A DTD declaration was malformed.
    Dtd(String),
    /// A document failed DTD validation.
    Validation(String),
    /// A label path string was malformed.
    Path(String),
}

impl XmlError {
    /// Creates an error with no position information.
    pub fn new(kind: XmlErrorKind) -> Self {
        XmlError {
            kind,
            line: None,
            column: None,
        }
    }

    /// Creates an error positioned at `line:column` (both 1-based).
    pub fn at(kind: XmlErrorKind, line: u32, column: u32) -> Self {
        XmlError {
            kind,
            line: Some(line),
            column: Some(column),
        }
    }

    /// The error category.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// The 1-based line of the error, when known.
    pub fn line(&self) -> Option<u32> {
        self.line
    }

    /// The 1-based column of the error, when known.
    pub fn column(&self) -> Option<u32> {
        self.column
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            XmlErrorKind::UnexpectedEof(what) => {
                write!(f, "unexpected end of input while parsing {what}")?
            }
            XmlErrorKind::Malformed(msg) => write!(f, "malformed XML: {msg}")?,
            XmlErrorKind::InvalidName(name) => write!(f, "invalid XML name: {name:?}")?,
            XmlErrorKind::MismatchedTag { expected, found } => write!(
                f,
                "mismatched end tag: expected </{expected}>, found </{found}>"
            )?,
            XmlErrorKind::DuplicateAttribute(name) => write!(f, "duplicate attribute {name:?}")?,
            XmlErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};")?,
            XmlErrorKind::Dtd(msg) => write!(f, "malformed DTD: {msg}")?,
            XmlErrorKind::Validation(msg) => write!(f, "validation error: {msg}")?,
            XmlErrorKind::Path(msg) => write!(f, "malformed label path: {msg}")?,
        }
        if let (Some(line), Some(column)) = (self.line, self.column) {
            write!(f, " at {line}:{column}")?;
        }
        Ok(())
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = XmlError::at(XmlErrorKind::Malformed("broken".into()), 3, 17);
        assert_eq!(err.to_string(), "malformed XML: broken at 3:17");
        assert_eq!(err.line(), Some(3));
        assert_eq!(err.column(), Some(17));
    }

    #[test]
    fn display_without_position() {
        let err = XmlError::new(XmlErrorKind::UnknownEntity("nbsp".into()));
        assert_eq!(err.to_string(), "unknown entity &nbsp;");
        assert_eq!(err.line(), None);
    }

    #[test]
    fn mismatched_tag_message() {
        let err = XmlError::new(XmlErrorKind::MismatchedTag {
            expected: "a".into(),
            found: "b".into(),
        });
        assert_eq!(
            err.to_string(),
            "mismatched end tag: expected </a>, found </b>"
        );
    }
}
