//! XML serialization.
//!
//! Two modes: compact (no inserted whitespace — safe for round-tripping and
//! for hashing document content during update detection) and pretty
//! (indented, matching the presentation style of Figure 6 in the paper).

use std::fmt::Write as _;

use crate::document::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

/// Serialization options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub declaration: bool,
    /// Indent nested elements; `None` writes compact output.
    pub indent: Option<usize>,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            declaration: true,
            indent: None,
        }
    }
}

/// Serializes the document compactly, with an XML declaration.
pub fn to_string(doc: &Document) -> String {
    write_document(doc, &WriteOptions::default())
}

/// Serializes the document with two-space indentation, matching the layout
/// of the paper's Figure 6.
pub fn to_string_pretty(doc: &Document) -> String {
    write_document(
        doc,
        &WriteOptions {
            declaration: true,
            indent: Some(2),
        },
    )
}

/// Serializes `doc` according to `options`.
pub fn write_document(doc: &Document, options: &WriteOptions) -> String {
    let mut out = String::with_capacity(256);
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    let mut first = true;
    for child in doc.children(NodeId::DOCUMENT) {
        if !first && options.indent.is_some() {
            out.push('\n');
        }
        write_node(doc, child, options, 0, &mut out);
        first = false;
    }
    if options.indent.is_some() && !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Serializes the subtree rooted at `id` (without a declaration).
pub fn write_subtree(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(
        doc,
        id,
        &WriteOptions {
            declaration: false,
            indent: None,
        },
        0,
        &mut out,
    );
    out
}

fn write_node(doc: &Document, id: NodeId, options: &WriteOptions, depth: usize, out: &mut String) {
    match doc.node(id).kind() {
        NodeKind::Document => {
            for child in doc.children(id) {
                write_node(doc, child, options, depth, out);
            }
        }
        NodeKind::Element { name, attributes } => {
            indent(options, depth, out);
            out.push('<');
            out.push_str(name);
            for attr in attributes {
                let _ = write!(out, " {}=\"{}\"", attr.name, escape_attr(&attr.value));
            }
            let mut children = doc.children(id).peekable();
            if children.peek().is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            // An element whose only children are text is written inline even
            // in pretty mode, so text content round-trips byte-for-byte.
            let only_text = doc.children(id).all(|c| doc.node(c).is_text());
            if only_text {
                for child in children {
                    if let NodeKind::Text(t) = doc.node(child).kind() {
                        out.push_str(&escape_text(t));
                    }
                }
            } else {
                for child in children {
                    write_node(doc, child, options, depth + 1, out);
                }
                indent(options, depth, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(t) => {
            // Mixed content: never indent around text, it would change the data.
            out.push_str(&escape_text(t));
        }
        NodeKind::Comment(c) => {
            indent(options, depth, out);
            let _ = write!(out, "<!--{c}-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            indent(options, depth, out);
            if data.is_empty() {
                let _ = write!(out, "<?{target}?>");
            } else {
                let _ = write!(out, "<?{target} {data}?>");
            }
        }
    }
}

fn indent(options: &WriteOptions, depth: usize, out: &mut String) {
    if let Some(width) = options.indent {
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?><hlx_enzyme><db_entry><enzyme_id>1.14.17.3</enzyme_id><prosite_reference prosite_accession_number="PDOC00080"/></db_entry></hlx_enzyme>"#;
        let doc = parse(src).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn escapes_text_and_attributes() {
        let (mut doc, root) = Document::with_root("r").unwrap();
        doc.set_attribute(root, "a", "x<y & \"z\"").unwrap();
        doc.append_text(root, "1 < 2 & 3");
        let s = to_string(&doc);
        assert!(s.contains(r#"a="x&lt;y &amp; &quot;z&quot;""#), "{s}");
        assert!(s.contains("1 &lt; 2 &amp; 3"), "{s}");
        // And the output reparses to the same content.
        let doc2 = parse(&s).unwrap();
        assert!(doc.structurally_equal(&doc2));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_equal() {
        let src = "<a><b><c>x</c></b><d/></a>";
        let doc = parse(src).unwrap();
        let pretty = to_string_pretty(&doc);
        assert!(pretty.contains("\n  <b>"), "{pretty}");
        assert!(pretty.contains("\n    <c>x</c>"), "{pretty}");
        let doc2 = parse(&pretty).unwrap();
        assert!(doc.structurally_equal(&doc2));
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(
            to_string(&doc),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a><b/></a>"
        );
    }

    #[test]
    fn mixed_content_round_trip() {
        let src = "<p>alpha <em>beta</em> gamma</p>";
        let doc = parse(src).unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                declaration: false,
                indent: None,
            },
        );
        assert_eq!(out, src);
    }

    #[test]
    fn comments_and_pis_serialize() {
        let src = "<r><!-- note --><?app run?></r>";
        let doc = parse(src).unwrap();
        let out = write_document(
            &doc,
            &WriteOptions {
                declaration: false,
                indent: None,
            },
        );
        assert_eq!(out, src);
    }

    #[test]
    fn write_subtree_serializes_single_branch() {
        let doc = parse("<a><b>x</b><c>y</c></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.child_element(root, "b").unwrap();
        assert_eq!(write_subtree(&doc, b), "<b>x</b>");
    }
}
