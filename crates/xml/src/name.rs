//! XML name validation.
//!
//! Element and attribute names produced by the Data Hounds transformers are
//! derived from flat-file line codes and field labels, so they must be
//! checked against the XML 1.0 `Name` production before a document is built.
//! We implement the commonly-used ASCII-plus-letters subset of the spec: a
//! name starts with a letter, `_` or `:`, and continues with letters,
//! digits, `.`, `-`, `_` or `:`. Non-ASCII alphabetic characters are
//! accepted as letters, which covers every name the pipeline generates.

/// Returns `true` if `c` may start an XML name.
pub fn is_name_start_char(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// Returns `true` if `c` may appear after the first character of an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c) || c.is_ascii_digit() || c == '.' || c == '-'
}

/// Returns `true` if `s` is a valid XML `Name`.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => {}
        _ => return false,
    }
    chars.all(is_name_char)
}

/// Returns `true` if `s` is a valid XML `Nmtoken` (one or more name chars).
pub fn is_valid_nmtoken(s: &str) -> bool {
    !s.is_empty() && s.chars().all(is_name_char)
}

/// Converts an arbitrary label (for example a flat-file field name such as
/// `"prosite accession number"`) into a valid XML name by lowercasing ASCII
/// letters and replacing runs of invalid characters with single underscores.
/// An empty or all-invalid input becomes `"field"`; a leading character that
/// cannot start a name is prefixed with `_`.
pub fn sanitize_name(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_was_sep = false;
    for c in label.chars() {
        let c = c.to_ascii_lowercase();
        if is_name_char(c) && c != ':' {
            out.push(c);
            last_was_sep = false;
        } else if !last_was_sep && !out.is_empty() {
            out.push('_');
            last_was_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        return "field".to_string();
    }
    if !is_name_start_char(out.chars().next().expect("non-empty")) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_typical_names() {
        for name in [
            "db_entry",
            "enzyme_id",
            "hlx_enzyme",
            "a",
            "_x",
            "ns:tag",
            "x.y-z2",
        ] {
            assert!(is_valid_name(name), "{name} should be valid");
        }
    }

    #[test]
    fn rejects_invalid_names() {
        for name in ["", "1abc", "-x", ".y", "a b", "a&b", "<tag>"] {
            assert!(!is_valid_name(name), "{name} should be invalid");
        }
    }

    #[test]
    fn nmtoken_allows_leading_digit() {
        assert!(is_valid_nmtoken("1.14.17.3"));
        assert!(is_valid_nmtoken("PDOC00080"));
        assert!(!is_valid_nmtoken(""));
        assert!(!is_valid_nmtoken("a b"));
    }

    #[test]
    fn sanitize_flat_file_labels() {
        assert_eq!(
            sanitize_name("prosite accession number"),
            "prosite_accession_number"
        );
        assert_eq!(sanitize_name("Catalytic activity"), "catalytic_activity");
        assert_eq!(sanitize_name("EC number"), "ec_number");
        assert_eq!(sanitize_name("123"), "_123");
        assert_eq!(sanitize_name("***"), "field");
        assert_eq!(sanitize_name("trailing  sep!!"), "trailing_sep");
    }

    #[test]
    fn sanitize_is_idempotent() {
        for label in ["prosite accession number", "EC number", "abc", "A--B"] {
            let once = sanitize_name(label);
            assert_eq!(sanitize_name(&once), once);
            assert!(is_valid_name(&once));
        }
    }
}
