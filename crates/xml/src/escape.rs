//! Escaping and unescaping of XML character data and attribute values.
//!
//! Biological flat files are full of markup-significant characters —
//! catalytic activity strings such as `peptidylglycine + ascorbate + O(2) =
//! ...` contain `<`-free but `&`-rich chemistry, and comment lines may carry
//! arbitrary punctuation — so correct escaping is what keeps the Figure 2 →
//! Figure 6 conversion lossless.

use std::borrow::Cow;

use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// Escapes `&`, `<` and `>` in element text content.
///
/// Returns a borrowed string when no escaping is required, avoiding an
/// allocation on the (very common) clean path.
pub fn escape_text(raw: &str) -> Cow<'_, str> {
    escape(raw, false)
}

/// Escapes `&`, `<`, `>`, `"` and `'` for use inside a quoted attribute
/// value.
pub fn escape_attr(raw: &str) -> Cow<'_, str> {
    escape(raw, true)
}

fn escape(raw: &str, attr: bool) -> Cow<'_, str> {
    let needs = raw
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\'')));
    if !needs {
        return Cow::Borrowed(raw);
    }
    let mut out = String::with_capacity(raw.len() + 8);
    for c in raw.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Expands the five predefined entities plus decimal (`&#NN;`) and
/// hexadecimal (`&#xNN;`) character references.
///
/// Unknown named entities are an error: the pipeline never emits them, so
/// encountering one means the input is not ours to silently mangle.
pub fn unescape(raw: &str) -> XmlResult<Cow<'_, str>> {
    if !raw.contains('&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or_else(|| {
            XmlError::new(XmlErrorKind::Malformed(
                "unterminated entity reference".into(),
            ))
        })?;
        let entity = &after[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                out.push(char_ref(&entity[2..], 16)?);
            }
            _ if entity.starts_with('#') => {
                out.push(char_ref(&entity[1..], 10)?);
            }
            other => {
                return Err(XmlError::new(XmlErrorKind::UnknownEntity(
                    other.to_string(),
                )));
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn char_ref(digits: &str, radix: u32) -> XmlResult<char> {
    let code = u32::from_str_radix(digits, radix).map_err(|_| {
        XmlError::new(XmlErrorKind::Malformed(format!(
            "invalid character reference digits {digits:?}"
        )))
    })?;
    char::from_u32(code).ok_or_else(|| {
        XmlError::new(XmlErrorKind::Malformed(format!(
            "character reference U+{code:X} is not a valid character"
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_borrows() {
        assert!(matches!(escape_text("Copper"), Cow::Borrowed(_)));
        assert!(matches!(unescape("Copper").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_markup_characters() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn text_escape_leaves_quotes_alone() {
        assert_eq!(escape_text(r#""quoted""#), r#""quoted""#);
    }

    #[test]
    fn unescape_round_trips_escape() {
        let raw = r#"A + B(2) = "gamma" & <delta>'s product"#;
        assert_eq!(unescape(&escape_attr(raw)).unwrap(), raw);
        let text = "x < y && z";
        assert_eq!(unescape(&escape_text(text)).unwrap(), text);
    }

    #[test]
    fn unescape_character_references() {
        assert_eq!(unescape("&#65;&#x42;&#X43;").unwrap(), "ABC");
        assert_eq!(unescape("caf&#233;").unwrap(), "café");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        let err = unescape("&nbsp;").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnknownEntity(name) if name == "nbsp"));
    }

    #[test]
    fn unescape_rejects_unterminated_and_bad_refs() {
        assert!(unescape("tail &amp").is_err());
        assert!(unescape("&#zz;").is_err());
        assert!(unescape("&#x110000;").is_err()); // beyond Unicode range
    }
}
