//! A non-validating XML 1.0 parser.
//!
//! The parser is a hand-written single-pass scanner that builds a
//! [`Document`] directly. It handles the constructs the Data Hounds
//! pipeline emits and the ones found in third-party XML databanks the paper
//! mentions (INTERPRO-style documents): the XML declaration, an optional
//! `<!DOCTYPE ...>` (skipped here; DTDs are parsed by [`crate::dtd`]),
//! elements, attributes, character data with entity and character
//! references, CDATA sections, comments, and processing instructions.
//!
//! Whitespace-only text between elements is dropped by default — the
//! pipeline's pretty-printed documents would otherwise be polluted with
//! indentation nodes and shredding would store meaningless tuples. Set
//! [`ParseOptions::keep_whitespace`] to retain it.

use crate::document::{Document, NodeId};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::unescape;
use crate::name::{is_name_char, is_name_start_char};

/// Options controlling parsing behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Keep whitespace-only text nodes between elements (default: false).
    pub keep_whitespace: bool,
}

/// Parses `input` into a [`Document`] with default options.
pub fn parse(input: &str) -> XmlResult<Document> {
    Parser::new(input).parse()
}

/// A single-use XML parser over a string slice.
pub struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input` with default options.
    pub fn new(input: &'a str) -> Self {
        Parser::with_options(input, ParseOptions::default())
    }

    /// Creates a parser over `input` with explicit options.
    pub fn with_options(input: &'a str, options: ParseOptions) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            options,
        }
    }

    /// Runs the parser to completion.
    pub fn parse(mut self) -> XmlResult<Document> {
        let mut doc = Document::new();
        // open element stack
        let mut stack: Vec<NodeId> = vec![NodeId::DOCUMENT];
        let mut seen_root = false;

        self.skip_ws();
        while self.pos < self.bytes.len() {
            if self.peek() == b'<' {
                match self.bytes.get(self.pos + 1) {
                    Some(b'?') => {
                        let parent = self.open_parent(&stack)?;
                        self.parse_pi_or_decl(&mut doc, parent)?;
                    }
                    Some(b'!') => {
                        if self.starts_with("<!--") {
                            let parent = self.open_parent(&stack)?;
                            self.parse_comment(&mut doc, parent)?;
                        } else if self.starts_with("<![CDATA[") {
                            let parent = self.open_parent(&stack)?;
                            if parent == NodeId::DOCUMENT {
                                return Err(self.err(XmlErrorKind::Malformed(
                                    "CDATA outside of root element".into(),
                                )));
                            }
                            self.parse_cdata(&mut doc, parent)?;
                        } else if self.starts_with("<!DOCTYPE") {
                            self.skip_doctype()?;
                        } else {
                            return Err(self.err(XmlErrorKind::Malformed(
                                "unrecognized markup declaration".into(),
                            )));
                        }
                    }
                    Some(b'/') => {
                        let name = self.parse_end_tag()?;
                        let open = stack
                            .pop()
                            .filter(|id| *id != NodeId::DOCUMENT)
                            .ok_or_else(|| {
                                self.err(XmlErrorKind::Malformed(format!(
                                    "end tag </{name}> with no open element"
                                )))
                            })?;
                        let open_name = doc.node(open).name().unwrap_or("");
                        if open_name != name {
                            return Err(self.err(XmlErrorKind::MismatchedTag {
                                expected: open_name.to_string(),
                                found: name,
                            }));
                        }
                    }
                    Some(_) => {
                        let parent = self.open_parent(&stack)?;
                        if parent == NodeId::DOCUMENT && seen_root {
                            return Err(
                                self.err(XmlErrorKind::Malformed("multiple root elements".into()))
                            );
                        }
                        let (id, self_closing) = self.parse_start_tag(&mut doc, parent)?;
                        if parent == NodeId::DOCUMENT {
                            seen_root = true;
                        }
                        if !self_closing {
                            stack.push(id);
                        }
                    }
                    None => {
                        return Err(self.err(XmlErrorKind::UnexpectedEof("tag".into())));
                    }
                }
            } else {
                let parent = self.open_parent(&stack)?;
                self.parse_text(&mut doc, parent)?;
            }
            if stack.len() == 1 {
                // Between root-level constructs: skip inter-markup whitespace.
                self.skip_ws();
            }
        }

        if stack.len() > 1 {
            let open = self.open_parent(&stack).map_or_else(
                |_| "?".to_string(),
                |id| doc.node(id).name().unwrap_or("?").to_string(),
            );
            return Err(self.err(XmlErrorKind::UnexpectedEof(format!("element <{open}>"))));
        }
        if !seen_root {
            return Err(self.err(XmlErrorKind::Malformed(
                "document has no root element".into(),
            )));
        }
        Ok(doc)
    }

    // ---- scanning helpers -------------------------------------------------

    /// The innermost open element (the DOCUMENT sentinel at top level).
    /// An empty stack would be a scanner bug; it surfaces as a typed parse
    /// error rather than a panic so a malformed input can never take the
    /// ingestion pipeline down.
    fn open_parent(&self, stack: &[NodeId]) -> XmlResult<NodeId> {
        stack.last().copied().ok_or_else(|| {
            self.err(XmlErrorKind::Malformed(
                "internal: element stack underflow".into(),
            ))
        })
    }

    fn peek(&self) -> u8 {
        self.bytes[self.pos]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        for i in self.pos..(self.pos + n).min(self.bytes.len()) {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                self.line_start = i + 1;
            }
        }
        self.pos += n;
    }

    fn column(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::at(kind, self.line, self.column())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.advance(1);
        }
    }

    fn expect(&mut self, s: &str, what: &str) -> XmlResult<()> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else if self.pos >= self.bytes.len() {
            Err(self.err(XmlErrorKind::UnexpectedEof(what.to_string())))
        } else {
            Err(self.err(XmlErrorKind::Malformed(format!("expected {s:?} in {what}"))))
        }
    }

    fn parse_name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        let mut chars = self.input[self.pos..].chars();
        match chars.next() {
            Some(c) if is_name_start_char(c) => self.advance(c.len_utf8()),
            _ => return Err(self.err(XmlErrorKind::Malformed("expected a name".into()))),
        }
        for c in chars {
            if is_name_char(c) {
                self.advance(c.len_utf8());
            } else {
                break;
            }
        }
        Ok(&self.input[start..self.pos])
    }

    fn scan_until(&mut self, terminator: &str, what: &str) -> XmlResult<&'a str> {
        match self.input[self.pos..].find(terminator) {
            Some(offset) => {
                let s = &self.input[self.pos..self.pos + offset];
                self.advance(offset + terminator.len());
                Ok(s)
            }
            None => Err(self.err(XmlErrorKind::UnexpectedEof(what.to_string()))),
        }
    }

    // ---- construct parsers ------------------------------------------------

    fn parse_pi_or_decl(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<()> {
        self.expect("<?", "processing instruction")?;
        let target = self.parse_name()?.to_string();
        self.skip_ws();
        let data = self.scan_until("?>", "processing instruction")?;
        if target.eq_ignore_ascii_case("xml") {
            // XML declaration: validated lightly and not stored in the tree.
            return Ok(());
        }
        doc.append_pi(parent, &target, data.trim_end())?;
        Ok(())
    }

    fn parse_comment(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<()> {
        self.expect("<!--", "comment")?;
        let text = self.scan_until("-->", "comment")?;
        if text.contains("--") {
            return Err(self.err(XmlErrorKind::Malformed("'--' inside comment".into())));
        }
        doc.append_comment(parent, text);
        Ok(())
    }

    fn parse_cdata(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<()> {
        self.expect("<![CDATA[", "CDATA section")?;
        let text = self.scan_until("]]>", "CDATA section")?.to_string();
        doc.append_text(parent, &text);
        Ok(())
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        self.expect("<!DOCTYPE", "DOCTYPE")?;
        // Skip to the matching '>' accounting for an optional internal
        // subset delimited by brackets.
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            match self.peek() {
                b'[' => {
                    depth += 1;
                    self.advance(1);
                }
                b']' => {
                    depth = depth.saturating_sub(1);
                    self.advance(1);
                }
                b'>' if depth == 0 => {
                    self.advance(1);
                    return Ok(());
                }
                _ => self.advance(1),
            }
        }
        Err(self.err(XmlErrorKind::UnexpectedEof("DOCTYPE".into())))
    }

    fn parse_start_tag(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<(NodeId, bool)> {
        self.expect("<", "start tag")?;
        let name = self.parse_name()?.to_string();
        let id = doc.append_element(parent, &name)?;
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Err(self.err(XmlErrorKind::UnexpectedEof(format!("start tag <{name}>"))));
            }
            match self.peek() {
                b'>' => {
                    self.advance(1);
                    return Ok((id, false));
                }
                b'/' => {
                    self.expect("/>", "empty-element tag")?;
                    return Ok((id, true));
                }
                _ => {
                    let attr_name = self.parse_name()?.to_string();
                    if doc.node(id).attribute(&attr_name).is_some() {
                        return Err(self.err(XmlErrorKind::DuplicateAttribute(attr_name)));
                    }
                    self.skip_ws();
                    self.expect("=", "attribute")?;
                    self.skip_ws();
                    let quote = match self.bytes.get(self.pos) {
                        Some(q @ (b'"' | b'\'')) => *q as char,
                        _ => {
                            return Err(self.err(XmlErrorKind::Malformed(
                                "attribute value must be quoted".into(),
                            )))
                        }
                    };
                    self.advance(1);
                    let raw =
                        self.scan_until(if quote == '"' { "\"" } else { "'" }, "attribute value")?;
                    if raw.contains('<') {
                        return Err(
                            self.err(XmlErrorKind::Malformed("'<' in attribute value".into()))
                        );
                    }
                    let value = unescape(raw)?;
                    doc.set_attribute(id, &attr_name, &value)?;
                }
            }
        }
    }

    fn parse_end_tag(&mut self) -> XmlResult<String> {
        self.expect("</", "end tag")?;
        let name = self.parse_name()?.to_string();
        self.skip_ws();
        self.expect(">", "end tag")?;
        Ok(name)
    }

    fn parse_text(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<()> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek() != b'<' {
            self.advance(1);
        }
        let raw = &self.input[start..self.pos];
        if raw.contains(']') && raw.contains("]]>") {
            return Err(self.err(XmlErrorKind::Malformed("']]>' in character data".into())));
        }
        if parent == NodeId::DOCUMENT {
            if raw.trim().is_empty() {
                return Ok(());
            }
            return Err(self.err(XmlErrorKind::Malformed("text outside root element".into())));
        }
        if !self.options.keep_whitespace && raw.trim().is_empty() {
            return Ok(());
        }
        let text = unescape(raw)?;
        doc.append_text(parent, &text);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::NodeKind;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<a/>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("a"));
        assert_eq!(doc.children(root).count(), 0);
    }

    #[test]
    fn parses_declaration_and_nested_elements() {
        let doc = parse(
            r#"<?xml version="1.0" encoding="UTF-8"?>
            <hlx_enzyme>
              <db_entry>
                <enzyme_id>1.14.17.3</enzyme_id>
              </db_entry>
            </hlx_enzyme>"#,
        )
        .unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("hlx_enzyme"));
        let entry = doc.child_element(root, "db_entry").unwrap();
        let id = doc.child_element(entry, "enzyme_id").unwrap();
        assert_eq!(doc.text_content(id), "1.14.17.3");
    }

    #[test]
    fn parses_attributes_with_references() {
        let doc = parse(r#"<r><ref name="AMD BOVIN" num='P10731' note="a &amp; b"/></r>"#).unwrap();
        let root = doc.root_element().unwrap();
        let r = doc.child_element(root, "ref").unwrap();
        assert_eq!(doc.node(r).attribute("name"), Some("AMD BOVIN"));
        assert_eq!(doc.node(r).attribute("num"), Some("P10731"));
        assert_eq!(doc.node(r).attribute("note"), Some("a & b"));
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).count(), 1);
    }

    #[test]
    fn keep_whitespace_option_retains_text_nodes() {
        let doc = Parser::with_options(
            "<a>\n  <b/>\n</a>",
            ParseOptions {
                keep_whitespace: true,
            },
        )
        .parse()
        .unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).count(), 3);
    }

    #[test]
    fn mixed_content_preserved_in_order() {
        let doc = parse("<p>alpha <em>beta</em> gamma</p>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "alpha beta gamma");
        let kinds: Vec<bool> = doc
            .children(root)
            .map(|c| doc.node(c).is_element())
            .collect();
        assert_eq!(kinds, vec![false, true, false]);
    }

    #[test]
    fn entity_and_char_refs_in_text() {
        let doc = parse("<t>A &amp; B &lt; C &#65;</t>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "A & B < C A");
    }

    #[test]
    fn cdata_is_literal() {
        let doc = parse("<t><![CDATA[a < b & <c>]]></t>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "a < b & <c>");
    }

    #[test]
    fn comments_and_pis_preserved() {
        let doc = parse("<r><!-- note --><?app do-thing?></r>").unwrap();
        let root = doc.root_element().unwrap();
        let kids: Vec<NodeId> = doc.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert!(matches!(doc.node(kids[0]).kind(), NodeKind::Comment(c) if c == " note "));
        assert!(matches!(
            doc.node(kids[1]).kind(),
            NodeKind::ProcessingInstruction { target, data } if target == "app" && data == "do-thing"
        ));
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse(
            r#"<!DOCTYPE hlx_enzyme [ <!ELEMENT hlx_enzyme (#PCDATA)> ]><hlx_enzyme>x</hlx_enzyme>"#,
        )
        .unwrap();
        assert_eq!(doc.text_content(doc.root_element().unwrap()), "x");
    }

    #[test]
    fn error_on_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(
            matches!(err.kind(), XmlErrorKind::MismatchedTag { expected, found }
            if expected == "b" && found == "a")
        );
    }

    #[test]
    fn error_on_unclosed_element_reports_position() {
        let err = parse("<a>\n<b>").unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::UnexpectedEof(_)));
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn error_on_multiple_roots() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn error_on_no_root() {
        assert!(parse("  <!-- only a comment -->  ").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_on_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind(), XmlErrorKind::DuplicateAttribute(n) if n == "x"));
    }

    #[test]
    fn error_on_text_outside_root() {
        assert!(parse("stray<a/>").is_err());
    }

    #[test]
    fn error_on_unquoted_attribute() {
        assert!(parse("<a x=1/>").is_err());
    }

    #[test]
    fn error_on_lt_in_attribute_value() {
        assert!(parse(r#"<a x="<"/>"#).is_err());
    }

    #[test]
    fn error_on_double_hyphen_in_comment() {
        assert!(parse("<a><!-- x -- y --></a>").is_err());
    }

    #[test]
    fn unicode_content_and_names() {
        let doc = parse("<énzyme idé=\"α\">βγδ</énzyme>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.node(root).name(), Some("énzyme"));
        assert_eq!(doc.node(root).attribute("idé"), Some("α"));
        assert_eq!(doc.text_content(root), "βγδ");
    }
}
