//! Label paths — the addressing scheme shared by the shredder, the query
//! translator and the visual query builder.
//!
//! A label path is the sequence of element names from the document root to a
//! node, written `/hlx_enzyme/db_entry/enzyme_id`. The paper's query
//! language lets users address elements at any nesting level ("searches on
//! attributes at any level", §4) via `//` descendant steps, and address
//! attributes with `@name`; both appear in the Figure 11 join query
//! (`$a//qualifier[@qualifier_type = "EC number"]`).
//!
//! [`LabelPath`] models such a pattern and can match it against concrete
//! root-to-node label sequences. Matching is the core primitive XQ2SQL uses
//! to expand a path pattern into the set of stored label paths it denotes.

use std::fmt;

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::name::is_valid_name;

/// One step of a [`LabelPath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathStep {
    /// `/name` — a direct child with this element name.
    Child(String),
    /// `//name` — a descendant at any depth with this element name.
    Descendant(String),
    /// `/*` — a direct child with any name.
    AnyChild,
    /// `//*` — any descendant.
    AnyDescendant,
}

impl PathStep {
    fn label(&self) -> Option<&str> {
        match self {
            PathStep::Child(n) | PathStep::Descendant(n) => Some(n),
            PathStep::AnyChild | PathStep::AnyDescendant => None,
        }
    }

    fn is_descendant(&self) -> bool {
        matches!(self, PathStep::Descendant(_) | PathStep::AnyDescendant)
    }
}

/// A parsed label-path pattern, optionally ending in an attribute step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelPath {
    steps: Vec<PathStep>,
    /// Trailing `/@attr` step, if any.
    attribute: Option<String>,
    /// Whether the pattern is anchored at the document root (starts with a
    /// single `/`). Unanchored patterns (starting with `//` or a bare name)
    /// may begin matching at any depth.
    rooted: bool,
}

impl LabelPath {
    /// Parses a path pattern such as `/a/b//c/@id` or `//qualifier`.
    pub fn parse(input: &str) -> XmlResult<Self> {
        let input = input.trim();
        if input.is_empty() {
            return Err(XmlError::new(XmlErrorKind::Path("empty path".into())));
        }
        let mut steps = Vec::new();
        let mut attribute = None;
        let mut rest = input;
        let rooted = rest.starts_with('/') && !rest.starts_with("//");
        let mut first = true;
        while !rest.is_empty() {
            let descendant = if rest.starts_with("//") {
                rest = &rest[2..];
                true
            } else if rest.starts_with('/') {
                rest = &rest[1..];
                false
            } else if first {
                // A bare leading name is an unanchored child step.
                false
            } else {
                return Err(XmlError::new(XmlErrorKind::Path(format!(
                    "expected '/' before {rest:?}"
                ))));
            };
            first = false;
            if rest.is_empty() {
                return Err(XmlError::new(XmlErrorKind::Path(
                    "path ends with a separator".into(),
                )));
            }
            let end = rest.find('/').unwrap_or(rest.len());
            let token = &rest[..end];
            rest = &rest[end..];
            if let Some(attr) = token.strip_prefix('@') {
                if !is_valid_name(attr) {
                    return Err(XmlError::new(XmlErrorKind::Path(format!(
                        "invalid attribute name {attr:?}"
                    ))));
                }
                if !rest.is_empty() {
                    return Err(XmlError::new(XmlErrorKind::Path(
                        "attribute step must be last".into(),
                    )));
                }
                if descendant {
                    return Err(XmlError::new(XmlErrorKind::Path(
                        "attribute step cannot follow '//'".into(),
                    )));
                }
                attribute = Some(attr.to_string());
            } else if token == "*" {
                steps.push(if descendant {
                    PathStep::AnyDescendant
                } else {
                    PathStep::AnyChild
                });
            } else if is_valid_name(token) {
                steps.push(if descendant {
                    PathStep::Descendant(token.to_string())
                } else {
                    PathStep::Child(token.to_string())
                });
            } else {
                return Err(XmlError::new(XmlErrorKind::Path(format!(
                    "invalid step {token:?}"
                ))));
            }
        }
        if steps.is_empty() && attribute.is_none() {
            return Err(XmlError::new(XmlErrorKind::Path("no steps".into())));
        }
        Ok(LabelPath {
            steps,
            attribute,
            rooted,
        })
    }

    /// Builds a rooted path from exact child labels (no wildcards).
    pub fn from_labels<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LabelPath {
            steps: labels
                .into_iter()
                .map(|l| PathStep::Child(l.into()))
                .collect(),
            attribute: None,
            rooted: true,
        }
    }

    /// The element steps.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// The trailing attribute name, if the pattern addresses an attribute.
    pub fn attribute(&self) -> Option<&str> {
        self.attribute.as_deref()
    }

    /// Whether the pattern is anchored at the root.
    pub fn is_rooted(&self) -> bool {
        self.rooted
    }

    /// The final element label, if the last step names one.
    pub fn leaf_label(&self) -> Option<&str> {
        self.steps.last().and_then(|s| s.label())
    }

    /// Returns a copy of this path extended with `suffix` (the suffix's
    /// steps become relative to this path's end).
    pub fn join(&self, suffix: &LabelPath) -> LabelPath {
        let mut steps = self.steps.clone();
        steps.extend(suffix.steps.iter().cloned());
        LabelPath {
            steps,
            attribute: suffix.attribute.clone(),
            rooted: self.rooted,
        }
    }

    /// Matches this pattern against a concrete root-to-node label sequence.
    ///
    /// `labels` must be the full chain of element names from the document
    /// root (inclusive) down to the candidate element (inclusive). For
    /// rooted patterns the match must start at `labels[0]`; unanchored
    /// patterns may start anywhere. The match must consume the entire
    /// sequence (the candidate is the last pattern step).
    pub fn matches(&self, labels: &[&str]) -> bool {
        fn match_from(steps: &[PathStep], labels: &[&str]) -> bool {
            let Some(step) = steps.first() else {
                return labels.is_empty();
            };
            if step.is_descendant() {
                // Try every depth at which this descendant step could bind.
                for i in 0..labels.len() {
                    let ok = match step.label() {
                        Some(want) => labels[i] == want,
                        None => true,
                    };
                    if ok && match_from(&steps[1..], &labels[i + 1..]) {
                        return true;
                    }
                }
                false
            } else {
                let Some(first) = labels.first() else {
                    return false;
                };
                let ok = match step.label() {
                    Some(want) => *first == want,
                    None => true,
                };
                ok && match_from(&steps[1..], &labels[1..])
            }
        }
        if self.rooted {
            match_from(&self.steps, labels)
        } else {
            // Unanchored: the first step behaves as a descendant step.
            let mut steps = self.steps.clone();
            if let Some(first) = steps.first_mut() {
                *first = match first.clone() {
                    PathStep::Child(n) | PathStep::Descendant(n) => PathStep::Descendant(n),
                    PathStep::AnyChild | PathStep::AnyDescendant => PathStep::AnyDescendant,
                };
            }
            match_from(&steps, labels)
        }
    }

    /// Convenience: match against a slash-separated concrete path such as
    /// the output of [`crate::Document::label_path`].
    pub fn matches_path(&self, concrete: &str) -> bool {
        let labels: Vec<&str> = concrete.split('/').filter(|s| !s.is_empty()).collect();
        self.matches(&labels)
    }
}

impl fmt::Display for LabelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            let sep = if step.is_descendant() {
                "//"
            } else if i == 0 && !self.rooted {
                ""
            } else {
                "/"
            };
            f.write_str(sep)?;
            f.write_str(step.label().unwrap_or("*"))?;
        }
        if let Some(attr) = &self.attribute {
            write!(f, "/@{attr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rooted_path() {
        let p = LabelPath::parse("/hlx_enzyme/db_entry/enzyme_id").unwrap();
        assert!(p.is_rooted());
        assert_eq!(p.steps().len(), 3);
        assert_eq!(p.leaf_label(), Some("enzyme_id"));
        assert_eq!(p.to_string(), "/hlx_enzyme/db_entry/enzyme_id");
    }

    #[test]
    fn parses_descendant_and_attribute() {
        let p = LabelPath::parse("//qualifier/@qualifier_type").unwrap();
        assert!(!p.is_rooted());
        assert_eq!(p.attribute(), Some("qualifier_type"));
        assert_eq!(p.to_string(), "//qualifier/@qualifier_type");
    }

    #[test]
    fn parses_wildcards() {
        let p = LabelPath::parse("/a/*//b//*").unwrap();
        assert_eq!(p.steps().len(), 4);
        assert_eq!(p.to_string(), "/a/*//b//*");
    }

    #[test]
    fn rejects_malformed_paths() {
        for bad in ["", "/", "/a/", "a//", "/a/@x/b", "/a/@1bad", "/a b", "//@x"] {
            assert!(LabelPath::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rooted_matching() {
        let p = LabelPath::parse("/a/b/c").unwrap();
        assert!(p.matches(&["a", "b", "c"]));
        assert!(!p.matches(&["a", "b"]));
        assert!(!p.matches(&["a", "b", "c", "d"]));
        assert!(!p.matches(&["x", "b", "c"]));
    }

    #[test]
    fn descendant_matching() {
        let p = LabelPath::parse("/a//c").unwrap();
        assert!(p.matches(&["a", "c"]));
        assert!(p.matches(&["a", "b", "c"]));
        assert!(p.matches(&["a", "b", "b", "c"]));
        assert!(!p.matches(&["a", "b", "c", "d"]));
        assert!(!p.matches(&["c"]));
    }

    #[test]
    fn unanchored_matching_starts_anywhere() {
        let p = LabelPath::parse("//qualifier").unwrap();
        assert!(p.matches(&["hlx_n_sequence", "db_entry", "feature", "qualifier"]));
        assert!(p.matches(&["qualifier"]));
        assert!(!p.matches(&["hlx_n_sequence", "qualifier", "x"]));
        let bare = LabelPath::parse("db_entry/enzyme_id").unwrap();
        assert!(bare.matches(&["hlx_enzyme", "db_entry", "enzyme_id"]));
    }

    #[test]
    fn wildcard_matching() {
        let p = LabelPath::parse("/a/*/c").unwrap();
        assert!(p.matches(&["a", "b", "c"]));
        assert!(p.matches(&["a", "x", "c"]));
        assert!(!p.matches(&["a", "c"]));
        let any = LabelPath::parse("/a//*").unwrap();
        assert!(any.matches(&["a", "b"]));
        assert!(any.matches(&["a", "b", "c"]));
        assert!(!any.matches(&["a"]));
    }

    #[test]
    fn backtracking_descendants() {
        // //b//b needs two distinct b's.
        let p = LabelPath::parse("//b//b").unwrap();
        assert!(p.matches(&["a", "b", "x", "b"]));
        assert!(p.matches(&["b", "b"]));
        assert!(!p.matches(&["a", "b"]));
    }

    #[test]
    fn join_extends_path() {
        let base = LabelPath::parse("/hlx_enzyme/db_entry").unwrap();
        let rel = LabelPath::parse("enzyme_id").unwrap();
        let joined = base.join(&rel);
        assert_eq!(joined.to_string(), "/hlx_enzyme/db_entry/enzyme_id");
        assert!(joined.matches(&["hlx_enzyme", "db_entry", "enzyme_id"]));
    }

    #[test]
    fn matches_path_string_form() {
        let p = LabelPath::parse("//enzyme_id").unwrap();
        assert!(p.matches_path("/hlx_enzyme/db_entry/enzyme_id"));
        assert!(!p.matches_path("/hlx_enzyme/db_entry/enzyme_description"));
    }

    #[test]
    fn from_labels_builder() {
        let p = LabelPath::from_labels(["hlx_enzyme", "db_entry"]);
        assert_eq!(p.to_string(), "/hlx_enzyme/db_entry");
        assert!(p.is_rooted());
    }

    #[test]
    fn display_round_trip() {
        for src in ["/a/b/c", "//x", "/a//b/@id", "a/b", "/a/*/b", "//*"] {
            let p = LabelPath::parse(src).unwrap();
            let printed = p.to_string();
            let reparsed = LabelPath::parse(&printed).unwrap();
            assert_eq!(p, reparsed, "{src}");
        }
    }
}
