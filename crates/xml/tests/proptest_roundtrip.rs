//! Property tests: arbitrary documents survive serialize → parse, and
//! escaping round-trips arbitrary text.

use proptest::prelude::*;
use xomatiq_xml::document::{Document, NodeId};
use xomatiq_xml::escape::{escape_attr, escape_text, unescape};
use xomatiq_xml::parser::parse;
use xomatiq_xml::writer::{to_string, to_string_pretty};

/// A recipe for building a small random document.
#[derive(Debug, Clone)]
enum BuildOp {
    /// Append a child element (name index into NAMES) and descend into it.
    Open(usize),
    /// Close the current element (no-op at the root).
    Close,
    /// Append a text child (content index into TEXTS).
    Text(usize),
    /// Set an attribute (name index, value index).
    Attr(usize, usize),
}

const NAMES: &[&str] = &[
    "db_entry",
    "enzyme_id",
    "cofactor",
    "comment",
    "reference",
    "a1",
];
const TEXTS: &[&str] = &[
    "1.14.17.3",
    "Copper",
    "A + B = C & D < E",
    "  padded  ",
    "quote\"and'apos",
    "multi\nline",
];

fn build(ops: &[BuildOp]) -> Document {
    let (mut doc, root) = Document::with_root("hlx_root").unwrap();
    let mut stack = vec![root];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            BuildOp::Open(n) => {
                let id = doc.append_element(cur, NAMES[n % NAMES.len()]).unwrap();
                stack.push(id);
            }
            BuildOp::Close => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
            BuildOp::Text(t) => {
                // Avoid adjacent text nodes: the parser merges them, so a
                // tree with two consecutive text children cannot round-trip
                // structurally. Real pipeline documents never produce them.
                let last_is_text = doc
                    .children(cur)
                    .last()
                    .is_some_and(|c: NodeId| doc.node(c).is_text());
                if !last_is_text {
                    doc.append_text(cur, TEXTS[t % TEXTS.len()]);
                }
            }
            BuildOp::Attr(n, v) => {
                doc.set_attribute(cur, NAMES[n % NAMES.len()], TEXTS[v % TEXTS.len()])
                    .unwrap();
            }
        }
    }
    doc
}

fn op_strategy() -> impl Strategy<Value = BuildOp> {
    prop_oneof![
        (0..NAMES.len()).prop_map(BuildOp::Open),
        Just(BuildOp::Close),
        (0..TEXTS.len()).prop_map(BuildOp::Text),
        ((0..NAMES.len()), (0..TEXTS.len())).prop_map(|(n, v)| BuildOp::Attr(n, v)),
    ]
}

proptest! {
    #[test]
    fn compact_serialization_round_trips(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let doc = build(&ops);
        let serialized = to_string(&doc);
        let reparsed = parse(&serialized).expect("serialized output must reparse");
        prop_assert!(doc.structurally_equal(&reparsed),
            "round-trip mismatch for {serialized}");
    }

    #[test]
    fn pretty_serialization_preserves_text_content(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let doc = build(&ops);
        let pretty = to_string_pretty(&doc);
        let reparsed = parse(&pretty).expect("pretty output must reparse");
        // Pretty printing may insert whitespace between elements but must
        // never alter the text inside text-only elements.
        let root_a = doc.root_element().unwrap();
        let root_b = reparsed.root_element().unwrap();
        prop_assert_eq!(
            doc.descendants(root_a).filter(|n| doc.node(*n).is_element()).count(),
            reparsed.descendants(root_b).filter(|n| reparsed.node(*n).is_element()).count()
        );
    }

    #[test]
    fn escape_unescape_text_identity(s in "\\PC*") {
        let escaped = escape_text(&s);
        let unescaped = unescape(&escaped).unwrap();
        prop_assert_eq!(unescaped.as_ref(), s.as_str());
    }

    #[test]
    fn escape_unescape_attr_identity(s in "\\PC*") {
        let escaped = escape_attr(&s);
        let unescaped = unescape(&escaped).unwrap();
        prop_assert_eq!(unescaped.as_ref(), s.as_str());
    }

    #[test]
    fn node_ids_are_document_ordered(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let doc = build(&ops);
        let root = doc.root_element().unwrap();
        let ids: Vec<_> = doc.descendants(root).collect();
        for w in ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
