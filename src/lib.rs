//! Umbrella crate hosting the examples and integration tests.
pub use xomatiq_core as core_api;
