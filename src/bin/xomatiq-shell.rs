//! An interactive XomatiQ shell — the CLI equivalent of the paper's GUI.
//!
//! ```text
//! cargo run --release --bin xomatiq-shell [warehouse.wal]
//! cargo run --release --bin xomatiq-shell -- --connect HOST:PORT
//! ```
//!
//! With a path argument the warehouse is durable (write-ahead log +
//! recovery); without one it is in-memory. With `--connect` the shell is
//! a thin client of a running `xomatiq-server` instead of embedding the
//! engine: SQL lines run over the wire protocol, sharing the server's
//! plan cache and MVCC snapshots with every other session. Commands:
//!
//! ```text
//! gen <n>                        generate+load demo corpora at n entries each
//! load <collection> <kind> <file>  load a flat file (kind: enzyme|embl|swissprot)
//! update <collection> <file>       integrate a fresh snapshot
//! collections | stats              what is loaded
//! dtd <collection>                 show a collection's DTD (the GUI left panel)
//! doc <collection> <entry-key>     reconstruct + print one document
//! explain <flwr-query>             show generated SQL + plan
//! .sql <sql>                       run raw SQL through the Query builder
//! .explain <sql>                   show a SQL statement's plan tree
//! .explain analyze <sql>           run the SQL, print per-operator profile
//! .stats [--json]                  dump the process metrics registry
//! .top [n]                         slowest recent queries (sys_queries)
//! .views                           materialized views + refresh telemetry (sys_views)
//! xml                              toggle XML result view (default: table)
//! FOR ...                          any FLWR query, run immediately
//! help | quit
//! ```

use std::io::{BufRead, Write};

use xomatiq_core::render::{render_result_set, render_table, render_tree};
use xomatiq_core::tagger::{tag_result_set, tag_results};
use xomatiq_core::{SourceKind, Xomatiq};

fn main() {
    if let Some(flag) = std::env::args().nth(1) {
        if flag == "--connect" {
            let Some(addr) = std::env::args().nth(2) else {
                eprintln!("usage: xomatiq-shell --connect HOST:PORT");
                std::process::exit(2);
            };
            remote_repl(&addr);
            return;
        }
    }
    let xq = match std::env::args().nth(1) {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            println!("opening durable warehouse at {}", path.display());
            Xomatiq::open(&path).expect("open warehouse")
        }
        None => {
            println!("in-memory warehouse (pass a path for durability)");
            Xomatiq::in_memory()
        }
    };
    let mut xml_view = false;
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    let mut buffer = String::new();

    loop {
        if interactive {
            if buffer.is_empty() {
                print!("xomatiq> ");
            } else {
                print!("    ...> ");
            }
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        // Multi-line FLWR entry: accumulate until an empty line or ';'.
        if !buffer.is_empty() {
            if trimmed.is_empty() || trimmed == ";" {
                let query = std::mem::take(&mut buffer);
                run_query(&xq, &query, xml_view);
            } else {
                buffer.push(' ');
                buffer.push_str(trimmed.trim_end_matches(';'));
                if trimmed.ends_with(';') {
                    let query = std::mem::take(&mut buffer);
                    run_query(&xq, &query, xml_view);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            None => continue,
            Some(cmd) if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("exit") => {
                break;
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("help") => {
                println!("{}", HELP.trim());
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("xml") => {
                xml_view = !xml_view;
                println!("result view: {}", if xml_view { "XML" } else { "table" });
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("gen") => {
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(500);
                generate_demo(&xq, n);
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("load") => {
                let (Some(collection), Some(kind), Some(file)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    println!("usage: load <collection> <enzyme|embl|swissprot> <file>");
                    continue;
                };
                let Some(kind) = SourceKind::from_name(&kind.to_ascii_lowercase()) else {
                    println!("unknown source kind {kind:?}");
                    continue;
                };
                match std::fs::read_to_string(file) {
                    Ok(flat) => match xq.load_source(collection, kind, &flat) {
                        Ok(stats) => println!(
                            "loaded {} documents ({} element rows)",
                            stats.documents, stats.elements
                        ),
                        Err(e) => println!("load failed: {e}"),
                    },
                    Err(e) => println!("cannot read {file}: {e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("update") => {
                let (Some(collection), Some(file)) = (parts.next(), parts.next()) else {
                    println!("usage: update <collection> <file>");
                    continue;
                };
                match std::fs::read_to_string(file) {
                    Ok(flat) => match xq.update_source(collection, &flat) {
                        Ok(events) => {
                            println!("{} change(s) integrated", events.len());
                            for e in events {
                                println!("  {:?} {}", e.kind, e.entry_key);
                            }
                        }
                        Err(e) => println!("update failed: {e}"),
                    },
                    Err(e) => println!("cannot read {file}: {e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("collections") => {
                for c in xq.collections() {
                    println!("{c}");
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("stats") => match xq.statistics() {
                Ok(stats) => {
                    for (name, docs, nodes) in stats {
                        println!("{name}: {docs} documents, {nodes} node rows");
                    }
                }
                Err(e) => println!("{e}"),
            },
            Some(cmd) if cmd.eq_ignore_ascii_case("dtd") => {
                let Some(collection) = parts.next() else {
                    println!("usage: dtd <collection>");
                    continue;
                };
                match xq.dtd(collection) {
                    Ok(dtd) => print!("{dtd}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("doc") => {
                let (Some(collection), Some(key)) = (parts.next(), parts.next()) else {
                    println!("usage: doc <collection> <entry-key>");
                    continue;
                };
                match xq.reconstruct(collection, key) {
                    Ok(doc) => print!("{}", render_tree(&doc)),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("explain") => {
                let rest = trimmed[cmd.len()..].trim();
                if rest.is_empty() {
                    println!("usage: explain FOR ... RETURN ...");
                    continue;
                }
                match xq.explain_query(rest) {
                    Ok(text) => println!("{text}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".sql") => {
                let rest = trimmed[cmd.len()..].trim();
                if rest.is_empty() {
                    println!("usage: .sql <statement>");
                    continue;
                }
                run_sql(&xq, rest, xml_view);
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".stats") => {
                let snap = xomatiq_obs::global().snapshot();
                if parts
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("--json"))
                {
                    print!("{}", snap.render_json());
                } else {
                    print!("{}", snap.render_text());
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".top") => {
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                match xq.db().query(&top_sql(n)).run() {
                    Ok(out) => print!("{}", render_result_set(&out.rows)),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".views") => {
                match xq.db().query(VIEWS_SQL).run() {
                    Ok(out) => print!("{}", render_result_set(&out.rows)),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".explain") => {
                let rest = trimmed[cmd.len()..].trim();
                if rest.is_empty() {
                    println!("usage: .explain [analyze] SELECT ...");
                    continue;
                }
                let analyze = rest
                    .split_whitespace()
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("analyze"));
                let result = if analyze {
                    xq.db().explain_analyze(rest["analyze".len()..].trim())
                } else {
                    xq.db().query(rest).explain().map(|tree| tree.render())
                };
                match result {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".analyze") => {
                let rest = trimmed[cmd.len()..].trim();
                let sql = if rest.is_empty() {
                    "ANALYZE".to_string()
                } else {
                    format!("ANALYZE TABLE {rest}")
                };
                match xq.db().query(&sql).run() {
                    Ok(out) => {
                        println!("analyzed {} table(s)", out.rows.affected());
                        let stats_sql = if rest.is_empty() {
                            "SELECT * FROM sys_table_stats ORDER BY table_name, column_name"
                                .to_string()
                        } else {
                            // sys_table_stats reports the catalog's
                            // lowercased table keys.
                            let name = rest.to_ascii_lowercase().replace('\'', "''");
                            format!(
                                "SELECT * FROM sys_table_stats WHERE table_name = '{name}' \
                                 ORDER BY column_name"
                            )
                        };
                        match xq.db().query(&stats_sql).run() {
                            Ok(stats) => print!("{}", render_result_set(&stats.rows)),
                            Err(e) => println!("{e}"),
                        }
                    }
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("FOR") => {
                // Start of a (possibly multi-line) query.
                buffer = trimmed.trim_end_matches(';').to_string();
                if trimmed.ends_with(';') {
                    let query = std::mem::take(&mut buffer);
                    run_query(&xq, &query, xml_view);
                }
            }
            Some(other) => {
                println!("unknown command {other:?} — try `help`");
            }
        }
    }
}

/// A thin REPL over the wire protocol: every plain line is SQL run on
/// the server; dot-commands mirror the embedded shell where they make
/// sense remotely (`.explain`, `.stats` via the `METRICS` frame) plus
/// `set workers <n|default>` and `ping`.
fn remote_repl(addr: &str) {
    use xomatiq_server::{Client, ClientError};

    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(ClientError::Busy) => {
            eprintln!("server at {addr} is at its connection limit, try again later");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("connected to xomatiq-server at {addr}");
    let stdin = std::io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("xomatiq({addr})> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            None => continue,
            Some(cmd) if cmd.eq_ignore_ascii_case("quit") || cmd.eq_ignore_ascii_case("exit") => {
                break;
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("help") => {
                println!("{}", REMOTE_HELP.trim());
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("ping") => match client.ping() {
                Ok(()) => println!("pong"),
                Err(e) => println!("{e}"),
            },
            Some(cmd) if cmd.eq_ignore_ascii_case(".stats") => {
                let json = parts
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("--json"));
                let result = if json {
                    client.metrics_json()
                } else {
                    client.metrics()
                };
                match result {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".top") => {
                let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(10);
                match client.query(&top_sql(n), vec![]) {
                    Ok(xomatiq_server::QueryReply::Rows { columns, rows }) => {
                        let rs = xomatiq_relstore::ResultSet::from_parts(columns, rows);
                        print!("{}", render_result_set(&rs));
                    }
                    Ok(xomatiq_server::QueryReply::Affected(_)) => {}
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".views") => {
                match client.query(VIEWS_SQL, vec![]) {
                    Ok(xomatiq_server::QueryReply::Rows { columns, rows }) => {
                        let rs = xomatiq_relstore::ResultSet::from_parts(columns, rows);
                        print!("{}", render_result_set(&rs));
                    }
                    Ok(xomatiq_server::QueryReply::Affected(_)) => {}
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case("set") => {
                let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                    println!("usage: set workers <n|default>");
                    continue;
                };
                match client.set(name, value) {
                    Ok(ack) => println!("{ack}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(cmd) if cmd.eq_ignore_ascii_case(".explain") => {
                let rest = trimmed[cmd.len()..].trim();
                if rest.is_empty() {
                    println!("usage: .explain [analyze] SELECT ...");
                    continue;
                }
                let analyze = rest
                    .split_whitespace()
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("analyze"));
                let sql = if analyze {
                    rest["analyze".len()..].trim()
                } else {
                    rest
                };
                match client.explain(sql, analyze) {
                    Ok(text) => print!("{text}"),
                    Err(e) => println!("{e}"),
                }
            }
            Some(_) => {
                let sql = trimmed.trim_start_matches(".sql").trim();
                if sql.is_empty() {
                    continue;
                }
                let start = std::time::Instant::now();
                match client.query(sql, vec![]) {
                    Ok(xomatiq_server::QueryReply::Rows { columns, rows }) => {
                        let rs = xomatiq_relstore::ResultSet::from_parts(columns, rows);
                        print!("{}", render_result_set(&rs));
                        println!("({:.2?})", start.elapsed());
                    }
                    Ok(xomatiq_server::QueryReply::Affected(n)) => {
                        println!("{n} row(s) affected ({:.2?})", start.elapsed());
                    }
                    Err(e) => println!("{e}"),
                }
            }
        }
    }
    let _ = client.goodbye();
}

/// The `.views` command is plain SQL over the `sys_views` virtual table —
/// like `.top`, that is exactly why it works identically against an
/// embedded warehouse and over `--connect`.
const VIEWS_SQL: &str = "SELECT view_name, refresh_policy, last_refresh_csn, \
     pending_delta_rows, delta_log_overflow, incremental_refreshes, \
     fallback_refreshes, definition \
     FROM sys_views ORDER BY view_name";

/// The `.top [n]` command is plain SQL over the `sys_queries` virtual
/// table, which is exactly why it works identically against an embedded
/// warehouse and over `--connect`.
fn top_sql(n: usize) -> String {
    format!(
        "SELECT query_id, trace_id, latency_ns, rows, cache_hit, slow, sql          FROM sys_queries ORDER BY latency_ns DESC LIMIT {n}"
    )
}

fn run_query(xq: &Xomatiq, query: &str, xml_view: bool) {
    let start = std::time::Instant::now();
    match xq.query(query) {
        Ok(outcome) => {
            if xml_view {
                match tag_results(&outcome) {
                    Ok(doc) => println!("{}", xomatiq_xml::to_string_pretty(&doc)),
                    Err(e) => println!("tagging failed: {e}"),
                }
            } else {
                println!("{}", render_table(&outcome));
            }
            println!("({:.2?})", start.elapsed());
        }
        Err(e) => println!("query failed: {e}"),
    }
}

/// Runs a raw SQL statement through the relstore `Query` builder. SELECTs
/// request exec stats; DDL/DML run plain and report affected rows.
fn run_sql(xq: &Xomatiq, sql: &str, xml_view: bool) {
    let is_select = sql
        .split_whitespace()
        .next()
        .is_some_and(|w| w.eq_ignore_ascii_case("select"));
    let start = std::time::Instant::now();
    let mut query = xq.db().query(sql);
    if is_select {
        query = query.with_stats();
    }
    match query.run() {
        Ok(out) => {
            if xml_view {
                match tag_result_set(&out.rows) {
                    Ok(doc) => println!("{}", xomatiq_xml::to_string_pretty(&doc)),
                    Err(e) => println!("tagging failed: {e}"),
                }
            } else {
                print!("{}", render_result_set(&out.rows));
            }
            match out.stats {
                Some(stats) => println!(
                    "({:.2?}; {} scanned, {} emitted, {} index probes)",
                    start.elapsed(),
                    stats.rows_scanned,
                    stats.rows_emitted,
                    stats.index_probes
                ),
                None => println!("({:.2?})", start.elapsed()),
            }
        }
        Err(e) => println!("sql failed: {e}"),
    }
}

fn generate_demo(xq: &Xomatiq, n: usize) {
    use xomatiq_bioflat::{Corpus, CorpusSpec};
    println!("generating {n}-entry demo corpora...");
    let corpus = Corpus::generate(&CorpusSpec::sized(n));
    for (name, kind, flat) in [
        (
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            corpus.enzyme_flat(),
        ),
        ("hlx_embl.inv", SourceKind::Embl, corpus.embl_flat()),
        (
            "hlx_sprot.all",
            SourceKind::SwissProt,
            corpus.swissprot_flat(),
        ),
    ] {
        match xq.load_source(name, kind, &flat) {
            Ok(stats) => println!("  {name}: {} documents", stats.documents),
            Err(e) => println!("  {name}: {e}"),
        }
    }
}

/// Rough interactivity check without a libc dependency: honor the common
/// convention that piped input sets no TERM-related expectations.
fn atty_stdin() -> bool {
    // When stdin is a pipe, reading from it without prompts is the useful
    // behaviour (scripted tests). A simple heuristic: the PS1-less
    // environments used in tests set `XOMATIQ_BATCH`.
    std::env::var_os("XOMATIQ_BATCH").is_none()
}

const HELP: &str = r#"
gen <n>                           generate+load demo corpora at n entries each
load <collection> <kind> <file>   load a flat file (kind: enzyme|embl|swissprot)
update <collection> <file>        integrate a fresh snapshot of a source
collections | stats               list what is loaded
dtd <collection>                  show a collection's DTD
doc <collection> <entry-key>      reconstruct and print one document
explain FOR ... RETURN ...        show generated SQL and plan
.sql <statement>                  run raw SQL through the Query builder
.explain SELECT ...               show a SQL statement's plan tree
.explain analyze SELECT ...       run the SQL and print the per-operator profile
.analyze [table]                  collect optimizer statistics, then show sys_table_stats
.stats [--json]                   dump the process metrics registry
.top [n]                          slowest recent queries from sys_queries
.views                            materialized views and refresh telemetry (sys_views)
xml                               toggle XML result view
FOR ... RETURN ... ;              run a FLWR query (end with ';' or blank line)
quit
"#;

const REMOTE_HELP: &str = r#"
<sql statement>                   run SQL on the server (also: .sql <statement>)
.explain [analyze] SELECT ...     server-side plan tree / per-operator profile
.stats [--json]                   the server's metrics snapshot (text or JSON)
.top [n]                          the server's slowest recent queries (sys_queries)
.views                            the server's materialized views (sys_views)
set workers <n|default>           session-local worker override
ping                              liveness probe
quit                              graceful goodbye
"#;
