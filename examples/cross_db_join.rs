//! The Figures 10–12 scenario: join warehoused EMBL entries against the
//! ENZYME database on EC number, exactly the query "that finds all the
//! EMBL entries from the division invertebrates that have a direct link
//! to enzymes characterized in the ENZYME database".
//!
//! Run with: `cargo run --release --example cross_db_join [entries]`

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::render_table;
use xomatiq_core::tagger::tag_results;
use xomatiq_core::{QueryBuilder, SourceKind, Xomatiq};

fn main() {
    let entries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);

    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: entries,
        embl: entries,
        swissprot: 0,
        link_rate: 0.3,
        ..CorpusSpec::default()
    });

    let xq = Xomatiq::in_memory();
    xq.load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .expect("load EMBL");
    xq.load_source(
        "hlx_enzyme.DEFAULT",
        SourceKind::Enzyme,
        &corpus.enzyme_flat(),
    )
    .expect("load ENZYME");
    println!(
        "Warehoused {} EMBL and {} ENZYME documents ({} planted EC links).\n",
        entries,
        entries,
        corpus.planted_ec_links.len()
    );

    // The join query, formulated via the GUI's join mode (Figure 10) —
    // its textual form is the paper's Figure 11.
    let query = QueryBuilder::join(
        ("a", "hlx_embl.inv", "/hlx_n_sequence/db_entry"),
        ("b", "hlx_enzyme.DEFAULT", "/hlx_enzyme/db_entry"),
        "$a//qualifier[@qualifier_type = \"EC number\"]",
        "$b/enzyme_id",
        &[
            ("Accession_Number", "$a//embl_accession_number"),
            ("Accession_Description", "$a//description"),
        ],
    )
    .expect("figure 11 builds");
    println!("-- Query (Figure 11) --\n{query}\n");

    let start = std::time::Instant::now();
    let outcome = xq.run_query(&query).expect("join runs");
    println!(
        "-- Join results: {} rows in {:.2?} (Figure 12, table panel) --",
        outcome.rows.len(),
        start.elapsed()
    );
    let preview = xomatiq_core::warehouse::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(10).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));

    // The XML structure format of the same results.
    let tagged = tag_results(&outcome).expect("taggable");
    let xml = xomatiq_xml::to_string_pretty(&tagged);
    let head: String = xml.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("-- Join results (XML structure format, first rows) --\n{head}\n...");

    // Sanity: every returned accession is a planted link.
    let planted: std::collections::BTreeSet<&str> = corpus
        .planted_ec_links
        .iter()
        .map(|(acc, _)| acc.as_str())
        .collect();
    let returned: std::collections::BTreeSet<String> =
        outcome.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(
        returned.len(),
        planted.len(),
        "join must return exactly the planted links"
    );
    println!(
        "\nVerified: the join returned exactly the {} planted EC links.",
        planted.len()
    );
}
