//! Incremental updates, change triggers, and durability — the §2
//! requirements the paper's Data Hounds were built around:
//! "the ability to download and integrate the latest updates to any
//! database without any information being left out or added twice", and
//! the triggers sent to applications when the warehouse changes.
//!
//! Run with: `cargo run --example update_triggers`

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::{ChangeKind, SourceKind, Xomatiq};

fn main() {
    let wal = std::env::temp_dir().join(format!("xomatiq-example-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    // First run: warehouse version 1 of the database, durably.
    let corpus = Corpus::generate(&CorpusSpec::sized(50));
    {
        let xq = Xomatiq::open(&wal).expect("open durable warehouse");
        xq.load_source(
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            &corpus.enzyme_flat(),
        )
        .expect("initial load");
        println!(
            "Initial load: {} documents (write-ahead log at {}).",
            xq.doc_count("hlx_enzyme.DEFAULT").unwrap(),
            wal.display()
        );
    } // process "exits"

    // Second run: recover from the log, subscribe, integrate an update.
    let xq = Xomatiq::open(&wal).expect("recover warehouse");
    println!(
        "Recovered {} documents after reopen.\n",
        xq.doc_count("hlx_enzyme.DEFAULT").unwrap()
    );
    let triggers = xq.subscribe();

    // Simulate the next FTP snapshot: one entry renamed, one deleted,
    // one brand new.
    let mut v2 = corpus.enzymes.clone();
    v2[0].descriptions = vec!["Renamed by curators.".into()];
    let removed = v2.remove(10);
    let mut added = v2[1].clone();
    added.id = "7.7.7.7".into();
    added.descriptions = vec!["Newly characterized enzyme.".into()];
    v2.push(added);
    let flat_v2: String = v2.iter().map(|e| e.to_flat()).collect();

    let events = xq
        .update_source("hlx_enzyme.DEFAULT", &flat_v2)
        .expect("update applies");
    println!("-- Update integrated: {} change(s) --", events.len());
    while let Ok(event) = triggers.try_recv() {
        let verb = match event.kind {
            ChangeKind::Added => "added",
            ChangeKind::Modified => "modified",
            ChangeKind::Removed => "removed",
        };
        println!(
            "trigger: {} entry {} in {}",
            verb, event.entry_key, event.collection
        );
    }

    // The warehouse reflects exactly the new snapshot: nothing left out,
    // nothing added twice.
    assert_eq!(xq.doc_count("hlx_enzyme.DEFAULT").unwrap(), v2.len());
    let outcome = xq
        .query(
            r#"FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
               WHERE $a//enzyme_id = "7.7.7.7"
               RETURN $a//enzyme_description"#,
        )
        .expect("query runs");
    println!("\nNew entry is queryable: {}", outcome.rows[0][0]);
    assert!(xq.reconstruct("hlx_enzyme.DEFAULT", &removed.id).is_err());
    println!("Removed entry {} is gone from the warehouse.", removed.id);

    // And it is all durable: reopen once more and check.
    drop(xq);
    let xq = Xomatiq::open(&wal).expect("reopen");
    assert_eq!(xq.doc_count("hlx_enzyme.DEFAULT").unwrap(), v2.len());
    println!("\nReopened once more: {} documents survive.", v2.len());
    let _ = std::fs::remove_file(&wal);
}
