//! A gRNA-style application: sequence motif search plus a contextual
//! report.
//!
//! The paper closes §3.3 with the intended use of XomatiQ results: they
//! "can be used to construct contextual reports with several levels of
//! information that can, for example give an integrated view of the
//! annotations to a genome stored in distinct databases". It also holds
//! regular-expression matching up as a capability SQL-only systems lack
//! (§4). This example exercises both: scan warehoused protein sequences
//! for a PROSITE-style motif with `matches()`, then assemble a multi-
//! database report around each hit by following the warehouse's
//! cross-references.
//!
//! Run with: `cargo run --release --example motif_report [entries] [motif]`

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::render_table;
use xomatiq_core::{SourceKind, Xomatiq};

fn main() {
    let entries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    // Default motif: an N-glycosylation-style site N-{P}-[ST].
    let motif = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "N[^P][ST]".to_string());

    let corpus = Corpus::generate(&CorpusSpec::sized(entries));
    let xq = Xomatiq::in_memory();
    xq.load_source(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
    )
    .expect("load Swiss-Prot");
    xq.load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .expect("load EMBL");
    println!("Warehoused {entries} Swiss-Prot + {entries} EMBL entries.\n");

    // 1. The motif scan — sequence data addressed through the same FLWR
    //    language as everything else.
    let motif_query = format!(
        r#"FOR $b IN document("hlx_sprot.all")/hlx_p_sequence
           WHERE matches($b//sequence, "{motif}")
           RETURN $b//sprot_accession_number, $b//entry_name, $b//organism"#
    );
    let start = std::time::Instant::now();
    let hits = xq.query(&motif_query).expect("motif scan runs");
    println!(
        "-- Motif {motif:?}: {} of {entries} proteins match ({:.2?}) --",
        hits.rows.len(),
        start.elapsed()
    );
    let preview = xomatiq_core::QueryOutcome {
        columns: hits.columns.clone(),
        rows: hits.rows.iter().take(5).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));

    // 2. The contextual report for the first hit: protein annotations plus
    //    the EMBL nucleotide entries its xrefs point at.
    let Some(first) = hits.rows.first() else {
        println!("No hits — try a looser motif.");
        return;
    };
    let accession = first[0].to_string();
    println!("-- Contextual report for {accession} --\n");
    let protein = corpus
        .swissprot
        .iter()
        .find(|e| e.accession == accession)
        .expect("hit came from the corpus");

    // Level 1: the protein document itself, straight from the tuples.
    let doc = xq
        .reconstruct("hlx_sprot.all", &accession)
        .expect("reconstructs");
    println!(
        "[protein record]\n{}",
        xomatiq_core::render::render_tree(&doc)
    );

    // Level 2: linked nucleotide entries (following DR xrefs into EMBL).
    for xref in protein.xrefs.iter().filter(|x| x.database == "EMBL") {
        let linked = xq
            .query(&format!(
                r#"FOR $a IN document("hlx_embl.inv")/hlx_n_sequence
                   WHERE $a//embl_accession_number = "{}"
                   RETURN $a//embl_accession_number, $a//description, $a//organism"#,
                xref.id
            ))
            .expect("link query runs");
        for row in &linked.rows {
            println!("[linked EMBL entry] {} — {} ({})", row[0], row[1], row[2]);
        }
    }

    // Level 3: where in the sequence the motif sits (computed client-side
    // on the reconstructed document, the way a gRNA application would).
    let pattern = xomatiq_relstore::regex::Pattern::compile(&motif).expect("valid motif");
    let seq = &protein.sequence;
    let windows: Vec<usize> = (0..seq.len().saturating_sub(3))
        .filter(|&i| pattern.is_match(&seq[i..(i + 8).min(seq.len())]))
        .take(5)
        .collect();
    println!(
        "\n[motif positions] first occurrences near offsets {windows:?} of {} aa",
        seq.len()
    );
}
