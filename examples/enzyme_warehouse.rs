//! The Figure 7 scenario at warehouse scale: load a synthetic ENZYME
//! database, formulate the "ketone" sub-tree search with the visual-mode
//! query builder, inspect the generated SQL and plan, and view results in
//! both panels.
//!
//! Run with: `cargo run --release --example enzyme_warehouse [entries]`
//!
//! Pass `--durable <path>` to back the warehouse with a write-ahead log
//! at `path` instead of running in memory. Background maintenance
//! (checkpointing + segment compaction) runs during the load, and a
//! re-run against the same path recovers whatever a previous —
//! possibly killed — run made durable: an already-warehoused collection
//! is queried directly, a half-loaded one is swept and reloaded. CI's
//! crash smoke kills a durable load partway and restarts it.

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::{render_table, render_tree};
use xomatiq_core::{QueryBuilder, SourceKind, Xomatiq};

const COLLECTION: &str = "hlx_enzyme.DEFAULT";

fn main() {
    let mut entries: usize = 5_000;
    let mut durable: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--durable" {
            let path = args.next().expect("--durable requires a path");
            durable = Some(path.into());
        } else if let Ok(n) = arg.parse() {
            entries = n;
        }
    }

    let xq = match &durable {
        Some(path) => {
            println!("Opening durable warehouse at {}...", path.display());
            Xomatiq::open(path).expect("open durable warehouse")
        }
        None => Xomatiq::in_memory(),
    };
    if durable.is_some() {
        // Checkpoints and tombstone compaction in the background while
        // the load commits entry batches.
        xq.db()
            .start_maintenance(std::time::Duration::from_millis(250));
    }

    if xq.hounds().collections().iter().any(|c| c == COLLECTION) {
        println!("Collection {COLLECTION} recovered from the log; skipping load.\n");
    } else {
        // Simulated FTP download of the ENZYME flat file (§2.1).
        println!("Generating a synthetic ENZYME database of {entries} entries...");
        let corpus = Corpus::generate(&CorpusSpec {
            enzymes: entries,
            embl: 0,
            swissprot: 0,
            ..CorpusSpec::default()
        });
        let flat = corpus.enzyme_flat();
        println!("Flat file size: {} KiB", flat.len() / 1024);

        // Warehouse it: flat → XML → validate → shred → index.
        let start = std::time::Instant::now();
        let stats = xq
            .load_source(COLLECTION, SourceKind::Enzyme, &flat)
            .expect("load succeeds");
        println!(
            "Warehoused {} documents in {:.2?}: {} element rows, {} text rows, {} attribute rows\n",
            stats.documents,
            start.elapsed(),
            stats.elements,
            stats.texts,
            stats.attributes
        );
    }

    // Formulate the Figure 7(a) query via the sub-tree search mode.
    let query = QueryBuilder::subtree_search(
        "a",
        COLLECTION,
        "/hlx_enzyme",
        "$a//catalytic_activity",
        "ketone",
        &["$a//enzyme_id", "$a//enzyme_description"],
    )
    .expect("builder accepts the figure query");
    println!("-- Query (the \"Translate Query\" text) --\n{query}\n");

    // Inspect the translation, like watching Oracle's plans in §3.2.
    println!(
        "{}",
        xq.explain_query(&query.to_string()).expect("explainable")
    );

    let start = std::time::Instant::now();
    let outcome = xq.run_query(&query).expect("query runs");
    println!(
        "\n-- Results: {} of {} enzymes matched in {:.2?} (left panel) --",
        outcome.rows.len(),
        entries,
        start.elapsed()
    );
    let preview = xomatiq_core::warehouse::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(10).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));

    // Clicking a result row shows the document (right panel).
    if let Some(first) = outcome.rows.first() {
        let key = first[0].to_string();
        let doc = xq.reconstruct(COLLECTION, &key).expect("document exists");
        println!(
            "-- Document for enzyme {key} (right panel) --\n{}",
            render_tree(&doc)
        );
    }

    if durable.is_some() {
        // Join the maintenance thread so the final checkpoint (if one is
        // mid-flight) completes before the process exits.
        xq.db().stop_maintenance();
    }
}
