//! The Figure 7 scenario at warehouse scale: load a synthetic ENZYME
//! database, formulate the "ketone" sub-tree search with the visual-mode
//! query builder, inspect the generated SQL and plan, and view results in
//! both panels.
//!
//! Run with: `cargo run --release --example enzyme_warehouse [entries]`

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::{render_table, render_tree};
use xomatiq_core::{QueryBuilder, SourceKind, Xomatiq};

fn main() {
    let entries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    // Simulated FTP download of the ENZYME flat file (§2.1).
    println!("Generating a synthetic ENZYME database of {entries} entries...");
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: entries,
        embl: 0,
        swissprot: 0,
        ..CorpusSpec::default()
    });
    let flat = corpus.enzyme_flat();
    println!("Flat file size: {} KiB", flat.len() / 1024);

    // Warehouse it: flat → XML → validate → shred → index.
    let xq = Xomatiq::in_memory();
    let start = std::time::Instant::now();
    let stats = xq
        .load_source("hlx_enzyme.DEFAULT", SourceKind::Enzyme, &flat)
        .expect("load succeeds");
    println!(
        "Warehoused {} documents in {:.2?}: {} element rows, {} text rows, {} attribute rows\n",
        stats.documents,
        start.elapsed(),
        stats.elements,
        stats.texts,
        stats.attributes
    );

    // Formulate the Figure 7(a) query via the sub-tree search mode.
    let query = QueryBuilder::subtree_search(
        "a",
        "hlx_enzyme.DEFAULT",
        "/hlx_enzyme",
        "$a//catalytic_activity",
        "ketone",
        &["$a//enzyme_id", "$a//enzyme_description"],
    )
    .expect("builder accepts the figure query");
    println!("-- Query (the \"Translate Query\" text) --\n{query}\n");

    // Inspect the translation, like watching Oracle's plans in §3.2.
    println!(
        "{}",
        xq.explain_query(&query.to_string()).expect("explainable")
    );

    let start = std::time::Instant::now();
    let outcome = xq.run_query(&query).expect("query runs");
    println!(
        "\n-- Results: {} of {} enzymes matched in {:.2?} (left panel) --",
        outcome.rows.len(),
        entries,
        start.elapsed()
    );
    let preview = xomatiq_core::warehouse::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(10).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));

    // Clicking a result row shows the document (right panel).
    if let Some(first) = outcome.rows.first() {
        let key = first[0].to_string();
        let doc = xq
            .reconstruct("hlx_enzyme.DEFAULT", &key)
            .expect("document exists");
        println!(
            "-- Document for enzyme {key} (right panel) --\n{}",
            render_tree(&doc)
        );
    }
}
