//! A miniature gRNA deployment: three warehouses, one query surface.
//!
//! The paper positions XomatiQ as querying "one or more distributed or
//! local warehouses managed within the gRNA" (§3). Here each biological
//! database lives in its own warehouse node (as a distributed deployment
//! would place them), and the Figure 11 join runs across the federation —
//! split into per-node sub-queries and recombined client-side.
//!
//! Run with: `cargo run --release --example federated_grna [entries]`

use std::sync::Arc;

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::render_table;
use xomatiq_core::{Federation, SourceKind, Xomatiq};

fn main() {
    let entries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: entries,
        embl: entries,
        swissprot: entries,
        link_rate: 0.25,
        ..CorpusSpec::default()
    });

    // Three "nodes", one database each.
    let mut federation = Federation::new();
    for (node, collection, kind, flat) in [
        (
            "node-embl",
            "hlx_embl.inv",
            SourceKind::Embl,
            corpus.embl_flat(),
        ),
        (
            "node-enzyme",
            "hlx_enzyme.DEFAULT",
            SourceKind::Enzyme,
            corpus.enzyme_flat(),
        ),
        (
            "node-sprot",
            "hlx_sprot.all",
            SourceKind::SwissProt,
            corpus.swissprot_flat(),
        ),
    ] {
        let xq = Arc::new(Xomatiq::in_memory());
        xq.load_source(collection, kind, &flat).expect("load");
        println!("{node}: warehoused {collection} ({entries} entries)");
        federation.add_warehouse(node, xq);
    }
    println!();

    // The Figure 11 join, now spanning two nodes.
    let query = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
        RETURN $Accession_Number = $a//embl_accession_number,
               $Enzyme = $b//enzyme_description
    "#;
    let start = std::time::Instant::now();
    let outcome = federation.query(query).expect("federated join runs");
    println!(
        "-- Federated Figure 11 join: {} rows in {:.2?} --",
        outcome.rows.len(),
        start.elapsed()
    );
    let preview = xomatiq_core::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(8).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));
    assert_eq!(outcome.rows.len(), corpus.planted_ec_links.len());
    println!(
        "Verified against planted links: {} rows as expected.\n",
        corpus.planted_ec_links.len()
    );

    // A three-node correlation: EMBL → ENZYME → Swiss-Prot.
    let three_way = r#"
        FOR $a IN document("hlx_embl.inv")/hlx_n_sequence/db_entry,
            $b IN document("hlx_enzyme.DEFAULT")/hlx_enzyme/db_entry,
            $c IN document("hlx_sprot.all")/hlx_p_sequence/db_entry
        WHERE $a//qualifier[@qualifier_type = "EC number"] = $b/enzyme_id
          AND $b//reference/@swissprot_accession_number = $c/sprot_accession_number
        RETURN $a//embl_accession_number, $b/enzyme_id, $c//entry_name
    "#;
    let start = std::time::Instant::now();
    let outcome = federation.query(three_way).expect("three-way runs");
    println!(
        "-- Three-node correlation: {} rows in {:.2?} --",
        outcome.rows.len(),
        start.elapsed()
    );
    let preview = xomatiq_core::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(8).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));
}
