//! The Figure 8 scenario: search for the cell-division-cycle protein
//! "cdc6" through all entries in the EMBL and Swiss-Prot databases and
//! return the accession numbers of the relevant documents.
//!
//! Run with: `cargo run --release --example keyword_search [entries] [keyword]`

use xomatiq_bioflat::{Corpus, CorpusSpec};
use xomatiq_core::render::render_table;
use xomatiq_core::{QueryBuilder, SourceKind, Xomatiq};

fn main() {
    let entries: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let keyword = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "cdc6".to_string());

    let corpus = Corpus::generate(&CorpusSpec {
        enzymes: 0,
        embl: entries,
        swissprot: entries,
        keyword_rate: 0.02,
        ..CorpusSpec::default()
    });

    let xq = Xomatiq::in_memory();
    xq.load_source("hlx_embl.inv", SourceKind::Embl, &corpus.embl_flat())
        .expect("load EMBL");
    xq.load_source(
        "hlx_sprot.all",
        SourceKind::SwissProt,
        &corpus.swissprot_flat(),
    )
    .expect("load Swiss-Prot");
    println!(
        "Warehoused {entries} EMBL + {entries} Swiss-Prot entries \
         ({} EMBL / {} Swiss-Prot mention cdc6).\n",
        corpus.cdc6_embl.len(),
        corpus.cdc6_swissprot.len()
    );

    // Keyword-search mode over both databases (Figure 8).
    let query = QueryBuilder::keyword_search(
        &[
            ("a", "hlx_embl.inv", "/hlx_n_sequence"),
            ("b", "hlx_sprot.all", "/hlx_p_sequence"),
        ],
        &keyword,
        &["$b//sprot_accession_number", "$a//embl_accession_number"],
    )
    .expect("figure 8 builds");
    println!("-- Query (Figure 8) --\n{query}\n");

    let start = std::time::Instant::now();
    let outcome = xq.run_query(&query).expect("search runs");
    println!(
        "-- {} result rows in {:.2?} (keyword index-served) --",
        outcome.rows.len(),
        start.elapsed()
    );
    let preview = xomatiq_core::warehouse::QueryOutcome {
        columns: outcome.columns.clone(),
        rows: outcome.rows.iter().take(10).cloned().collect(),
        sql: String::new(),
    };
    println!("{}", render_table(&preview));

    if keyword == "cdc6" {
        let expect = corpus.cdc6_embl.len() * corpus.cdc6_swissprot.len();
        assert_eq!(
            outcome.rows.len(),
            expect,
            "cross product of matching entries"
        );
        println!(
            "Verified: {} Swiss-Prot × {} EMBL matches = {} rows.",
            corpus.cdc6_swissprot.len(),
            corpus.cdc6_embl.len(),
            expect
        );
    }
}
