//! Quickstart: warehouse the paper's Figure 2 ENZYME entry and query it.
//!
//! Run with: `cargo run --example quickstart`
//!
//! This walks the entire XomatiQ pipeline on the smallest possible input:
//! flat file → XML (Figure 6) → relational tuples → FLWR query → SQL →
//! results, plus document reconstruction back out of the tuples.

use xomatiq_bioflat::enzyme::FIGURE2_SAMPLE;
use xomatiq_core::render::{render_table, render_tree};
use xomatiq_core::tagger::tag_results;
use xomatiq_core::{SourceKind, Xomatiq};

fn main() {
    // 1. Load the ENZYME sample into an in-memory warehouse.
    let xq = Xomatiq::in_memory();
    let stats = xq
        .load_source("hlx_enzyme.DEFAULT", SourceKind::Enzyme, FIGURE2_SAMPLE)
        .expect("load the Figure 2 sample");
    println!(
        "Loaded {} document(s): {} element rows, {} text rows, {} attribute rows\n",
        stats.documents, stats.elements, stats.texts, stats.attributes
    );

    // 2. The DTD the visual interface would show (the paper's Figure 5).
    println!("-- Collection DTD (Figure 5) --");
    println!(
        "{}",
        xq.dtd("hlx_enzyme.DEFAULT").expect("collection exists")
    );

    // 3. A sub-tree query in the paper's textual form (Figure 9 style).
    let query = r#"
        FOR $a IN document("hlx_enzyme.DEFAULT")/hlx_enzyme
        WHERE contains($a//comment_list, "substrates")
        RETURN $a//enzyme_id, $a//enzyme_description
    "#;
    let outcome = xq.query(query).expect("query runs");
    println!("-- Query --{query}");
    println!("-- Generated SQL --\n{}\n", outcome.sql);
    println!("-- Results (table view) --\n{}", render_table(&outcome));

    // 4. The same results re-tagged as XML (Relation2XML, §3.3).
    let tagged = tag_results(&outcome).expect("taggable");
    println!(
        "-- Results (XML view) --\n{}",
        xomatiq_xml::to_string_pretty(&tagged)
    );

    // 5. Reconstruct the full stored document from its tuples.
    let doc = xq
        .reconstruct("hlx_enzyme.DEFAULT", "1.14.17.3")
        .expect("document exists");
    println!(
        "-- Reconstructed document (tree view) --\n{}",
        render_tree(&doc)
    );
}
