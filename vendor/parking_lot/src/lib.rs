//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the
//! workspace uses: infallible `lock()`/`read()`/`write()` with no
//! poisoning (a poisoned std lock is recovered transparently, matching
//! parking_lot's no-poisoning semantics).

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with infallible `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
