//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this path crate
//! supplies the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over integer ranges, and [`Rng::gen_bool`]. The generator is a
//! deterministic SplitMix64 — statistically fine for synthetic-corpus
//! generation, not cryptographic.

/// Core random number generation.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 high-quality bits mapped to [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
