//! Offline stand-in for `crossbeam`.
//!
//! Supplies the `crossbeam::channel` subset the workspace uses
//! (`unbounded`, `Sender`, `Receiver` with `send`/`recv`/`try_recv`),
//! backed by a `Mutex<VecDeque>` + `Condvar` so that — like the real
//! crossbeam and unlike `std::sync::mpsc` — both endpoints are
//! `Send + Sync + Clone`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the buffer is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a value, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders -= 1;
            self.shared.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Removes the next value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Drains currently queued values without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_recv() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_with_no_receiver() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
